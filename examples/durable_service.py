#!/usr/bin/env python
"""The talking DBMS that survives losing every process.

A durable :class:`repro.NarrationSession` logs every mutation to a
write-ahead log *before* applying it (group-commit fsync by default)
and checkpoints the database into atomic snapshots keyed by the log
sequence.  This demo writes a few rows, "loses" the process by simply
closing the service, and recovers everything from disk twice over:
once into a fresh durable session (snapshot + WAL replay), and once
through the raw :meth:`repro.storage.Database.recover` path — then
tears the WAL's final record the way a mid-write crash would and shows
recovery shrugging it off.

Run with::

    PYTHONPATH=src python examples/durable_service.py
"""

import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import NarrationService  # noqa: E402
from repro.datasets import movie_database  # noqa: E402
from repro.service.faults import tear_wal_tail  # noqa: E402
from repro.storage import Database, DurabilityConfig, scan_wal  # noqa: E402

NEW_MOVIES = [
    (101, "Heat", 1995),
    (102, "Ronin", 1998),
    (103, "Sexy Beast", 2000),
]
READ = "select m.title from MOVIES m where m.year > 1990"


async def run_service(directory: Path, mutations) -> list:
    """One 'process lifetime': recover from ``directory``, apply, read."""
    config = DurabilityConfig(directory=directory, fsync="batch", batch_every=8)
    async with NarrationService(max_workers=2) as service:
        session = service.session(database=movie_database(), durability=config)
        for sql in mutations:
            await session.execute(sql)
        result = await session.execute(READ)
        durability = session.stats()["durability"]
        print(
            f"  recovered {durability['replayed']} replayed record(s),"
            f" wal seq {durability['wal']['last_seq']},"
            f" {len(result.rows)} post-1990 titles visible"
        )
        return [row["title"] for row in result.rows]


async def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-durable-") as scratch:
        directory = Path(scratch) / "state"

        # Lifetime 1: write three movies, then lose the process (the
        # context manager exit stands in for SIGKILL — fsync="batch"
        # means everything acked is already in the page-cache-backed
        # log, and the final commit() on close syncs it).
        print("lifetime 1: three inserts, then the process goes away")
        inserts = [
            f"insert into MOVIES values ({mid}, '{title}', {year})"
            for mid, title, year in NEW_MOVIES
        ]
        before = await run_service(directory, inserts)

        # Lifetime 2: a brand-new process recovers from the same
        # directory — snapshot fast-forward plus WAL replay — and sees
        # exactly what the dead one acknowledged.
        print("lifetime 2: a fresh process recovers the same directory")
        after = await run_service(directory, [])
        assert after == before, "recovery must reproduce the acked state"

        # The raw recovery path, no service in sight.
        database, report = Database.recover(directory)
        titles = {row["title"] for row in database.table("MOVIES").rows()}
        assert {title for _, title, _ in NEW_MOVIES} <= titles
        print(
            f"Database.recover: snapshot seq {report['snapshot_seq']},"
            f" {report['replayed']} record(s) replayed, all titles present"
        )

        # Crash forensics: tear the log mid-final-record, simulating the
        # damage a power cut leaves behind a write that was never
        # acknowledged — recovery keeps the valid prefix silently.
        wal_path = directory / "wal.log"
        records_before = len(scan_wal(wal_path, strict=False).records)
        if records_before:
            tear_wal_tail(wal_path, seed=7)
            scan = scan_wal(wal_path, strict=False)
            print(
                f"tore the final record: {records_before} -> "
                f"{len(scan.records)} intact record(s), torn tail detected:"
                f" {scan.torn}"
            )
            database, report = Database.recover(directory)
            print(
                f"recovery after the tear: {report['replayed']} record(s)"
                f" replayed, {report['torn_bytes']} torn byte(s) dropped"
            )
        else:
            # A checkpoint compacted the log to empty — nothing to tear,
            # which is itself the durability story working.
            print("log already compacted by a checkpoint; nothing to tear")


if __name__ == "__main__":
    asyncio.run(main())
