"""Digital-library scenario (Section 2.1): collection highlights as text.

"One can imagine textual descriptions in several other practical cases:
... the highlights of a collection in a digital library, with a few
sentences on the main authors in the collection."

The script builds the library dataset, ranks collections and authors, and
produces exactly that kind of report, including a personalised variant for
a reader who only cares about computer-science material.

Run with::

    python examples/library_report.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ContentNarrator, LengthBudget, QueryTranslator, UserProfile, library_database
from repro.content import library_spec, rank_tuples
from repro.engine import Executor


def main() -> None:
    database = library_database()
    spec = library_spec(database.schema)
    narrator = ContentNarrator(database, spec=spec)

    print("=== Collection highlights ===")
    for entry in rank_tuples(database, "COLLECTION"):
        name = entry.row["name"]
        print(f"- {narrator.narrate_entity('COLLECTION', name, 'ITEM')}")

    print()
    print("=== A few sentences on the main authors ===")
    for entry in rank_tuples(database, "AUTHOR", limit=2):
        print(f"- {narrator.narrate_entity('AUTHOR', entry.row['name'], 'ITEM')}")

    print()
    print("=== The catalogue, described for a curator in three sentences ===")
    profile = UserProfile(name="curator", budget=LengthBudget(max_sentences=3))
    curator_view = ContentNarrator(database, spec=spec, profile=profile)
    print(curator_view.narrate_database(max_tuples_per_relation=1))

    print()
    print("=== Query explanations work on this schema too ===")
    translator = QueryTranslator(database.schema, spec=spec)
    sql = """
        select i.title from ITEM i, WROTE w, AUTHOR a
        where i.iid = w.iid and w.aid = a.aid and a.name = 'Grace Murray'
    """
    translation = translator.translate(sql)
    print(f"SQL meaning : {translation.text}")
    result = Executor(database).execute_sql(sql)
    print(f"Answer      : {narrator.narrate_query_answer(result, subject='The query')}")


if __name__ == "__main__":
    main()
