"""Accessibility scenario (Section 2.1): an oral question-answering loop.

The paper motivates data-to-text with users who cannot read a result
table: "Using a speech recognizer to convert a speech signal to a query
and a text-to-speech system (TTS) to convert the textual form of the query
answer into speech, these people would be given the chance to interact
with information systems, orally pose queries, and listen to their
answers."

Speech recognition and TTS are outside the paper's contribution, so they
are simulated here by plain text in both directions; everything in
between — verifying the query by reading it back, executing it, and
narrating the answer — is the real pipeline.

Run with::

    python examples/voice_assistant.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ContentNarrator, Executor, QueryTranslator, movie_database, movie_spec

#: The "speech recogniser" output: (what the user asked, the SQL the NL-to-SQL
#: front end produced).  NL-to-SQL is the classic, well-studied direction the
#: paper contrasts itself with; a canned mapping stands in for it here.
RECOGNISED_REQUESTS = [
    (
        "Which movies does Brad Pitt play in?",
        """
        select m.title from MOVIES m, CAST c, ACTOR a
        where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'
        """,
    ),
    (
        "Who directed Match Point and when was it released?",
        """
        select d.name, m.year from MOVIES m, DIRECTED r, DIRECTOR d
        where m.id = r.mid and r.did = d.id and m.title = 'Match Point'
        """,
    ),
    (
        "Tell me about Woody Allen.",
        None,  # handled by the content narrator, not by a query
    ),
    (
        "Are there any western movies?",
        """
        select m.title from MOVIES m, GENRE g
        where m.id = g.mid and g.genre = 'western'
        """,
    ),
]


def speak(text: str) -> None:
    """Simulated text-to-speech output."""
    print(f"  [TTS] {text}")


def main() -> None:
    database = movie_database()
    spec = movie_spec(database.schema)
    translator = QueryTranslator(database.schema, spec=spec)
    narrator = ContentNarrator(database, spec=spec)
    executor = Executor(database)

    for question, sql in RECOGNISED_REQUESTS:
        print()
        print(f"[user] {question}")

        if sql is None:
            speak(narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES"))
            continue

        # Verification step (Section 3.1): read the interpreted query back to
        # the user before executing it, so mis-recognitions are caught early.
        translation = translator.translate(sql)
        speak(f"I understood your question as: {translation.concise or translation.text}.")

        result = executor.execute_sql(sql)
        if result.is_empty:
            from repro import AnswerExplainer

            explanation = AnswerExplainer(database).explain(sql)
            speak(explanation.text)
        else:
            speak(narrator.narrate_query_answer(result, subject="The answer"))


if __name__ == "__main__":
    main()
