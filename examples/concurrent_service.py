#!/usr/bin/env python
"""The DBMS talks back to many users at once: the concurrent narration service.

Sixteen simulated clients share one :class:`repro.NarrationService`
session over the movie database.  Translation requests that repeat a
shape are served from compiled phrase plans (most without ever leaving
the event loop), execution shares one compiled executor, and narration
streams from the maintained ranking — all byte-identical to what each
client would get from a private synchronous pipeline.

Run with::

    PYTHONPATH=src python examples/concurrent_service.py
"""

import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import NarrationService, movie_database, movie_spec  # noqa: E402

QUERY_TEMPLATE = (
    "select m.title from MOVIES m, CAST c, ACTOR a"
    " where m.id = c.mid and c.aid = a.id and a.name = '{actor}'"
)
ACTORS = [
    "Brad Pitt", "Scarlett Johansson", "Mark Hamill", "Morgan Freeman",
    "Eric Bana", "Christina Ricci", "Jodie Foster", "Winona Ryder",
]


async def translating_client(session, client_id: int) -> str:
    actor = ACTORS[client_id % len(ACTORS)]
    translation = await session.translate(QUERY_TEMPLATE.format(actor=actor))
    return f"client {client_id:>2}: {translation.text}"


async def curious_client(session, client_id: int) -> str:
    result = await session.execute(
        "select m.title, m.year from MOVIES m where m.year > 2000"
    )
    return f"client {client_id:>2}: got {result.row_count} post-2000 movies"


async def browsing_client(session, client_id: int) -> str:
    story = await session.narrate_database()
    first = story.split(". ")[0]
    return f"client {client_id:>2}: {first}."


async def main() -> None:
    database = movie_database()
    async with NarrationService(max_workers=4) as service:
        session = service.session(database=database, spec_factory=movie_spec)

        handlers = [translating_client, curious_client, browsing_client]
        tasks = [
            handlers[client_id % len(handlers)](session, client_id)
            for client_id in range(16)
        ]
        for line in await asyncio.gather(*tasks):
            print(line)

        print("\n--- empty-answer explanation, shared executor ---")
        explanation = await session.explain_empty(
            "select m.title from MOVIES m where m.year = 1800"
        )
        print(explanation.text)

        print("\n--- session stats ---")
        print(json.dumps(session.stats(), indent=2))


if __name__ == "__main__":
    asyncio.run(main())
