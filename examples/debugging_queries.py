"""Query debugging scenario (Section 3.1): empty and oversized answers.

"When a query returns an empty answer, it is nice to know the parts of the
query that are responsible for the failure.  Similarly, when a query is
expected to return a very large number of answers, it is useful to know
the reasons."

Run with::

    python examples/debugging_queries.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnswerExplainer, QueryTranslator, movie_database, movie_spec

CASES = [
    (
        "A typo in the genre name",
        """
        select m.title from MOVIES m, GENRE g
        where m.id = g.mid and g.genre = 'westerns'
        """,
    ),
    (
        "Two conditions that are individually fine but jointly unsatisfiable",
        """
        select m.title from MOVIES m
        where m.year > 2004 and m.title = 'Anything Else'
        """,
    ),
    (
        "An accidental cross product",
        """
        select m.title, a.name, g.genre from MOVIES m, ACTOR a, GENRE g
        """,
    ),
]


def main() -> None:
    database = movie_database()
    translator = QueryTranslator(database.schema, spec=movie_spec(database.schema))
    explainer = AnswerExplainer(database)

    for title, sql in CASES:
        print()
        print(f"=== {title} ===")
        print("SQL:")
        for line in sql.strip().splitlines():
            print(f"    {line.strip()}")
        translation = translator.translate(sql)
        print(f"The query means : {translation.text}")
        explanation = explainer.explain(sql, large_threshold=100)
        print(f"What happened   : {explanation.text}")


if __name__ == "__main__":
    main()
