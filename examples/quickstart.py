"""Quickstart: make a database talk back in a dozen lines.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    ContentNarrator,
    Executor,
    QueryTranslator,
    movie_database,
    movie_spec,
)


def main() -> None:
    # 1. A database to talk about: the movie schema of the paper's Figure 1.
    database = movie_database()
    spec = movie_spec(database.schema)

    # 2. Content translation (Section 2): describe what is in the database.
    narrator = ContentNarrator(database, spec=spec)
    print("-- What does the database know about Woody Allen? --")
    print(narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES"))
    print()

    # 3. Query translation (Section 3): explain a query before running it.
    translator = QueryTranslator(database.schema, spec=spec)
    sql = """
        select m.title
        from MOVIES m, CAST c, ACTOR a
        where m.id = c.mid and c.aid = a.id
          and a.name = 'Brad Pitt'
    """
    translation = translator.translate(sql)
    print("-- The query --")
    print(sql.strip())
    print()
    print("-- What the system says it means --")
    print(f"{translation.text}  [{translation.category.value} query]")
    print(f"(more natural variant: {translation.concise})")
    print()

    # 4. Run it and narrate the answer too.
    result = Executor(database).execute_sql(sql)
    print("-- The answer, talked back --")
    print(narrator.narrate_query_answer(result, subject="The query"))


if __name__ == "__main__":
    main()
