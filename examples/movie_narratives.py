"""Section 2 end to end: database contents translated into narratives.

Reproduces every content-translation example of the paper (the merged
DIRECTOR clauses, the compact and procedural Woody Allen narratives, the
split pattern) and then goes further: schema description, ranked
whole-database summaries, personalised narratives and histogram
descriptions.

Run with::

    python examples/movie_narratives.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ContentNarrator, LengthBudget, SynthesisMode, UserProfile, movie_database, movie_spec
from repro.content import describe_histogram, describe_statistics


def heading(title: str) -> None:
    print()
    print(f"=== {title} ===")


def main() -> None:
    database = movie_database()
    spec = movie_spec(database.schema)
    narrator = ContentNarrator(database, spec=spec)

    heading("Single tuple, common expressions merged (paper Section 2.2)")
    woody = database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))[0]
    print(narrator.narrate_tuple("DIRECTOR", woody))

    heading("Compact (declarative) synthesis — the paper's first narrative")
    print(narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.COMPACT))

    heading("Procedural synthesis — the paper's second narrative")
    print(narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.PROCEDURAL))

    heading("Split pattern: one sentence, subordinate clauses joined with 'and'")
    print(narrator.narrate_split("MOVIES", "Troy", ["DIRECTOR", "ACTOR"]))

    heading("Describing the schema itself (Section 2.1)")
    print(narrator.narrate_schema())

    heading("Database statistics and a histogram, narrated")
    print(describe_statistics(database, spec.lexicon))
    years = [row["year"] for row in database.table("MOVIES").rows()]
    print(describe_histogram(years, "release year"))

    heading("Whole-database summary, bounded to six sentences")
    print(
        narrator.narrate_database(
            max_tuples_per_relation=1, budget=LengthBudget(max_sentences=6)
        )
    )

    heading("Personalised narrative: a brief profile that ignores genres")
    profile = UserProfile(
        name="in-a-hurry",
        excluded_relations={"GENRE"},
        budget=LengthBudget(max_sentences=4),
    )
    personalised = ContentNarrator(database, spec=spec, profile=profile)
    print(personalised.narrate_database(max_tuples_per_relation=1))


if __name__ == "__main__":
    main()
