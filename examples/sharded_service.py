#!/usr/bin/env python
"""The talking DBMS on every core: the multi-process shard tier.

A :class:`repro.ShardRouter` spawns two worker processes, each owning a
private replica of the movie database behind its own
``NarrationService`` session, and routes requests by the consistent hash
of their SQL *shape* — so every literal variant of one query lands on
the worker whose compiled plans already know that shape.  Mutations
broadcast to every replica under a sequence number, reads routed after a
write wait for that worker's ack, and one worker is SIGKILLed mid-demo
to show supervision: the router respawns it, replays the mutation log
and warm-starts its caches from the captured workload, while results
stay byte-identical to a single-process session throughout.

Run with::

    PYTHONPATH=src python examples/sharded_service.py
"""

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ShardRouter, WorkerCrashed  # noqa: E402

QUERY_TEMPLATE = (
    "select m.title from MOVIES m, CAST c, ACTOR a"
    " where m.id = c.mid and c.aid = a.id and a.name = '{actor}'"
)
ACTORS = ["Brad Pitt", "Mark Hamill", "Eric Bana", "Winona Ryder"]


async def retry_until_respawned(call):
    """Shard-tier callers own the retry policy; this one just waits."""
    for _ in range(120):
        try:
            return await call()
        except WorkerCrashed:
            await asyncio.sleep(0.25)
    raise RuntimeError("worker never came back")


async def main() -> None:
    async with ShardRouter(
        "repro.datasets.movies:movie_database",
        spec_factory="repro.content.presets:movie_spec",
        workers=2,
    ) as router:
        # Same shape, different literals: all four land on one worker
        # whose phrase plan serves every variant.
        for actor in ACTORS:
            translation = await router.translate(QUERY_TEMPLATE.format(actor=actor))
            print(f"  {translation.text}")

        # A write broadcasts to both replicas; the read after it cannot
        # run anywhere until its worker has acked the write.
        await router.execute("insert into GENRE values (5, 'heist')")
        result = await router.execute(
            "select g.genre from GENRE g where g.mid = 5"
        )
        print(f"\nafter the write, mid 5 genres now include: {[r['genre'] for r in result.rows]}")

        # Crash drill: kill worker 0 outright.  In-flight requests fail
        # with the typed WorkerCrashed; the router respawns the worker,
        # replays the mutation log and precompiles the captured shapes.
        pid = router.kill_worker(0)
        print(f"\nSIGKILLed worker 0 (pid {pid}); waiting for the respawn ...")
        result = await retry_until_respawned(
            lambda: router.execute("select g.genre from GENRE g where g.mid = 5")
        )
        print(f"respawned replica still sees the write: {[r['genre'] for r in result.rows]}")

        stats = await router.stats()
        fleet = stats["fleet"]
        print(
            f"\nfleet: {fleet['live_workers']} workers,"
            f" {sum(fleet['requests_by_kind'].values())} requests,"
            f" {stats['router']['mutations']} mutation(s) broadcast,"
            f" {stats['router']['respawns']} respawn(s)"
        )


if __name__ == "__main__":
    asyncio.run(main())
