"""Section 3 end to end: every paper query translated back into English.

For each of the paper's queries Q1-Q9 (plus the Section 3.1 EMP/DEPT
query) the script prints the SQL, the query-graph summary, the detected
difficulty category, the generated narrative next to the paper's target,
and — where a rewrite was involved — the flat equivalent SQL.

Run with::

    python examples/query_explanations.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QueryTranslator, movie_schema, movie_spec
from repro.content import employee_spec
from repro.datasets import MANAGER_NARRATIVE, MANAGER_QUERY, PAPER_NARRATIVES, PAPER_QUERIES, employee_schema


def show(name: str, sql: str, paper: str, translation) -> None:
    print()
    print(f"==== {name} [{translation.category.value} query] ====")
    print("SQL:")
    for line in sql.strip().splitlines():
        print(f"    {line.strip()}")
    print(f"query graph : {translation.graph.summary()}" if translation.graph else "")
    print(f"paper says  : {paper}")
    print(f"system says : {translation.text}")
    if translation.concise and translation.concise != translation.text:
        print(f"concise     : {translation.concise}")
    if translation.rewritten_sql:
        print(f"rewritten   : {translation.rewritten_sql}")
    if translation.notes:
        print(f"how         : {translation.notes[-1]}")


def main() -> None:
    schema = movie_schema()
    translator = QueryTranslator(schema, spec=movie_spec(schema))

    for name, sql in PAPER_QUERIES.items():
        show(name, sql, PAPER_NARRATIVES[name], translator.translate(sql))

    company = employee_schema()
    company_translator = QueryTranslator(company, spec=employee_spec(company))
    show(
        "Q0 (Section 3.1)",
        MANAGER_QUERY,
        MANAGER_NARRATIVE,
        company_translator.translate(MANAGER_QUERY),
    )

    print()
    print("==== DML statements talk back too (Section 3.1) ====")
    for statement in (
        "insert into MOVIES (id, title, year) values (99, 'Annie Hall', 1977)",
        "update MOVIES set year = 2006 where title = 'Match Point'",
        "delete from GENRE where genre = 'romance'",
        "create view brad_movies as select m.title from MOVIES m, CAST c, ACTOR a"
        " where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'",
    ):
        print(f"  {statement}")
        print(f"    -> {translator.translate(statement).text}")


if __name__ == "__main__":
    main()
