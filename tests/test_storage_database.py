"""Tests for the database layer: FK enforcement, bulk loads, loaders."""

import pytest

from repro.catalog import SchemaBuilder
from repro.datasets import movie_database, movie_schema, seed_rows
from repro.errors import ForeignKeyViolationError, UnknownTableError
from repro.storage import Database, dump_records, load_csv_text, load_records


@pytest.fixture
def database() -> Database:
    return movie_database()


class TestDatabaseBasics:
    def test_table_lookup_case_insensitive(self, database):
        assert database.table("movies").name == "MOVIES"

    def test_unknown_table(self, database):
        with pytest.raises(UnknownTableError):
            database.table("NOPE")

    def test_row_counts(self, database):
        counts = database.row_counts()
        assert counts["MOVIES"] == 9
        assert counts["DIRECTOR"] == 4
        assert database.total_rows == sum(counts.values())

    def test_has_table(self, database):
        assert database.has_table("CAST")
        assert not database.has_table("CASTING")


class TestForeignKeys:
    def test_insert_with_missing_parent_rejected(self, database):
        with pytest.raises(ForeignKeyViolationError):
            database.insert("CAST", {"mid": 999, "aid": 1, "role": "x"})

    def test_insert_with_null_fk_allowed(self):
        schema = (
            SchemaBuilder("s")
            .relation("P").column("id", "integer", primary_key=True).done()
            .relation("C").column("id", "integer", primary_key=True).column("pid", "integer").done()
            .foreign_key("C", ["pid"], "P", ["id"])
            .build()
        )
        database = Database(schema)
        database.insert("C", {"id": 1, "pid": None})
        assert len(database.table("C")) == 1

    def test_delete_parent_with_children_rejected(self, database):
        with pytest.raises(ForeignKeyViolationError):
            database.delete_where("MOVIES", lambda row: row["id"] == 1)

    def test_delete_leaf_rows_allowed(self, database):
        removed = database.delete_where("GENRE", lambda row: row["genre"] == "romance")
        assert removed == 2

    def test_update_fk_to_missing_parent_rejected(self, database):
        with pytest.raises(ForeignKeyViolationError):
            database.update_where("CAST", lambda row: True, {"mid": 12345})

    def test_enforcement_can_be_disabled(self):
        database = Database(movie_schema(), enforce_foreign_keys=False)
        database.insert("CAST", {"mid": 999, "aid": 999, "role": "ghost"})
        assert len(database.table("CAST")) == 1

    def test_load_orders_parents_first(self):
        database = Database(movie_schema())
        rows = seed_rows()
        # Pass children before parents on purpose; load() must reorder.
        shuffled = {
            "CAST": rows["CAST"],
            "MOVIES": rows["MOVIES"],
            "ACTOR": rows["ACTOR"],
        }
        database.load(shuffled)
        assert len(database.table("CAST")) == len(rows["CAST"])


class TestLoaders:
    def test_load_csv_text(self):
        database = Database(movie_schema())
        count = load_csv_text(
            database,
            "MOVIES",
            "id,title,year\n1,Match Point,2005\n2,Troy,2004\n",
        )
        assert count == 2
        assert database.table("MOVIES").lookup(("id",), (1,))[0]["title"] == "Match Point"

    def test_load_csv_empty_value_becomes_null(self):
        database = Database(movie_schema())
        load_csv_text(database, "MOVIES", "id,title,year\n1,Unknown,\n")
        assert database.table("MOVIES").lookup(("id",), (1,))[0]["year"] is None

    def test_load_records_and_dump_records_round_trip(self):
        database = Database(movie_schema())
        records = {"MOVIES": [{"id": 1, "title": "A", "year": 2000}]}
        load_records(database, records)
        dumped = dump_records(database)
        assert dumped["MOVIES"] == [{"id": 1, "title": "A", "year": 2000}]

    def test_load_csv_file(self, tmp_path):
        from repro.storage import load_csv_file

        path = tmp_path / "movies.csv"
        path.write_text("id,title,year\n7,File Movie,1999\n", encoding="utf-8")
        database = Database(movie_schema())
        assert load_csv_file(database, "MOVIES", path) == 1
