"""Golden-equivalence suite for the compiled narration front end.

Three families of differential assertions back the compiled pipeline:

* the regex lexer must reproduce the character lexer token-for-token —
  values, types and 1-based positions — and raise the same errors at the
  same positions;
* compiled templates must realise byte-for-byte what the interpreted
  ``Template``/``ListTemplate`` walkers produce, including the structural
  subject/verb/complement split the aggregation step relies on;
* streaming narration must render byte-for-byte what the eager
  build-everything-then-trim pipeline renders, across datasets, budgets
  and synthesis modes.
"""

import random

import pytest

from repro.content.narrator import ContentNarrator
from repro.content.patterns import SynthesisMode
from repro.content.presets import employee_spec, library_spec, movie_spec
from repro.content.single_relation import TupleStyle, _split_structurally
from repro.datasets import (
    PAPER_QUERIES,
    employee_database,
    generate_workload,
    library_database,
    movie_database,
)
from repro.errors import SqlLexError
from repro.lexicon import morphology
from repro.nlg.document import LengthBudget
from repro.query_nl.translator import QueryTranslator
from repro.sql.lexer import (
    Lexer,
    RegexLexer,
    tokenize,
    tokenize_reference,
    use_reference_lexer,
)
from repro.templates.compile import CompiledListTemplate, CompiledTemplate
from repro.templates.registry import TemplateRegistry


def _token_tuples(tokens):
    return [(t.type, t.value, t.line, t.column) for t in tokens]


def _lex_outcome(lexer_cls, text):
    try:
        return ("ok", _token_tuples(lexer_cls(text).tokenize()))
    except SqlLexError as error:
        return ("error", error.message, error.line, error.column)


def assert_lexers_agree(text):
    reference = _lex_outcome(Lexer, text)
    fast = _lex_outcome(RegexLexer, text)
    assert fast == reference, f"lexers disagree on {text!r}"


class TestLexerEquivalence:
    def test_paper_queries(self):
        for name, sql in PAPER_QUERIES.items():
            assert_lexers_agree(sql)

    def test_generated_workload(self):
        for query in generate_workload(queries_per_category=10, seed=42):
            assert_lexers_agree(query.sql)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "\n\n\t",
            "select 'O''Hara', 2.5, .5, 1., x_1 FROM \"Select\"",
            "a <= b <> c != d || e",
            "(a, b);",
            "-- only a comment",
            "/* multi\nline */ select 1",
            "seLEct FrOm WHERE",
            "count(*)",
            "a.b.c",
            "5..6",
            "1.2.3",
            "12abc",
            "x--y\nz",
            "SELECT\n  title\nFROM movies\nWHERE 'multi\nline' = a",
            "'don''t stop'",
            "'a'''",
            "''",
            "_x __y",
        ],
    )
    def test_edge_inputs(self, text):
        assert_lexers_agree(text)

    @pytest.mark.parametrize(
        "text",
        [
            "select /* never ends",
            "select 'open",
            'select "open',
            "select @",
            "select !",
            "'abc''",
            "'''",
            "select|",
            "  \n  @",
            "\n\n/* x",
            "a\n'op\nen",
            'x\n"q\nuo',
        ],
    )
    def test_error_inputs_same_diagnostics(self, text):
        reference = _lex_outcome(Lexer, text)
        assert reference[0] == "error"
        assert _lex_outcome(RegexLexer, text) == reference

    def test_randomised_differential(self):
        rng = random.Random(1337)
        alphabet = "abc ABC_019 '\"<>=!-/*.,;()\n\t%|+"
        for _ in range(500):
            text = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 60))
            )
            assert_lexers_agree(text)

    def test_keyword_values_are_canonical_and_shared(self):
        # The regex lexer directly: interning is a property of the compiled
        # lexer, which REPRO_ORACLE's forced reference lexer bypasses.
        a = RegexLexer("select SELECT Select").tokenize()
        assert [t.value for t in a[:-1]] == ["SELECT", "SELECT", "SELECT"]
        assert a[0].value is a[1].value  # interned keyword table

    def test_use_reference_lexer_scope(self):
        sql = "SELECT title FROM movies"
        with use_reference_lexer():
            ref = tokenize(sql)
        assert _token_tuples(ref) == _token_tuples(tokenize_reference(sql))
        assert _token_tuples(tokenize(sql)) == _token_tuples(ref)

    def test_translator_identical_under_both_lexers(self):
        schema = movie_database().schema
        translator = QueryTranslator(schema, cache_size=None)
        for sql in PAPER_QUERIES.values():
            fast = translator.translate(sql).text
            with use_reference_lexer():
                slow = QueryTranslator(schema, cache_size=None).translate(sql).text
            assert fast == slow


# ---------------------------------------------------------------------------
# Compiled templates
# ---------------------------------------------------------------------------


def _all_specs():
    return [
        movie_spec(movie_database().schema),
        employee_spec(employee_database().schema),
        library_spec(library_database().schema),
    ]


def _registry_templates(spec):
    """Every template the registry can hand out for its schema."""
    registry = spec.registry
    schema = spec.schema
    templates = []
    for relation in schema.relations:
        templates.append(registry.relation_template(relation.name))
        for attribute in relation.attributes:
            templates.append(registry.projection_template(relation.name, attribute.name))
        for other in schema.relations:
            label = registry.join_template(relation.name, other.name)
            if label is not None:
                templates.append(label)
    return templates


def _sample_values(database, relation):
    rows = list(database.table(relation.name).rows())[:3]
    samples = []
    for row in rows:
        values = {}
        for attribute in relation.attributes:
            values[attribute.name] = row.get(attribute.name)
            values[f"{relation.name}.{attribute.name}"] = row.get(attribute.name)
        samples.append(values)
    return samples


class TestCompiledTemplateEquivalence:
    @pytest.mark.parametrize("database_factory,spec_factory", [
        (movie_database, movie_spec),
        (employee_database, employee_spec),
        (library_database, library_spec),
    ])
    def test_instantiate_byte_identical(self, database_factory, spec_factory):
        database = database_factory()
        spec = spec_factory(database.schema)
        for template in _registry_templates(spec):
            compiled = CompiledTemplate(template)
            for relation in database.schema.relations:
                for values in _sample_values(database, relation):
                    assert compiled.instantiate(values, strict=False) == \
                        template.instantiate(values, strict=False)

    @pytest.mark.parametrize("database_factory,spec_factory", [
        (movie_database, movie_spec),
        (employee_database, employee_spec),
        (library_database, library_spec),
    ])
    def test_split_byte_identical(self, database_factory, spec_factory):
        database = database_factory()
        spec = spec_factory(database.schema)
        for template in _registry_templates(spec):
            compiled = CompiledTemplate(template)
            for relation in database.schema.relations:
                for values in _sample_values(database, relation):
                    assert compiled.split_instantiate(values) == \
                        _split_structurally(template, values)

    def test_strict_missing_slot_raises_same_message(self):
        from repro.errors import TemplateInstantiationError
        from repro.templates.parser import parse_template

        template = parse_template('DIRECTOR.name + " was born in " + DIRECTOR.blocation')
        compiled = CompiledTemplate(template)
        values = {"name": "Woody Allen"}
        with pytest.raises(TemplateInstantiationError) as interpreted:
            template.instantiate(values, strict=True)
        with pytest.raises(TemplateInstantiationError) as fast:
            compiled.instantiate(values, strict=True)
        assert str(fast.value) == str(interpreted.value)

    def test_list_template_byte_identical(self):
        spec = movie_spec(movie_database().schema)
        label = spec.registry.list_template("MOVIE_LIST")
        compiled = CompiledListTemplate(label)
        rows = [
            {"title": "Match Point", "year": 2005},
            {"title": "Melinda and Melinda", "year": 2004},
            {"title": "Anything Else", "year": 2003},
        ]
        for count in range(len(rows) + 1):
            subset = rows[:count]
            assert compiled.instantiate(subset, strict=False) == \
                label.instantiate(subset, strict=False)

    def test_registry_memoizes_compiled_forms_and_defaults(self):
        schema = movie_database().schema
        # Explicit: this test is about the compiled path specifically, so
        # it must keep compiling under REPRO_ORACLE's flipped defaults.
        registry = TemplateRegistry(schema, compile_templates=True)
        template = registry.projection_template("MOVIES", "year")
        assert registry.projection_template("MOVIES", "year") is template
        compiled = registry.compiled(template)
        assert registry.compiled(template) is compiled
        disabled = TemplateRegistry(schema, compile_templates=False)
        assert disabled.compiled(disabled.relation_template("MOVIES")) is None

    @pytest.mark.parametrize("database_factory,spec_factory", [
        (movie_database, movie_spec),
        (employee_database, employee_spec),
        (library_database, library_spec),
    ])
    def test_narration_identical_with_compilation_disabled(
        self, database_factory, spec_factory
    ):
        """Whole narratives agree between compiled and interpreted registries."""
        database = database_factory()
        compiled_spec = spec_factory(database.schema)
        interpreted_spec = spec_factory(database.schema)
        interpreted_spec.registry.compile_templates = False

        fast = ContentNarrator(database, spec=compiled_spec)
        slow = ContentNarrator(database, spec=interpreted_spec)
        budget = LengthBudget(max_sentences=15)
        assert fast.narrate_database(budget=budget) == slow.narrate_database(budget=budget)
        for relation in database.schema.relations:
            if relation.bridge:
                continue
            assert fast.narrate_relation(relation.name, budget=budget) == \
                slow.narrate_relation(relation.name, budget=budget)
            for row in list(database.table(relation.name).rows())[:2]:
                assert fast.narrate_tuple(relation.name, row) == \
                    slow.narrate_tuple(relation.name, row)
                assert fast.narrate_entity(relation.name, row) == \
                    slow.narrate_entity(relation.name, row)


# ---------------------------------------------------------------------------
# Streaming narration
# ---------------------------------------------------------------------------


BUDGETS = [
    None,
    LengthBudget(max_sentences=1),
    LengthBudget(max_sentences=3),
    LengthBudget(max_sentences=12),
    LengthBudget(max_words=40),
    LengthBudget(max_sentences=6, max_words=50),
    LengthBudget(max_sentences=0),
]


class TestStreamingNarration:
    @pytest.mark.parametrize("database_factory,spec_factory", [
        (movie_database, movie_spec),
        (employee_database, employee_spec),
        (library_database, library_spec),
    ])
    def test_narrate_database_matches_eager(self, database_factory, spec_factory):
        database = database_factory()
        narrator = ContentNarrator(database, spec=spec_factory(database.schema))
        for budget in BUDGETS:
            for mode in (SynthesisMode.COMPACT, SynthesisMode.PROCEDURAL):
                streamed = narrator.narrate_database(budget=budget, mode=mode)
                eager = narrator.narrate_database(budget=budget, mode=mode, streaming=False)
                assert streamed == eager, (budget, mode)

    @pytest.mark.parametrize("database_factory,spec_factory", [
        (movie_database, movie_spec),
        (employee_database, employee_spec),
        (library_database, library_spec),
    ])
    def test_narrate_relation_matches_eager(self, database_factory, spec_factory):
        database = database_factory()
        narrator = ContentNarrator(database, spec=spec_factory(database.schema))
        for budget in BUDGETS:
            for relation in database.schema.relation_names:
                for style in (TupleStyle.FULL, TupleStyle.HEADING_ONLY):
                    streamed = narrator.narrate_relation(
                        relation, budget=budget, style=style
                    )
                    eager = narrator.narrate_relation(
                        relation, budget=budget, style=style, streaming=False
                    )
                    assert streamed == eager, (relation, budget, style)

    def test_streaming_bound_covers_reverse_join_template_weight(self):
        """A designer label for the reverse direction swaps the roles, and the
        resulting relationship sentence carries the *narrated* relation's
        weight — the early-exit bound must account for it."""
        from repro.content.personalization import UserProfile

        database = movie_database()
        spec = movie_spec(database.schema)
        profile = UserProfile(
            relation_weights={"DIRECTOR": 50.0},
            attribute_weights={
                ("DIRECTOR", "blocation"): 0.1,
                ("DIRECTOR", "bdate"): 0.1,
            },
        )
        narrator = ContentNarrator(database, spec=spec, profile=profile)
        for budget in BUDGETS:
            for mode in (SynthesisMode.COMPACT, SynthesisMode.PROCEDURAL):
                assert narrator.narrate_database(budget=budget, mode=mode) == \
                    narrator.narrate_database(budget=budget, mode=mode, streaming=False), \
                    (budget, mode)

    def test_streaming_bound_covers_procedural_children_default_order(self):
        """Procedural child tuples are narrated with the default attribute
        set, not the spec's attribute order — the bound must use the same."""
        from repro.content.personalization import UserProfile

        database = movie_database()
        spec = movie_spec(database.schema)
        spec.attribute_order["MOVIES"] = ()
        profile = UserProfile(
            relation_weights={"MOVIES": 0.5},
            attribute_weights={("MOVIES", "year"): 40.0},
        )
        narrator = ContentNarrator(database, spec=spec, profile=profile)
        for budget in BUDGETS:
            assert narrator.narrate_database(
                budget=budget, mode=SynthesisMode.PROCEDURAL
            ) == narrator.narrate_database(
                budget=budget, mode=SynthesisMode.PROCEDURAL, streaming=False
            ), budget

    def test_streaming_stops_early_on_uniform_weights(self):
        """With uniform weights a settled budget abandons the stream early."""
        from repro.content.personalization import UserProfile
        from repro.content.ranking import rank_tuples
        from repro.nlg.document import collect_streaming

        database = movie_database()
        schema = database.schema
        profile = UserProfile(
            relation_weights={r.name: 1.0 for r in schema.relations},
            attribute_weights={
                (r.name, a.name): 1.0 for r in schema.relations for a in r.attributes
            },
        )
        narrator = ContentNarrator(database, spec=movie_spec(schema), profile=profile)
        ranked = rank_tuples(database, "MOVIES", profile=profile)

        def spy(stream, consumed):
            for item in stream:
                consumed.append(item)
                yield item

        consumed: list = []
        collect_streaming(
            spy(narrator._relation_sentence_stream("MOVIES", ranked, TupleStyle.FULL), consumed),
            LengthBudget(max_sentences=2),
        )
        total = sum(
            1 for _ in narrator._relation_sentence_stream("MOVIES", ranked, TupleStyle.FULL)
        )
        assert total > 2
        assert len(consumed) == 2  # early exit right when the budget settles


# ---------------------------------------------------------------------------
# Structural-layer memoization
# ---------------------------------------------------------------------------


class TestStructuralMemoization:
    def test_schema_graph_cached_lookups_match_structure(self):
        from repro.graph.schema_graph import SchemaGraph

        schema = movie_database().schema
        graph = SchemaGraph(schema)
        for relation in schema.relation_names:
            neighbours = graph.neighbours(relation)
            assert neighbours == graph.neighbours(relation)
            assert graph.degree(relation) == len(graph.join_edges_of(relation))
            for other in schema.relation_names:
                edges = graph.join_edges_between(relation, other)
                assert edges == graph.join_edges_between(relation, other)
                path = graph.shortest_path(relation, other)
                assert path == graph.shortest_path(relation, other)

    def test_shared_graph_is_reused_per_schema(self):
        from repro.graph.schema_graph import graph_for

        database = movie_database()
        assert graph_for(database.schema) is graph_for(database.schema)

    def test_morphology_caches_preserve_behaviour(self):
        morphology._pluralize_many.cache_clear()
        assert morphology.pluralize("movie") == "movies"
        assert morphology.pluralize("movie", count=1) == "movie"
        assert morphology.pluralize("person") == "people"
        assert morphology.pluralize("release year") == "release years"
        assert morphology.indefinite_article("actor") == "an"
        assert morphology.indefinite_article("movie") == "a"
        assert morphology.number_word(3) == "three"
        assert morphology.ordinal_word(2) == "second"
        assert morphology._pluralize_many.cache_info().currsize > 0

    def test_translator_cache_hit_returns_fresh_notes_copy(self):
        schema = movie_database().schema
        translator = QueryTranslator(schema)
        sql = PAPER_QUERIES["Q1"]
        first = translator.translate(sql)
        first.notes.append("caller scribble")
        second = translator.translate(sql)
        assert "caller scribble" not in second.notes
        assert second.notes == [n for n in second.notes]
        third = translator.translate(sql)
        assert third.notes == second.notes
        assert third is not second

    def test_table_lookup_self_tunes_and_matches_scan(self):
        database = movie_database()
        table = database.table("MOVIES")
        rows = table.lookup(["year"], [2005])
        assert table.find_index(["year"]) is not None
        expected = [r for r in table.rows() if r.get("year") == 2005]
        assert [r.as_dict() for r in rows] == [r.as_dict() for r in expected]

    def test_table_null_counts_follow_mutations(self):
        database = movie_database()
        table = database.table("MOVIES")
        base = table.null_count("year")
        rowid = table.insert({"id": 9001, "title": "Untitled", "year": None})
        assert table.null_count("year") == base + 1
        table.update_rows([rowid], {"year": 1999})
        assert table.null_count("year") == base
        table.delete_rows([rowid])
        assert table.null_count("year") == base
