"""Tests for predicate classification and logical planning."""

import pytest

from repro.datasets import PAPER_QUERIES
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    Planner,
    ProjectNode,
    ScanNode,
    SortNode,
    classify_predicates,
    plan_query,
)
from repro.errors import PlanningError
from repro.sql import ast
from repro.sql.parser import parse_select


def plan(sql: str):
    return plan_query(parse_select(sql))


def node_types(plan_obj):
    found = []

    def walk(node):
        found.append(type(node))
        for child in node.children():
            walk(child)

    walk(plan_obj.root)
    return found


class TestClassifyPredicates:
    def test_local_join_and_residual(self):
        statement = parse_select(
            "select * from MOVIES m, CAST c where m.id = c.mid and m.year > 2000"
            " and m.id in (select mid from GENRE)"
        )
        classified = classify_predicates(statement.where, ["m", "c"])
        assert len(classified.joins) == 1
        assert len(classified.local["m"]) == 1
        assert len(classified.residual) == 1

    def test_unqualified_column_goes_residual(self):
        statement = parse_select("select * from MOVIES m where year > 2000")
        classified = classify_predicates(statement.where, ["m"])
        assert classified.residual and not classified.local["m"]

    def test_cross_binding_inequality_is_residual(self):
        statement = parse_select("select * from CAST c1, CAST c2 where c1.aid > c2.aid")
        classified = classify_predicates(statement.where, ["c1", "c2"])
        assert classified.residual and not classified.joins

    def test_empty_where(self):
        classified = classify_predicates(None, ["m"])
        assert not classified.joins and not classified.residual


class TestPlanShapes:
    def test_simple_scan_project(self):
        types = node_types(plan("select title from MOVIES"))
        assert types == [ProjectNode, ScanNode]

    def test_filter_pushed_below_join(self):
        logical = plan(
            "select m.title from MOVIES m, CAST c where m.id = c.mid and m.year > 2000"
        )
        explain = logical.explain()
        assert explain.index("Filter(m.year > 2000)") > explain.index("HashJoin")

    def test_join_conditions_only_when_bindings_available(self):
        logical = plan(PAPER_QUERIES["Q2"])
        lines = logical.explain().splitlines()
        first_join = next(line for line in reversed(lines) if "Join" in line)
        # The innermost (deepest) join must not reference relations joined later.
        assert "d.id" not in first_join or "r.did" in first_join

    def test_aggregate_node_present_for_group_by(self):
        types = node_types(plan(PAPER_QUERIES["Q7"]))
        assert AggregateNode in types

    def test_distinct_sort_limit_nodes(self):
        types = node_types(
            plan("select distinct title from MOVIES order by title limit 3")
        )
        assert DistinctNode in types and SortNode in types and LimitNode in types

    def test_cross_join_when_no_condition(self):
        logical = plan("select * from MOVIES m, ACTOR a")
        assert "CrossJoin" in logical.explain()

    def test_duplicate_aliases_rejected(self):
        statement = parse_select("select * from MOVIES m, CAST c")
        bad = ast.SelectStatement(
            select_items=statement.select_items,
            from_tables=(
                ast.TableRef("MOVIES", "m"),
                ast.TableRef("CAST", "m"),
            ),
        )
        with pytest.raises(PlanningError):
            Planner().plan(bad)

    def test_from_less_select(self):
        logical = plan("select 1 + 1")
        assert isinstance(logical.root, ProjectNode)

    def test_having_without_group_by_becomes_filter(self):
        types = node_types(plan("select title from MOVIES having title = 'Troy'"))
        assert FilterNode in types and AggregateNode not in types

    def test_self_join_plan_has_both_scans(self):
        logical = plan(PAPER_QUERIES["Q3"])
        scans = [n for n in node_types(logical) if n is ScanNode]
        assert len(scans) == 5

    def test_explain_is_indented_tree(self):
        text = plan(PAPER_QUERIES["Q1"]).explain()
        assert text.splitlines()[0].startswith("Project")
        assert any(line.startswith("  ") for line in text.splitlines())
