"""Tests for integrity-constraint verbalisation (Section 3.1)."""

import pytest

from repro.catalog import SchemaBuilder
from repro.datasets import movie_schema
from repro.query_nl.constraints import ConstraintTranslator, describe_constraints


@pytest.fixture(scope="module")
def translator():
    return ConstraintTranslator(movie_schema())


class TestPrimaryKeys:
    def test_single_column_key(self, translator):
        assert translator.describe_primary_key("MOVIES") == (
            "Every movie is identified by its id."
        )

    def test_composite_key(self, translator):
        text = translator.describe_primary_key("CAST")
        assert "combination of" in text and "mid" in text and "aid" in text

    def test_keyless_relation_returns_none(self):
        schema = SchemaBuilder("s").relation("LOG").column("msg", "text").done().build()
        assert ConstraintTranslator(schema).describe_primary_key("LOG") is None


class TestNotNullAndForeignKeys:
    def test_not_null_sentences(self):
        schema = (
            SchemaBuilder("s")
            .relation("USER", concept="user")
            .column("id", "integer", primary_key=True)
            .column("email", "text", nullable=False)
            .column("nickname", "text")
            .done()
            .build()
        )
        sentences = ConstraintTranslator(schema).describe_not_null("USER")
        assert sentences == ["Every user must have a email."] or sentences == [
            "Every user must have a email."
        ]

    def test_foreign_key_sentences(self, translator):
        sentences = translator.describe_foreign_keys("CAST")
        assert len(sentences) == 2
        assert any("existing movie" in s for s in sentences)
        assert any("existing actor" in s for s in sentences)

    def test_relation_without_constraints(self):
        schema = SchemaBuilder("s").relation("LOG").column("msg", "text").done().build()
        text = ConstraintTranslator(schema).describe_relation("LOG")
        assert "no declared constraints" in text


class TestWholeSchema:
    def test_describe_relation_combines_everything(self, translator):
        text = translator.describe_relation("DIRECTED")
        assert "identified by the combination" in text
        assert "existing movie" in text and "existing director" in text

    def test_describe_schema_mentions_every_relation_concept(self, translator):
        text = translator.describe_schema()
        for concept in ("movie", "director", "actor", "genre"):
            assert concept in text

    def test_describe_constraints_convenience(self):
        text = describe_constraints(movie_schema())
        assert text.count(".") >= 6
