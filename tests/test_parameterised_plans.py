"""Tests for parameterised (shape-shared) execution plans.

Four concerns: (1) the parameterised path returns results identical to
the per-text path and the interpreted oracle on the full corpus — with
randomised literal rotation so every execution is a genuine shape hit;
(2) value-driven plan choices split on the guard vector (pinned select
literals, LIMIT/OFFSET, int-vs-float tags) instead of leaking one
query's values into another's answer; (3) data caches invalidate under
DML and direct storage mutation exactly like the per-text path; and
(4) the concurrent service's shape-batched execution is byte-identical
to sequential synchronous execution under 64 clients.
"""

import asyncio
import random

import pytest

from repro.datasets import PAPER_QUERIES, generate_workload, movie_database
from repro.engine import Executor
from repro.engine.parameterised import analyze_statement, source_literals
from repro.oracle import oracle_enabled
from repro.service import NarrationService
from repro.sql.parser import parse_sql
from repro.sql.shape import reconstruct_sql, sql_shape


def interpreted(database) -> Executor:
    return Executor(database, compiled=False, use_caches=False, index_scans=False)


def per_text(database) -> Executor:
    return Executor(
        database, compiled=True, use_caches=True, index_scans=True, parameterised=False
    )


def parameterised(database) -> Executor:
    return Executor(
        database, compiled=True, use_caches=True, index_scans=True, parameterised=True
    )


@pytest.fixture()
def db():
    return movie_database()


def corpus():
    return list(PAPER_QUERIES.values()) + [
        q.sql for q in generate_workload(queries_per_category=10, seed=42)
    ]


_WORDS = [
    "Brad Pitt",
    "Mark Hamill",
    "action",
    "comedy",
    "Zelda",
    "a b c",
    "O'Neill",
    "",
]


def _mutate_literals(literals, rng):
    """A literal vector of the same length with rotated values."""
    mutated = []
    for value in literals:
        if isinstance(value, str):
            mutated.append(rng.choice(_WORDS))
        elif isinstance(value, float):
            mutated.append(round(rng.uniform(-5, 2010), 2))
        else:
            mutated.append(rng.randint(0, 2010))
    return mutated


def _variants(sql, rng, count=3):
    """Literal-rotated texts of ``sql``'s shape (includes the original)."""
    shaped = sql_shape(sql)
    if shaped is None or not shaped[1]:
        return [sql]
    shape, literals = shaped
    texts = [sql]
    for _ in range(count):
        texts.append(reconstruct_sql(shape, _mutate_literals(literals, rng)))
    return texts


# ---------------------------------------------------------------------------
# Equivalence: parameterised == per-text == interpreted
# ---------------------------------------------------------------------------


def assert_same(a, b, context):
    assert a.columns == b.columns, context
    assert a.rows == b.rows, context


def test_corpus_equivalence_with_literal_rotation(db):
    rng = random.Random(20260728)
    param = parameterised(db)
    text_oracle = per_text(db)
    slow = interpreted(db)
    for sql in corpus():
        for variant in _variants(sql, rng):
            try:
                expected = slow.execute_sql(variant)
            except Exception as error:
                # A rotated literal may make a variant invalid (e.g. a
                # LIMIT that the reconstruction turned negative is fine,
                # but comparisons of str vs int raise); the fast paths
                # must then raise the same error class.
                with pytest.raises(type(error)):
                    param.execute_sql(variant)
                continue
            assert_same(param.execute_sql(variant), expected, variant)
            assert_same(text_oracle.execute_sql(variant), expected, variant)
    stats = param.cache_stats["shape_plans"]
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_repeated_shape_is_served_from_the_shape_cache(db):
    executor = parameterised(db)
    executor.execute_sql("select m.title from MOVIES m where m.year = 2004")
    before = executor.cache_stats
    executor.execute_sql("select m.title from MOVIES m where m.year = 1997")
    after = executor.cache_stats
    assert after["shape_plans"]["hits"] == before["shape_plans"]["hits"] + 1
    # The variant never touched the per-text parse or plan caches.
    assert after["parse"]["misses"] == before["parse"]["misses"]
    assert after["plan"]["misses"] == before["plan"]["misses"]


def test_index_probe_resolves_key_from_parameters(db):
    executor = parameterised(db)
    a = executor.execute_sql("select a.id from ACTOR a where a.name = 'Brad Pitt'")
    b = executor.execute_sql("select a.id from ACTOR a where a.name = 'Mark Hamill'")
    assert executor.cache_stats["shape_plans"]["hits"] == 1
    oracle = interpreted(db)
    assert_same(a, oracle.execute_sql("select a.id from ACTOR a where a.name = 'Brad Pitt'"), "a")
    assert_same(b, oracle.execute_sql("select a.id from ACTOR a where a.name = 'Mark Hamill'"), "b")
    assert a.rows != b.rows


def test_correlated_subquery_memo_keys_on_parameters(db):
    executor = parameterised(db)
    q5 = PAPER_QUERIES["Q5"]
    first = executor.execute_sql(q5)
    variant = q5.replace("Brad Pitt", "Mark Hamill")
    second = executor.execute_sql(variant)
    oracle = interpreted(db)
    assert_same(first, oracle.execute_sql(q5), "Q5")
    assert_same(second, oracle.execute_sql(variant), "Q5 variant")
    assert first.rows != second.rows


# ---------------------------------------------------------------------------
# Guard splits: value-driven plan choices keep distinct entries
# ---------------------------------------------------------------------------


def test_select_list_literals_are_pinned(db):
    executor = parameterised(db)
    a = executor.execute_sql("select 1 from MOVIES m")
    b = executor.execute_sql("select 2 from MOVIES m")
    assert a.columns == ("1",) and b.columns == ("2",)
    assert all(row.get("1") == 1 for row in a.rows)
    assert all(row.get("2") == 2 for row in b.rows)
    # Same shape, two guard classes, zero shared-plan hits.
    stats = executor.cache_stats["shape_plans"]
    assert stats["shapes"] == 1 and stats["entries"] == 2 and stats["hits"] == 0


def test_aliased_select_literals_are_parameters(db):
    executor = parameterised(db)
    a = executor.execute_sql("select m.year + 10 as later from MOVIES m where m.id = 1")
    b = executor.execute_sql("select m.year + 20 as later from MOVIES m where m.id = 1")
    assert a.columns == b.columns == ("later",)
    assert b.rows[0].get("later") == a.rows[0].get("later") + 10
    assert executor.cache_stats["shape_plans"]["hits"] == 1


def test_limit_and_offset_are_pinned(db):
    executor = parameterised(db)
    a = executor.execute_sql("select m.title from MOVIES m limit 2")
    b = executor.execute_sql("select m.title from MOVIES m limit 3")
    c = executor.execute_sql("select m.title from MOVIES m limit 2 offset 1")
    assert len(a.rows) == 2 and len(b.rows) == 3 and len(c.rows) == 2
    assert c.rows[0] == a.rows[1]
    assert executor.cache_stats["shape_plans"]["hits"] == 0


def test_int_and_float_literals_split_on_the_type_tag(db):
    executor = parameterised(db)
    a = executor.execute_sql("select m.title from MOVIES m where m.year = 2004")
    b = executor.execute_sql("select m.title from MOVIES m where m.year = 2004.5")
    oracle = interpreted(db)
    assert_same(a, oracle.execute_sql("select m.title from MOVIES m where m.year = 2004"), "int")
    assert_same(b, oracle.execute_sql("select m.title from MOVIES m where m.year = 2004.5"), "float")
    assert executor.cache_stats["shape_plans"]["entries"] == 2


def test_like_patterns_are_parameters(db):
    executor = parameterised(db)
    a = executor.execute_sql("select m.title from MOVIES m where m.title like '%o%'")
    b = executor.execute_sql("select m.title from MOVIES m where m.title like 'Se%'")
    oracle = interpreted(db)
    assert_same(a, oracle.execute_sql("select m.title from MOVIES m where m.title like '%o%'"), "a")
    assert_same(b, oracle.execute_sql("select m.title from MOVIES m where m.title like 'Se%'"), "b")
    assert executor.cache_stats["shape_plans"]["hits"] == 1


def test_in_list_values_are_parameters(db):
    executor = parameterised(db)
    sql = "select m.title from MOVIES m where m.year in (2004, 1995)"
    variant = "select m.title from MOVIES m where m.year in (1977, 1999)"
    oracle = interpreted(db)
    assert_same(executor.execute_sql(sql), oracle.execute_sql(sql), sql)
    assert_same(executor.execute_sql(variant), oracle.execute_sql(variant), variant)
    assert executor.cache_stats["shape_plans"]["hits"] == 1


def test_duplicate_literals_keep_distinct_slots(db):
    executor = parameterised(db)
    base = "select m.title from MOVIES m where m.year = 2004 or m.year = 2004"
    variant = "select m.title from MOVIES m where m.year = 1977 or m.year = 2004"
    oracle = interpreted(db)
    assert_same(executor.execute_sql(base), oracle.execute_sql(base), base)
    assert_same(executor.execute_sql(variant), oracle.execute_sql(variant), variant)
    assert executor.cache_stats["shape_plans"]["hits"] == 1


def test_between_bounds_keep_their_positions(db):
    executor = parameterised(db)
    base = "select m.title from MOVIES m where m.year between 2000 and 2000"
    variant = "select m.title from MOVIES m where m.year between 1990 and 2005"
    oracle = interpreted(db)
    assert_same(executor.execute_sql(base), oracle.execute_sql(base), base)
    assert_same(executor.execute_sql(variant), oracle.execute_sql(variant), variant)
    assert executor.cache_stats["shape_plans"]["hits"] == 1


# ---------------------------------------------------------------------------
# Fallbacks: what the analysis refuses stays on the per-text path
# ---------------------------------------------------------------------------


def test_dml_falls_back_to_the_per_text_path(db):
    executor = parameterised(db)
    result = executor.execute_sql(
        "insert into MOVIES (id, title, year) values (999, 'Fallback', 2001)"
    )
    assert result.affected_rows == 1
    assert executor.cache_stats["shape_plans"]["fallbacks"] == 1
    assert executor.cache_stats["shape_plans"]["entries"] == 0


def test_subquery_limit_falls_back(db):
    # The inner LIMIT integer is a literal token that never becomes an
    # expression node, leaving a mid-vector hole the analysis rejects.
    executor = parameterised(db)
    sql = (
        "select m.title from MOVIES m where m.id in"
        " (select c.mid from CAST c limit 3)"
    )
    result = executor.execute_sql(sql)
    assert_same(result, interpreted(db).execute_sql(sql), sql)
    assert executor.cache_stats["shape_plans"]["fallbacks"] == 1


def test_fallback_shapes_are_remembered(db):
    executor = parameterised(db)
    executor.execute_sql("delete from MOVIES where id = 12345")
    executor.execute_sql("delete from MOVIES where id = 54321")
    stats = executor.cache_stats["shape_plans"]
    assert stats["fallbacks"] == 2 and stats["shapes"] == 1


def test_analysis_rejects_non_select_and_misaligned_statements(db):
    statement = parse_sql("insert into MOVIES (id, title, year) values (1, 'x', 2)")
    assert analyze_statement(statement, (1, "x", 2)) is None
    select = parse_sql("select m.title from MOVIES m where m.year = 2004")
    assert [node.value for node in source_literals(select)] == [2004]
    assert analyze_statement(select, (2004,)) is not None
    assert analyze_statement(select, (1999,)) is None  # literal mismatch
    assert analyze_statement(select, (2004, 7)) is None  # phantom hole


# ---------------------------------------------------------------------------
# Cache invalidation under DML and direct storage mutation
# ---------------------------------------------------------------------------


def test_dml_invalidates_shared_plan_data_caches(db):
    executor = parameterised(db)
    sql = "select m.title from MOVIES m where m.year = 1899"
    assert executor.execute_sql(sql).row_count == 0
    executor.execute_sql(
        "insert into MOVIES (id, title, year) values (998, 'Cache Buster', 1899)"
    )
    after = executor.execute_sql(sql)
    assert [row.get("m.title") for row in after.rows] == ["Cache Buster"]
    # The shared plan survived the mutation (plans are data-independent);
    # only the data caches were rebuilt.
    assert executor.cache_stats["shape_plans"]["hits"] >= 1


def test_direct_storage_mutation_is_seen_by_shared_plans(db):
    executor = parameterised(db)
    sql = "select m.title from MOVIES m where m.year = 1898"
    assert executor.execute_sql(sql).row_count == 0
    db.insert("MOVIES", {"id": 997, "title": "Bypass", "year": 1898})
    after = executor.execute_sql(sql)
    assert [row.get("m.title") for row in after.rows] == ["Bypass"]


def test_update_through_variant_shapes(db):
    executor = parameterised(db)
    oracle_db = movie_database()
    oracle = interpreted(oracle_db)
    probe = "select m.title from MOVIES m where m.year = 2004"
    executor.execute_sql(probe)
    for sql in (
        "update MOVIES set year = 2004 where id = 3",
        "update MOVIES set year = 1955 where id = 1",
    ):
        executor.execute_sql(sql)
        oracle.execute_sql(sql)
        for variant in (probe, probe.replace("2004", "1955")):
            assert_same(executor.execute_sql(variant), oracle.execute_sql(variant), variant)


def test_invalidate_caches_drops_shape_state(db):
    executor = parameterised(db)
    executor.execute_sql("select m.title from MOVIES m where m.year = 2004")
    executor.invalidate_caches()
    stats = executor.cache_stats["shape_plans"]
    assert stats["entries"] == 0 and stats["shapes"] == 0


# ---------------------------------------------------------------------------
# Service-tier shape-batched execution
# ---------------------------------------------------------------------------


def test_service_shape_batched_execution_matches_sequential_sync(db):
    rng = random.Random(7)
    queries = []
    for sql in corpus():
        queries.extend(_variants(sql, rng, count=1))
    # Sequential synchronous reference on an identical database.
    reference_executor = per_text(movie_database())
    expected = {}
    for sql in queries:
        result = reference_executor.execute_sql(sql)
        expected[sql] = (result.columns, result.rows)

    async def run():
        async with NarrationService(max_workers=4) as service:
            session = service.session(database=db)

            async def client(worker: int):
                results = {}
                for index in range(worker, len(queries), 64):
                    sql = queries[index]
                    result = await session.execute(sql)
                    results[sql] = (result.columns, result.rows)
                return results

            gathered = await asyncio.gather(*(client(i) for i in range(64)))
            return gathered, session.stats()

    gathered, stats = asyncio.run(run())
    for results in gathered:
        for sql, got in results.items():
            assert got == expected[sql], sql
    grouped = stats["requests"]["shape_groups_by_kind"].get("execute")
    assert grouped is not None and grouped["requests"] >= grouped["groups"]
    if not oracle_enabled():  # oracle mode runs the per-text executor
        sharing = stats["execution_shape_sharing"]
        assert sharing["shared"] > 0


def test_service_groups_interleaved_reads_and_writes_in_order(db):
    async def run():
        async with NarrationService(max_workers=2) as service:
            session = service.session(database=db)
            read = "select m.title from MOVIES m where m.year = 1897"
            write = "insert into MOVIES (id, title, year) values (996, 'Barrier', 1897)"
            before, _, after = await asyncio.gather(
                session.execute(read), session.execute(write), session.execute(read)
            )
            return before, after

    before, after = asyncio.run(run())
    # Whatever the interleaving, the post-write read must see the row.
    assert [row.get("m.title") for row in after.rows] == ["Barrier"]
