"""Tests for tables, indexes and constraint enforcement."""

import pytest

from repro.catalog.attribute import Attribute
from repro.catalog.relation import Relation
from repro.catalog.types import DataType
from repro.errors import (
    NotNullViolationError,
    PrimaryKeyViolationError,
    TypeMismatchError,
    UnknownAttributeError,
)
from repro.storage.index import HashIndex, build_index
from repro.storage.table import Table


def movie_relation() -> Relation:
    return Relation(
        "MOVIES",
        [
            Attribute("id", DataType.INTEGER, primary_key=True),
            Attribute("title", DataType.TEXT, heading=True, nullable=False),
            Attribute("year", DataType.INTEGER),
        ],
    )


@pytest.fixture
def table() -> Table:
    table = Table(movie_relation())
    table.insert({"id": 1, "title": "Match Point", "year": 2005})
    table.insert({"id": 2, "title": "Troy", "year": 2004})
    return table


class TestInsert:
    def test_row_count(self, table):
        assert table.row_count == 2

    def test_missing_columns_default_to_null(self):
        table = Table(movie_relation())
        table.insert({"id": 5, "title": "X"})
        assert list(table.rows())[0]["year"] is None

    def test_unknown_column_rejected(self, table):
        with pytest.raises(UnknownAttributeError):
            table.insert({"id": 9, "title": "Y", "rating": 5})

    def test_primary_key_violation(self, table):
        with pytest.raises(PrimaryKeyViolationError):
            table.insert({"id": 1, "title": "Duplicate"})

    def test_not_null_violation(self, table):
        with pytest.raises(NotNullViolationError):
            table.insert({"id": 3, "title": None})

    def test_type_mismatch(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert({"id": "three", "title": "Z"})

    def test_coercion_from_text(self, table):
        table.insert({"id": "3", "title": "Seven", "year": "1995"}, coerce=True)
        assert table.lookup(("id",), (3,))[0]["year"] == 1995

    def test_insert_many(self):
        table = Table(movie_relation())
        ids = table.insert_many(
            [{"id": 1, "title": "A"}, {"id": 2, "title": "B"}]
        )
        assert len(ids) == 2


class TestDeleteUpdate:
    def test_delete_rows(self, table):
        rowids = [rowid for rowid, row in table.rows_with_ids() if row["id"] == 1]
        assert table.delete_rows(rowids) == 1
        assert table.row_count == 1

    def test_delete_missing_rowid_is_noop(self, table):
        assert table.delete_rows([999]) == 0

    def test_update_rows(self, table):
        rowids = [rowid for rowid, row in table.rows_with_ids() if row["id"] == 2]
        assert table.update_rows(rowids, {"year": 2010}) == 1
        assert table.lookup(("id",), (2,))[0]["year"] == 2010

    def test_update_to_duplicate_key_rejected(self, table):
        rowids = [rowid for rowid, row in table.rows_with_ids() if row["id"] == 2]
        with pytest.raises(PrimaryKeyViolationError):
            table.update_rows(rowids, {"id": 1})

    def test_update_keeps_indexes_consistent(self, table):
        rowids = [rowid for rowid, row in table.rows_with_ids() if row["id"] == 2]
        table.update_rows(rowids, {"id": 20})
        assert table.lookup(("id",), (20,))
        assert not table.lookup(("id",), (2,))

    def test_truncate(self, table):
        table.truncate()
        assert table.row_count == 0
        table.insert({"id": 1, "title": "again"})
        assert table.row_count == 1


class TestIndexes:
    def test_lookup_uses_secondary_index(self, table):
        table.create_index("by_year", ["year"])
        assert [r["title"] for r in table.lookup(("year",), (2004,))] == ["Troy"]

    def test_lookup_without_index_scans(self, table):
        assert [r["title"] for r in table.lookup(("title",), ("Troy",))] == ["Troy"]

    def test_unique_index_nulls_do_not_collide(self):
        index = HashIndex("u", ["a"], unique=True)
        assert not index.would_violate_unique((None,))

    def test_build_index_detects_duplicates(self):
        rows = [(1, {"a": 1}), (2, {"a": 1})]
        with pytest.raises(ValueError):
            build_index("u", ["a"], rows, unique=True)

    def test_index_remove(self):
        index = HashIndex("i", ["a"])
        index.add((1,), 10)
        index.remove((1,), 10)
        assert index.lookup((1,)) == ()
        assert len(index) == 0

    def test_has_key(self, table):
        assert table.has_key(("id",), (1,))
        assert not table.has_key(("id",), (99,))
