"""End-to-end integration tests across the whole pipeline.

These tests exercise the full loop the paper envisions: SQL arrives, is
parsed, validated, planned, executed, graphed, classified and translated;
content narratives are generated from the same database; and the round
trip (query → narrative → verification against the answer) holds together.
"""

import pytest

from repro import (
    AnswerExplainer,
    ContentNarrator,
    Executor,
    LengthBudget,
    QueryTranslator,
    SchemaBuilder,
    SynthesisMode,
    UserProfile,
    classify_query,
    movie_database,
    movie_spec,
)
from repro.content import default_spec
from repro.datasets import PAPER_QUERIES, generate_movie_database, GeneratorConfig
from repro.evaluation import query_coverage


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def database(self):
        return movie_database()

    @pytest.fixture(scope="class")
    def translator(self, database):
        return QueryTranslator(database.schema, spec=movie_spec(database.schema))

    @pytest.fixture(scope="class")
    def narrator(self, database):
        return ContentNarrator(database, spec=movie_spec(database.schema))

    def test_query_translation_plus_answer_narration(self, database, translator, narrator):
        sql = PAPER_QUERIES["Q1"]
        translation = translator.translate(sql)
        result = Executor(database).execute_sql(sql)
        answer_text = narrator.narrate_query_answer(result, subject=translation.text)
        assert translation.text.startswith("Find")
        assert "Troy" in answer_text and "Seven" in answer_text

    def test_every_paper_query_translates_and_executes(self, database, translator):
        executor = Executor(database)
        for name, sql in PAPER_QUERIES.items():
            translation = translator.translate(sql)
            result = executor.execute_sql(sql)
            assert translation.text, name
            assert result.row_count >= 0, name

    def test_translations_cover_query_elements(self, database, translator):
        # Q7 is excluded: even the paper's own narrative ("the number of
        # actors in movies of more than one genre") omits the projected id
        # and title columns, so its element coverage is inherently partial.
        for name in ("Q1", "Q2", "Q6"):
            sql = PAPER_QUERIES[name]
            text = translator.translate(sql).text
            assert query_coverage(database.schema, sql, text) >= 0.6, name

    def test_narrative_and_query_agree_on_woody_allen(self, database, narrator):
        narrative = narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES")
        result = Executor(database).execute_sql(
            "select m.title from MOVIES m, DIRECTED r, DIRECTOR d"
            " where m.id = r.mid and r.did = d.id and d.name = 'Woody Allen'"
        )
        for (title,) in result.to_tuples():
            assert title in narrative

    def test_empty_answer_explanation_flow(self, database):
        explainer = AnswerExplainer(database)
        explanation = explainer.explain(
            "select m.title from MOVIES m, CAST c, ACTOR a"
            " where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Special'"
        )
        assert explanation.row_count == 0
        assert "Nobody Special" in explanation.text

    def test_personalised_narration_differs(self, database):
        default = ContentNarrator(database, spec=movie_spec(database.schema))
        brief = ContentNarrator(
            database,
            spec=movie_spec(database.schema),
            profile=UserProfile(budget=LengthBudget(max_sentences=2)),
        )
        assert len(brief.narrate_database()) < len(default.narrate_database())


class TestScaledDatabases:
    def test_pipeline_on_generated_database(self):
        database = generate_movie_database(GeneratorConfig(movies=50, directors=8, actors=20))
        narrator = ContentNarrator(database, spec=movie_spec(database.schema))
        translator = QueryTranslator(database.schema, spec=movie_spec(database.schema))

        bounded = narrator.narrate_database(
            max_tuples_per_relation=2, budget=LengthBudget(max_sentences=8)
        )
        assert bounded.count(".") <= 12

        translation = translator.translate(PAPER_QUERIES["Q2"])
        assert translation.text.startswith("Find")

    def test_classification_is_stable_across_database_sizes(self):
        small = movie_database().schema
        large = generate_movie_database(GeneratorConfig(movies=100)).schema
        for sql in PAPER_QUERIES.values():
            assert (
                classify_query(small, sql).category
                is classify_query(large, sql).category
            )


class TestCustomSchema:
    def test_user_defined_schema_end_to_end(self):
        schema = (
            SchemaBuilder("shop")
            .relation("CUSTOMER", concept="customer")
            .column("cid", "integer", primary_key=True)
            .column("cname", "text", heading=True, caption="name")
            .column("city", "text")
            .done()
            .relation("ORDERS", concept="order")
            .column("oid", "integer", primary_key=True)
            .column("cid", "integer")
            .column("total", "integer", caption="total amount")
            .done()
            .foreign_key("ORDERS", ["cid"], "CUSTOMER", ["cid"], verb="placed by")
            .build()
        )
        from repro.storage import Database

        database = Database(schema)
        database.insert("CUSTOMER", {"cid": 1, "cname": "Eleni", "city": "Athens"})
        database.insert("ORDERS", {"oid": 10, "cid": 1, "total": 120})
        database.insert("ORDERS", {"oid": 11, "cid": 1, "total": 80})

        narrator = ContentNarrator(database, spec=default_spec(schema))
        text = narrator.narrate_entity("CUSTOMER", "Eleni", "ORDERS")
        assert "Eleni" in text

        translator = QueryTranslator(schema)
        translation = translator.translate(
            "select c.cname from CUSTOMER c, ORDERS o where c.cid = o.cid and o.total > 100"
        )
        assert translation.text.startswith("Find")
        assert "100" in translation.text

        result = Executor(database).execute_sql(
            "select c.cname from CUSTOMER c, ORDERS o where c.cid = o.cid and o.total > 100"
        )
        assert result.to_tuples() == [("Eleni",)]
