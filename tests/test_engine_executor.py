"""Tests for query execution: joins, aggregation, subqueries, DML."""

import pytest

from repro.datasets import employee_database, movie_database, MANAGER_QUERY
from repro.engine import Executor
from repro.engine.result import DmlResult, QueryResult
from repro.errors import UnsupportedQueryError


@pytest.fixture
def executor() -> Executor:
    return Executor(movie_database())


class TestBasicSelect:
    def test_project_single_column(self, executor):
        result = executor.execute_sql("select title from MOVIES where year = 2005")
        assert result.to_tuples() == [("Match Point",)]

    def test_select_star(self, executor):
        result = executor.execute_sql("select * from DIRECTOR where id = 1")
        assert result.columns == (
            "DIRECTOR.id", "DIRECTOR.name", "DIRECTOR.bdate", "DIRECTOR.blocation",
        )
        assert result.rows[0]["name"] == "Woody Allen"

    def test_alias_in_output(self, executor):
        result = executor.execute_sql("select m.title as movie_title from MOVIES m limit 1")
        assert result.columns == ("movie_title",)

    def test_distinct(self, executor):
        result = executor.execute_sql("select distinct g.genre from GENRE g")
        assert sorted(result.column("g.genre")) == ["action", "comedy", "drama", "romance", "thriller"]

    def test_order_by_desc_and_limit(self, executor):
        result = executor.execute_sql("select title, year from MOVIES order by year desc limit 2")
        assert result.to_tuples() == [("Match Point", 2005), ("Melinda and Melinda", 2004)]

    def test_order_by_ascending_ties_stable(self, executor):
        result = executor.execute_sql("select title from MOVIES order by year")
        assert result.to_tuples()[0] == ("Star Battles",)

    def test_offset(self, executor):
        all_rows = executor.execute_sql("select title from MOVIES order by year").to_tuples()
        offset_rows = executor.execute_sql(
            "select title from MOVIES order by year limit 3 offset 2"
        ).to_tuples()
        assert offset_rows == all_rows[2:5]

    def test_empty_result(self, executor):
        result = executor.execute_sql("select title from MOVIES where year = 1900")
        assert result.is_empty and not result

    def test_in_list(self, executor):
        result = executor.execute_sql("select title from MOVIES where id in (1, 3)")
        assert set(result.column("title")) == {"Match Point", "Anything Else"}

    def test_like(self, executor):
        result = executor.execute_sql("select title from MOVIES where title like 'Star%'")
        assert result.row_count == 2

    def test_between(self, executor):
        result = executor.execute_sql(
            "select title from MOVIES where year between 2003 and 2004"
        )
        assert result.row_count == 3


class TestJoins:
    def test_fk_join(self, executor):
        result = executor.execute_sql(
            "select a.name from ACTOR a, CAST c where a.id = c.aid and c.mid = 4"
        )
        assert set(result.column("a.name")) == {"Brad Pitt", "Eric Bana"}

    def test_three_way_join(self, executor):
        result = executor.execute_sql(
            "select m.title from MOVIES m, DIRECTED r, DIRECTOR d"
            " where m.id = r.mid and r.did = d.id and d.name = 'Woody Allen'"
        )
        assert set(result.column("m.title")) == {
            "Match Point", "Melinda and Melinda", "Anything Else",
        }

    def test_self_join_inequality(self, executor):
        result = executor.execute_sql(
            "select a1.name, a2.name from CAST c1, CAST c2, ACTOR a1, ACTOR a2"
            " where c1.mid = c2.mid and c1.aid = a1.id and c2.aid = a2.id and a1.id > a2.id"
        )
        assert result.row_count == 4

    def test_cross_product(self, executor):
        result = executor.execute_sql("select d.name, g.genre from DIRECTOR d, GENRE g")
        assert result.row_count == 4 * 15

    def test_manager_query(self):
        result = Executor(employee_database()).execute_sql(MANAGER_QUERY)
        assert result.to_tuples() == [("Carol Chen",)]


class TestAggregation:
    def test_count_star_whole_table(self, executor):
        assert executor.execute_sql("select count(*) from MOVIES").scalar() == 9

    def test_group_by_with_count(self, executor):
        result = executor.execute_sql(
            "select g.genre, count(*) from GENRE g group by g.genre order by g.genre"
        )
        as_dict = dict(result.to_tuples())
        assert as_dict["action"] == 5 and as_dict["drama"] == 3

    def test_count_distinct(self, executor):
        assert (
            executor.execute_sql("select count(distinct m.year) from MOVIES m").scalar() == 8
        )

    def test_sum_avg_min_max(self, executor):
        result = executor.execute_sql(
            "select sum(m.year), avg(m.year), min(m.year), max(m.year) from MOVIES m"
            " where m.id in (1, 2)"
        )
        row = result.to_tuples()[0]
        assert row == (4009, 2004.5, 2004, 2005)

    def test_aggregates_ignore_nulls(self):
        database = movie_database(seed_data=False)
        database.insert("MOVIES", {"id": 1, "title": "A", "year": None})
        database.insert("MOVIES", {"id": 2, "title": "B", "year": 2000})
        executor = Executor(database)
        assert executor.execute_sql("select avg(m.year) from MOVIES m").scalar() == 2000
        assert executor.execute_sql("select count(m.year) from MOVIES m").scalar() == 1

    def test_having_filters_groups(self, executor):
        result = executor.execute_sql(
            "select g.genre, count(*) from GENRE g group by g.genre having count(*) >= 3"
        )
        assert set(result.column("g.genre")) == {"action", "comedy", "drama"}

    def test_group_by_empty_input(self, executor):
        result = executor.execute_sql(
            "select g.genre, count(*) from GENRE g where g.genre = 'western' group by g.genre"
        )
        assert result.is_empty

    def test_aggregate_without_group_by_on_empty_input(self, executor):
        assert (
            executor.execute_sql("select count(*) from MOVIES where year = 1900").scalar() == 0
        )


class TestSubqueries:
    def test_uncorrelated_in(self, executor):
        result = executor.execute_sql(
            "select title from MOVIES where id in (select mid from GENRE where genre = 'thriller')"
        )
        assert set(result.column("title")) == {"Seven", "Ocean Heist"}

    def test_correlated_exists(self, executor):
        result = executor.execute_sql(
            "select m.title from MOVIES m where not exists"
            " (select * from CAST c where c.mid = m.id)"
        )
        assert set(result.column("m.title")) == {"The Galactic Menace"}

    def test_scalar_subquery(self, executor):
        result = executor.execute_sql(
            "select m.title from MOVIES m where m.year ="
            " (select max(m2.year) from MOVIES m2)"
        )
        assert result.to_tuples() == [("Match Point",)]

    def test_quantified_all(self, executor):
        result = executor.execute_sql(
            "select m.title from MOVIES m where m.year >= all (select m2.year from MOVIES m2)"
        )
        assert result.to_tuples() == [("Match Point",)]

    def test_quantified_any(self, executor):
        result = executor.execute_sql(
            "select distinct m.title from MOVIES m where m.id = any"
            " (select g.mid from GENRE g where g.genre = 'romance')"
        )
        assert set(result.column("m.title")) == {"Match Point", "Ocean Heist"}


class TestDml:
    def test_insert_update_delete_cycle(self):
        executor = Executor(movie_database())
        inserted = executor.execute_sql(
            "insert into MOVIES (id, title, year) values (50, 'Test Film', 2007)"
        )
        assert isinstance(inserted, DmlResult) and inserted.affected_rows == 1
        updated = executor.execute_sql("update MOVIES set year = 2008 where id = 50")
        assert updated.affected_rows == 1
        assert executor.execute_sql("select year from MOVIES where id = 50").scalar() == 2008
        deleted = executor.execute_sql("delete from MOVIES where id = 50")
        assert deleted.affected_rows == 1

    def test_explain_returns_text(self):
        executor = Executor(movie_database())
        from repro.sql import parse_select

        assert "Scan(MOVIES" in executor.explain(parse_select("select title from MOVIES m"))

    def test_format_table(self):
        executor = Executor(movie_database())
        text = executor.execute_sql("select title, year from MOVIES limit 2").format_table()
        assert "title" in text and "|" in text

    def test_unsupported_statement(self):
        executor = Executor(movie_database())
        from repro.sql import parse_sql

        with pytest.raises(UnsupportedQueryError):
            executor.execute(parse_sql("create view v as select title from MOVIES"))
