"""Tests for morphology helpers and the lexicon."""

import pytest

from repro.datasets import movie_schema
from repro.lexicon import (
    Lexicon,
    capitalize_first,
    default_lexicon,
    indefinite_article,
    join_list,
    number_word,
    ordinal_word,
    pluralize,
    possessive,
    sentence_case,
    strip_extra_spaces,
    with_article,
)


class TestPluralize:
    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("movie", "movies"),
            ("actor", "actors"),
            ("genre", "genres"),
            ("box", "boxes"),
            ("church", "churches"),
            ("city", "cities"),
            ("day", "days"),
            ("leaf", "leaves"),
            ("knife", "knives"),
            ("person", "people"),
            ("schema", "schemas"),
            ("release year", "release years"),
            ("cast", "cast"),
        ],
    )
    def test_plural_forms(self, singular, plural):
        assert pluralize(singular) == plural

    def test_count_one_keeps_singular(self):
        assert pluralize("movie", count=1) == "movie"

    def test_irregular_case_preserved(self):
        assert pluralize("Person") == "People"

    # Regressions surfaced by the multi-domain corpora: the blanket
    # "-f -> -ves" rule mangled "chief" ("chieves") and even "tariff"
    # ("tarifves"), "hero" missed the "-o -> -oes" class ("heros"), and
    # compound -man nouns fell through to plain "s" ("chairmans").
    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("chief", "chiefs"),
            ("tariff", "tariffs"),
            ("belief", "beliefs"),
            ("roof", "roofs"),
            ("hero", "heroes"),
            ("superhero", "superheroes"),
            ("echo", "echoes"),
            ("potato", "potatoes"),
            ("chairman", "chairmen"),
            ("spokesman", "spokesmen"),
            ("bannerman", "bannermen"),
        ],
    )
    def test_lexical_exceptions(self, singular, plural):
        assert pluralize(singular) == plural

    # The words the old rules got right must keep working after the fix.
    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("wolf", "wolves"),
            ("direwolf", "direwolves"),
            ("shelf", "shelves"),
            ("thief", "thieves"),
            ("wife", "wives"),
            ("self", "selves"),
            ("video", "videos"),
            ("photo", "photos"),
            ("piano", "pianos"),
            ("woman", "women"),
        ],
    )
    def test_lexical_exceptions_do_not_overreach(self, singular, plural):
        assert pluralize(singular) == plural


class TestArticlesAndMisc:
    def test_indefinite_article(self):
        assert indefinite_article("movie") == "a"
        assert indefinite_article("actor") == "an"
        assert indefinite_article("hour") == "an"
        assert indefinite_article("university") == "a"

    def test_with_article(self):
        assert with_article("actor") == "an actor"
        assert with_article("actor", definite=True) == "the actor"

    def test_capitalize_first_skips_punctuation(self):
        assert capitalize_first('"quoted" text') == '"Quoted" text'

    def test_join_list(self):
        assert join_list([]) == ""
        assert join_list(["a"]) == "a"
        assert join_list(["a", "b"]) == "a and b"
        assert join_list(["a", "b", "c"]) == "a, b, and c"
        assert join_list(["a", "b", "c"], oxford=False) == "a, b and c"
        assert join_list(["a", "b"], conjunction="or") == "a or b"

    def test_possessive(self):
        assert possessive("Woody Allen") == "Woody Allen's"
        assert possessive("actors") == "actors'"

    def test_number_and_ordinal_words(self):
        assert number_word(1) == "one"
        assert number_word(99) == "99"
        assert ordinal_word(1) == "first"
        assert ordinal_word(23) == "23rd"
        assert ordinal_word(11) == "11th"

    def test_strip_extra_spaces(self):
        assert strip_extra_spaces("  a   b , c .") == "a b, c."

    def test_sentence_case(self):
        assert sentence_case(["hello world", "", "already done."]) == [
            "Hello world.",
            "Already done.",
        ]


class TestLexicon:
    @pytest.fixture
    def lexicon(self) -> Lexicon:
        return default_lexicon(movie_schema())

    def test_concept_defaults(self, lexicon):
        assert lexicon.concept("MOVIES") == "movie"
        assert lexicon.concept_plural("MOVIES") == "movies"

    def test_concept_override(self, lexicon):
        lexicon.set_concept("MOVIES", "film", "films")
        assert lexicon.concept("MOVIES") == "film"
        assert lexicon.concept_plural("MOVIES") == "films"

    def test_caption_defaults_and_override(self, lexicon):
        assert lexicon.caption("DIRECTOR", "bdate") == "birth date"
        lexicon.set_caption("DIRECTOR", "bdate", "date of birth")
        assert lexicon.caption("DIRECTOR", "bdate") == "date of birth"

    def test_caption_plural(self, lexicon):
        assert lexicon.caption_plural("MOVIES", "year") == "release years"

    def test_heading_caption(self, lexicon):
        assert lexicon.heading_caption("MOVIES") == "title"

    def test_relationship_verb_from_fk(self, lexicon):
        assert lexicon.relationship_verb("CAST", "ACTOR") == "plays in"

    def test_relationship_verb_override(self, lexicon):
        lexicon.set_relationship_verb("ACTOR", "MOVIES", "plays in")
        assert lexicon.relationship_verb("ACTOR", "MOVIES") == "plays in"
        assert lexicon.relationship_verb("MOVIES", "ACTOR") == "plays in"

    def test_relationship_verb_unrelated(self, lexicon):
        assert lexicon.relationship_verb("ACTOR", "DIRECTOR") is None

    def test_describe_value_heading_vs_other(self, lexicon):
        assert lexicon.describe_value("ACTOR", "name", "Brad Pitt") == "the actor Brad Pitt"
        assert lexicon.describe_value("MOVIES", "year", 2005) == "the release year 2005"
