"""Golden-equivalence suite for the compiled translation core.

Three families of differential assertions back the compiled pipeline:

* the table-driven Pratt parser must reproduce the recursive-descent
  oracle AST-for-AST — and error-for-error (message, line, column) — on
  every shipped query, hand-picked edge cases and fuzzed inputs;
* fused validation inside the graph builder must produce identical graphs
  on valid statements and identical error objects on invalid ones,
  compared against the standalone-validator pipeline
  (``use_reference_validation``);
* shape-keyed phrase plans must render every translation field
  (text, concise, notes, rewritten SQL, category) byte-for-byte equal to
  the full pipeline (``phrase_plans=False``), including for literal
  variants that hit a plan compiled from a different query.
"""

import random

import pytest

from repro.datasets import (
    PAPER_QUERIES,
    employee_schema,
    generate_workload,
    library_schema,
    movie_schema,
)
from repro.errors import SqlLexError, SqlParseError, SqlValidationError
from repro.query_nl.plans import UNPLANNABLE, shape_key
from repro.query_nl.translator import QueryTranslator
from repro.querygraph.builder import QueryGraphBuilder, use_reference_validation
from repro.sql.lexer import shape_of, tokenize
from repro.sql.parser import (
    Parser,
    ReferenceParser,
    parse_sql,
    parse_sql_reference,
    use_reference_parser,
)
from repro.sql.tokens import TokenType


def workload_sql():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


EDGE_CASES = [
    "select a + b * c from T",
    "select -a * b from T",
    "select - 2 from T",
    "select * from T where not a = 1 and b in (1, 2, 3)",
    "select * from T where a between 1 and 2 and b like 'x%'",
    "select * from T where not exists (select * from U) or x not in (select y from U)",
    "select * from T where a is not null and not b is null",
    "select case when a = 1 then 'x' else 'y' end from T",
    "select * from T where a = all (select b from U)",
    "select * from T where x > any (select b from U)",
    "select * from T where (a = b) = c",
    "select * from T where a = b = c",
    "select * from T where exists (select * from U) + 1",
    "select * from T where a + exists (select * from U)",
    "select * from T where not a = b = c",
    "select * from T where a = -b + +c",
    "select * from T where a || b || c = d",
    "select * from T where + not a",
    "select * from T where - not a",
    "select * from T where a > not",
    "select * from T where a in (not b)",
    "select * from T where a not between 1 and 2 or b = 2",
    "select * from T where NOT NOT a",
    "select * from T where not in",
    "select * from T where not between",
    "select * from",
    "select",
    "select * from T where",
    "select a.* , b from T",
    "insert into T (a, b) values (1, 'x'), (2, 'y')",
    "update T set a = a + 1 where b < 3",
    "delete from T where not exists (select * from U where U.x = T.x)",
    "create view V as select a from T",
    "select count(distinct x), sum(y) from T group by z having count(*) > 1"
    " order by 1 desc limit 5 offset 2",
]

_FUZZ_VOCAB = [
    "select", "from", "where", "and", "or", "not", "in", "exists", "between",
    "like", "is", "null", "T", "U", "a", "b", "c", "m", ".", "(", ")", ",",
    "*", "+", "-", "/", "%", "=", "<>", "<=", ">=", "<", ">", "||", "1",
    "2.5", "'x'", "count", "sum", "case", "when", "then", "else", "end",
    "all", "any", "group", "by", "having", "order", "distinct", "as",
]


def _parse_outcome(parser_cls, sql):
    try:
        return ("ok", parser_cls(tokenize(sql)).parse_statement())
    except (SqlParseError, SqlLexError) as error:
        return ("error", type(error).__name__, error.message, error.line, error.column)


def assert_parsers_agree(sql):
    fast = _parse_outcome(Parser, sql)
    reference = _parse_outcome(ReferenceParser, sql)
    assert fast == reference, f"parsers disagree on {sql!r}"


class TestPrattParserEquivalence:
    def test_paper_queries(self):
        for sql in PAPER_QUERIES.values():
            assert_parsers_agree(sql)

    def test_generated_workload(self):
        for sql in workload_sql():
            assert_parsers_agree(sql)

    def test_edge_cases(self):
        for sql in EDGE_CASES:
            assert_parsers_agree(sql)

    def test_token_soup_fuzz(self):
        rng = random.Random(20260728)
        for _ in range(600):
            sql = " ".join(rng.choice(_FUZZ_VOCAB) for _ in range(rng.randint(1, 25)))
            assert_parsers_agree(sql)

    def test_mutated_workload_fuzz(self):
        rng = random.Random(42)
        base = workload_sql() + list(PAPER_QUERIES.values())
        for _ in range(400):
            words = rng.choice(base).split()
            index = rng.randrange(len(words))
            action = rng.random()
            if action < 0.4:
                del words[index]
            elif action < 0.8:
                words.insert(index, rng.choice(_FUZZ_VOCAB))
            else:
                words[index] = rng.choice(_FUZZ_VOCAB)
            assert_parsers_agree(" ".join(words))

    def test_use_reference_parser_scope(self):
        sql = "select a from T"
        with use_reference_parser():
            inside = parse_sql(sql)
        assert inside == parse_sql(sql) == parse_sql_reference(sql)


# ---------------------------------------------------------------------------
# Fused validation vs the standalone-validator oracle
# ---------------------------------------------------------------------------

INVALID_QUERIES = [
    "select x from NOPE",
    "select x from MOVIES m, MOVIES m",
    "select q.title from MOVIES m",
    "select m.nope from MOVIES m",
    "select id from MOVIES m, DIRECTOR d",
    "select nosuchcol from MOVIES m",
    "select title from MOVIES m where m.bad = 1",
    "select title from MOVIES m where zz > 2",
    "select m.title from MOVIES m where m.id in (select nope from GENRE g)",
    "select m.title from MOVIES m where exists (select * from NOPE)",
    "select m.title from MOVIES m where exists (select * from GENRE g where g.bad = m.id)",
    "select m.title from MOVIES m group by m.bad",
    "select m.title from MOVIES m having m.bad > 1",
    "select m.title from MOVIES m order by m.bad",
    "select m.title from MOVIES m where m.id = (select max(bad) from GENRE)",
    "select m.title from MOVIES m where (select max(bad) from GENRE) = m.id",
    "select m.title from MOVIES m where m.bad = 1 or exists (select * from NOPE)",
    "select count(m.bad) from MOVIES m",
    "select m.title from MOVIES m where m.year > 1 and g.genre = 'x'",
    "select m.title from MOVIES m where not (m.bad = 1)",
    "select m.title, (select g.bad from GENRE g) from MOVIES m",
    "select m.title from MOVIES m order by (select z.q from GENRE z)",
]


def _graph_signature(graph):
    return (
        sorted(
            (
                binding,
                qc.relation_name,
                [(e.attribute, e.output_alias) for e in qc.select_entries],
                [c.text for c in qc.where_constraints],
                [c.text for c in qc.having_constraints],
                list(qc.group_by),
                list(qc.order_by),
                list(qc.aggregate_entries),
            )
            for binding, qc in graph.classes.items()
        ),
        sorted(
            (e.left_binding, e.right_binding, e.is_foreign_key, e.is_equality)
            for e in graph.join_edges
        ),
        [
            (
                edge.connector,
                edge.outer_binding,
                edge.in_having,
                edge.condition_text,
                _graph_signature(edge.subgraph),
            )
            for edge in graph.nesting_edges
        ],
        [c.text for c in graph.other_constraints],
        list(graph.global_aggregates),
    )


def _build_outcome(schema, sql, reference):
    builder = QueryGraphBuilder(schema)
    try:
        if reference:
            with use_reference_validation():
                graph = builder.build(parse_sql(sql))
        else:
            graph = builder.build(parse_sql(sql))
        return ("ok", _graph_signature(graph))
    except SqlValidationError as error:
        return ("error", type(error).__name__, str(error), error.args)


class TestFusedValidationEquivalence:
    def test_valid_statements_build_identical_graphs(self):
        schema = movie_schema()
        for sql in list(PAPER_QUERIES.values()) + workload_sql():
            fused = _build_outcome(schema, sql, reference=False)
            oracle = _build_outcome(schema, sql, reference=True)
            assert fused[0] == "ok"
            assert fused == oracle, sql

    def test_invalid_statements_raise_identical_errors(self):
        schema = movie_schema()
        for sql in INVALID_QUERIES:
            fused = _build_outcome(schema, sql, reference=False)
            oracle = _build_outcome(schema, sql, reference=True)
            assert fused[0] == "error", sql
            assert fused == oracle, sql

    def test_fused_mode_shares_scopes_across_repeated_shapes(self):
        schema = movie_schema()
        builder = QueryGraphBuilder(schema)
        builder.build(parse_sql("select m.title from MOVIES m where m.year = 1"))
        scopes = len(builder._scope_cache)
        builder.build(parse_sql("select m.title from MOVIES m where m.year = 2"))
        assert len(builder._scope_cache) == scopes


# ---------------------------------------------------------------------------
# Shape-keyed phrase plans vs the full pipeline
# ---------------------------------------------------------------------------

#: Representative query sets for the two non-movie shipped schemas.
EMPLOYEE_QUERIES = [
    "select e.name from EMP e where e.sal > 50000",
    "select e.name from EMP e where e.sal > 70000",
    "select e.name, d.dname from EMP e, DEPT d where e.did = d.did",
    "select e1.name from EMP e1, DEPT d, EMP e2"
    " where e1.did = d.did and d.mgr = e2.eid and e1.sal > e2.sal",
    "select d.dname, count(*) from EMP e, DEPT d where e.did = d.did group by d.dname",
    "select e.name from EMP e where e.age between 30 and 40",
]

LIBRARY_QUERIES = [
    "select i.title from ITEM i where i.year = 2001",
    "select i.title from ITEM i where i.year = 1999",
    "select a.name, i.title from ITEM i, WROTE w, AUTHOR a"
    " where i.iid = w.iid and w.aid = a.aid and a.name = 'A. Writer'",
    "select i.title from ITEM i where i.iid in"
    " (select w.iid from WROTE w where w.aid in"
    " (select a.aid from AUTHOR a where a.country = 'Greece'))",
]


def _assert_field_equivalence(fast, oracle, sql):
    for field in ("text", "concise", "notes", "rewritten_sql", "category"):
        assert getattr(fast, field) == getattr(oracle, field), (sql, field)


class TestPhrasePlanEquivalence:
    def _check_corpus(self, schema, corpus):
        # phrase_plans explicit: the class under test is the plan path, so
        # it must stay on under REPRO_ORACLE's flipped defaults.
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        for sql in corpus:  # first pass compiles the plans
            fast.translate(sql)
        for sql in corpus:  # second pass renders from them
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)
        return fast

    def test_movie_workload_byte_identical(self):
        schema = movie_schema()
        corpus = workload_sql() + list(PAPER_QUERIES.values())
        fast = self._check_corpus(schema, corpus)
        assert fast._plans.hits > 0

    def test_employee_queries_byte_identical(self):
        self._check_corpus(employee_schema(), EMPLOYEE_QUERIES)

    def test_library_queries_byte_identical(self):
        self._check_corpus(library_schema(), LIBRARY_QUERIES)

    def test_literal_variants_hit_plans_and_match_oracle(self):
        schema = movie_schema()
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        base = workload_sql()
        for sql in base:
            fast.translate(sql)
        names = [
            "Brad Pitt", "Scarlett Johansson", "Mark Hamill",
            "Morgan Freeman", "Eric Bana", "Christina Ricci",
        ]
        hits_before = fast._plans.hits
        for round_number in range(3):
            for index, sql in enumerate(base):
                variant = sql.replace("Brad Pitt", names[(round_number + index) % len(names)])
                _assert_field_equivalence(
                    fast.translate(variant), oracle.translate(variant), variant
                )
        assert fast._plans.hits > hits_before

    def test_verify_plans_mode_passes_on_workload(self):
        translator = QueryTranslator(
            movie_schema(), cache_size=None, phrase_plans=True, verify_plans=True
        )
        for sql in workload_sql():
            translator.translate(sql)  # compiles
        for sql in workload_sql():
            translator.translate(sql)  # every hit self-verifies vs the oracle

    def test_lazy_graph_and_classification_materialise(self):
        translator = QueryTranslator(movie_schema(), cache_size=None, phrase_plans=True)
        sql = "select m.title from MOVIES m where m.year = 1995"
        translator.translate(sql)  # compile the plan
        rendered = translator.translate("select m.title from MOVIES m where m.year = 2003")
        assert rendered._graph is None  # not built eagerly on a plan hit
        graph = rendered.graph
        assert graph is not None and "2003" in str(graph.statement)
        assert rendered.classification is not None
        assert rendered.classification.category is rendered.category

    def test_plan_guards_split_single_vs_multi_word_values(self):
        schema = movie_schema()
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        template = (
            "select m.title from MOVIES m, GENRE g"
            " where m.id = g.mid and g.genre = '{value}'"
        )
        # single-word value reads as an adjective, multi-word cannot
        for value in ("action", "science fiction", "drama", "film noir"):
            sql = template.format(value=value)
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)

    def test_plan_guards_split_count_thresholds(self):
        schema = movie_schema()
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        template = (
            "select m.id, m.title, count(*) from MOVIES m, CAST c"
            " where m.id = c.mid group by m.id, m.title"
            " having {threshold} < (select count(*) from GENRE g where g.mid = m.id)"
        )
        # threshold == 1 pins the "more than one genre" idiom; other values
        # must spell their own number word ("more than three genres").
        for threshold in (1, 2, 3, 5, 13):
            sql = template.format(threshold=threshold)
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)

    def test_same_value_idiom_guard(self):
        schema = movie_schema()
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        template = (
            "select a.id, a.name from MOVIES m, CAST c, ACTOR a"
            " where m.id = c.mid and c.aid = a.id"
            " group by a.id, a.name having count(distinct m.year) = {value}"
        )
        # = 1 is the "all the same" idiom (IMPOSSIBLE); = 2 is a plain
        # aggregate — the guard keys them into different plans.
        for value in (1, 2, 1, 3):
            sql = template.format(value=value)
            fast_result, oracle_result = fast.translate(sql), oracle.translate(sql)
            _assert_field_equivalence(fast_result, oracle_result, sql)

    def test_unlexable_input_falls_back(self):
        translator = QueryTranslator(movie_schema())
        assert shape_of("select 'unterminated from T") is None
        with pytest.raises(SqlLexError):
            translator.translate("select 'unterminated from T")

    def test_shape_of_mirrors_tokenizer(self):
        for sql in workload_sql() + list(PAPER_QUERIES.values()):
            shape, literals = shape_of(sql)
            expected_parts, expected_literals = [], []
            for token in tokenize(sql):
                if token.type is TokenType.EOF:
                    continue
                if token.type is TokenType.NUMBER:
                    expected_parts.append("\x00N")
                    expected_literals.append(token.value)
                elif token.type is TokenType.STRING:
                    expected_parts.append("\x00S")
                    expected_literals.append(token.value)
                else:
                    expected_parts.append(token.value)
            assert shape == tuple(expected_parts)
            assert literals == tuple(expected_literals)

    def test_shape_key_mask_cache_roundtrip(self):
        for sql in workload_sql():
            first = shape_key(sql)
            second = shape_key(sql)  # served by the masked-text cache
            assert first == second

    def test_values_coinciding_with_sentinels_stay_slots(self):
        """A literal equal to a would-be sentinel must not become fixed text."""
        schema = movie_schema()
        fast = QueryTranslator(schema, cache_size=None, phrase_plans=True)
        oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
        template = "select m.title from MOVIES m where m.year = {value}"
        # 6 is the first int sentinel; 700.25 the first float sentinel.
        for value in (6, 9, 7, 12, 2005):
            sql = template.format(value=value)
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)
        for value in ("700.25", "701.25", "1999.5"):
            sql = template.format(value=value)
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)
        sentinel_word = "select a.name from ACTOR a where a.name = 'uqz0qzu'"
        other_word = "select a.name from ACTOR a where a.name = 'plainname'"
        for sql in (sentinel_word, other_word, sentinel_word):
            _assert_field_equivalence(fast.translate(sql), oracle.translate(sql), sql)

    def test_lexicon_override_invalidates_exact_text_lru(self):
        schema = movie_schema()
        translator = QueryTranslator(schema)  # default (shared) lexicon + LRU
        sql = "select m.title from MOVIES m where m.year = 1995"
        before = translator.translate(sql).text
        other = QueryTranslator(schema)  # shares the per-schema default lexicon
        other.lexicon.set_caption("MOVIES", "year", "vintage")
        after = translator.translate(sql).text
        assert "vintage" in after and after != before
        # restore the shared default for other tests
        other.lexicon.set_caption("MOVIES", "year", "release year")

    def test_lexicon_override_invalidates_plans(self):
        from repro.lexicon.lexicon import default_lexicon

        schema = movie_schema()
        lexicon = default_lexicon(schema)
        translator = QueryTranslator(schema, lexicon=lexicon, cache_size=None, phrase_plans=True)
        sql = "select m.title from MOVIES m where m.year = 1995"
        before = translator.translate(sql).text
        translator.translate(sql)  # plan hit
        lexicon.set_concept("MOVIES", "film", "films")
        after = translator.translate(sql).text
        assert "films" in after and after != before
        oracle = QueryTranslator(
            schema, lexicon=lexicon, cache_size=None, phrase_plans=False
        )
        assert after == oracle.translate(sql).text
