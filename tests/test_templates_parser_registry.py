"""Tests for the paper-syntax template parser and the label registry."""

import pytest

from repro.content.presets import MOVIE_LIST_DEFINITION
from repro.datasets import movie_schema
from repro.errors import MissingTemplateError, TemplateSyntaxError
from repro.templates.parser import parse_list_template, parse_template
from repro.templates.registry import TemplateRegistry
from repro.templates.spec import SlotPart, TextPart


class TestParseTemplate:
    def test_paper_director_template(self):
        label = parse_template('DNAME + " was born" + " in " + BLOCATION')
        assert [type(p) for p in label.parts] == [SlotPart, TextPart, TextPart, SlotPart]
        assert label.parts[1].text == " was born"

    def test_qualified_slots(self):
        label = parse_template('DIRECTOR.name + " x"')
        assert label.parts[0].name == "DIRECTOR.name"
        assert label.parts[0].attribute == "name"

    def test_single_quoted_text(self):
        label = parse_template("'the movie ' + TITLE")
        assert label.parts[0].text == "the movie "

    def test_escaped_quote(self):
        label = parse_template('"Allen\\"s work" + X')
        assert label.parts[0].text == 'Allen"s work'

    def test_indexed_slot(self):
        label = parse_template('TITLE[i] + " (" + YEAR[i] + ")"')
        assert label.parts[0].index == "i"

    def test_empty_template_rejected(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("   ")

    def test_dangling_plus_rejected(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template('"x" +')

    def test_garbage_rejected(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template('"x" + ???')

    def test_instantiation_of_parsed_template(self):
        label = parse_template('DNAME + " was born" + " in " + BLOCATION')
        assert (
            label.instantiate({"DNAME": "Woody Allen", "BLOCATION": "Brooklyn"})
            == "Woody Allen was born in Brooklyn"
        )


class TestParseListTemplate:
    def test_paper_movie_list_definition(self):
        movie_list = parse_list_template(MOVIE_LIST_DEFINITION)
        assert movie_list.name == "MOVIE_LIST"
        rendered = movie_list.instantiate(
            [
                {"MOVIES.title": "Match Point", "MOVIES.year": 2005},
                {"MOVIES.title": "Anything Else", "MOVIES.year": 2003},
            ]
        )
        assert "Match Point (2005), " in rendered
        assert rendered.endswith("Anything Else (2003)")
        assert "and " in rendered

    def test_requires_define_keyword(self):
        with pytest.raises(TemplateSyntaxError):
            parse_list_template('[i < arityOf(X)] {X[i]}')

    def test_requires_both_sections(self):
        with pytest.raises(TemplateSyntaxError):
            parse_list_template('DEFINE L as [i < arityOf(X)] {X[i] + ", "}')

    def test_requires_braces_in_last_section(self):
        with pytest.raises(TemplateSyntaxError):
            parse_list_template(
                'DEFINE L as [i < arityOf(X)] {X[i]} [i = arityOf(X)] "and " + X[i]'
            )


class TestTemplateRegistry:
    @pytest.fixture
    def registry(self) -> TemplateRegistry:
        return TemplateRegistry(movie_schema())

    def test_default_relation_template(self, registry):
        label = registry.relation_template("DIRECTOR")
        rendered = label.instantiate({"DIRECTOR.name": "Woody Allen"}, strict=False)
        assert rendered == "the director's name is Woody Allen"

    def test_default_projection_template_starts_with_heading_slot(self, registry):
        label = registry.projection_template("MOVIES", "year")
        assert isinstance(label.parts[0], SlotPart)
        rendered = label.instantiate({"MOVIES.title": "Troy", "MOVIES.year": 2004})
        assert rendered == "Troy has release year 2004"

    def test_default_join_template_uses_fk_verb(self, registry):
        label = registry.join_template("CAST", "ACTOR")
        assert label is not None
        rendered = label.instantiate(
            {"CAST.role": "Achilles", "ACTOR.name": "Brad Pitt"}, strict=False
        )
        assert "plays in" in rendered

    def test_join_template_returns_none_for_unrelated(self, registry):
        assert registry.join_template("MOVIES", "DIRECTOR", allow_reverse=False) is None

    def test_registered_templates_override_defaults(self, registry):
        registry.set_projection_template(
            "MOVIES", "year", parse_template('MOVIES.title + " came out in " + MOVIES.year')
        )
        rendered = registry.projection_template("MOVIES", "year").instantiate(
            {"MOVIES.title": "Troy", "MOVIES.year": 2004}
        )
        assert rendered == "Troy came out in 2004"

    def test_reverse_join_template_fallback(self, registry):
        registry.set_join_template("DIRECTOR", "MOVIES", parse_template('"X" + DIRECTOR.name'))
        assert registry.join_template("MOVIES", "DIRECTOR") is not None
        assert registry.has_join_template("DIRECTOR", "MOVIES")
        assert not registry.has_join_template("MOVIES", "DIRECTOR")

    def test_missing_list_template_raises(self, registry):
        with pytest.raises(MissingTemplateError):
            registry.list_template("NOPE")

    def test_case_insensitive_relation_names(self, registry):
        assert registry.relation_template("movies") is not None
