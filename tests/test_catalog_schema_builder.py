"""Tests for the schema and the fluent builder."""

import pytest

from repro.catalog import DataType, SchemaBuilder
from repro.catalog.attribute import Attribute
from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.errors import (
    DuplicateRelationError,
    InvalidForeignKeyError,
    InvalidSchemaError,
    UnknownRelationError,
)


def build_company_schema() -> Schema:
    return (
        SchemaBuilder("company")
        .relation("EMP", concept="employee")
        .column("eid", "integer", primary_key=True)
        .column("name", "text", heading=True)
        .column("did", "integer")
        .done()
        .relation("DEPT", concept="department")
        .column("did", "integer", primary_key=True)
        .column("dname", "text", heading=True)
        .done()
        .foreign_key("EMP", ["did"], "DEPT", ["did"], verb="works in")
        .build()
    )


class TestSchema:
    def test_relation_lookup_case_insensitive(self):
        schema = build_company_schema()
        assert schema.relation("emp").name == "EMP"

    def test_unknown_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            build_company_schema().relation("NOPE")

    def test_duplicate_relation_rejected(self):
        relation = Relation("R", [Attribute("a")])
        with pytest.raises(DuplicateRelationError):
            Schema("s", [relation, relation])

    def test_foreign_keys_between(self):
        schema = build_company_schema()
        assert len(schema.foreign_keys_between("EMP", "DEPT")) == 1
        assert len(schema.foreign_keys_between("DEPT", "EMP")) == 1

    def test_foreign_key_validation_unknown_relation(self):
        from repro.catalog.foreign_key import ForeignKey

        relation = Relation("R", [Attribute("a")])
        with pytest.raises(InvalidForeignKeyError):
            Schema("s", [relation], [ForeignKey("R", ("a",), "MISSING", ("x",))])

    def test_foreign_key_validation_unknown_attribute(self):
        from repro.catalog.foreign_key import ForeignKey

        first = Relation("R", [Attribute("a")])
        second = Relation("S", [Attribute("b")])
        with pytest.raises(InvalidForeignKeyError):
            Schema("s", [first, second], [ForeignKey("R", ("a",), "S", ("missing",))])

    def test_adjacent_relations(self):
        schema = build_company_schema()
        assert schema.adjacent_relations("EMP") == ("DEPT",)

    def test_subschema_keeps_internal_foreign_keys(self):
        schema = build_company_schema()
        sub = schema.subschema(["EMP", "DEPT"])
        assert len(sub.foreign_keys) == 1
        only_emp = schema.subschema(["EMP"])
        assert len(only_emp.foreign_keys) == 0

    def test_validate_requires_primary_keys(self):
        schema = Schema("s", [Relation("R", [Attribute("a")])])
        with pytest.raises(InvalidSchemaError):
            schema.validate(require_primary_keys=True)

    def test_iteration_and_len(self):
        schema = build_company_schema()
        assert len(schema) == 2
        assert [r.name for r in schema] == ["EMP", "DEPT"]


class TestSchemaBuilder:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            SchemaBuilder("x").relation("R").column("a", "varchar2").done()

    def test_datatype_enum_accepted(self):
        schema = (
            SchemaBuilder("x").relation("R").column("a", DataType.INTEGER, primary_key=True).done().build()
        )
        assert schema.relation("R").attribute("a").dtype is DataType.INTEGER

    def test_foreign_key_requires_defined_relations(self):
        builder = SchemaBuilder("x").relation("R").column("a", "integer").done()
        with pytest.raises(UnknownRelationError):
            builder.foreign_key("R", ["a"], "MISSING", ["b"])

    def test_primary_key_columns_are_not_nullable(self):
        schema = (
            SchemaBuilder("x").relation("R").column("a", "integer", primary_key=True).done().build()
        )
        assert schema.relation("R").attribute("a").nullable is False

    def test_heading_method(self):
        schema = (
            SchemaBuilder("x")
            .relation("R")
            .column("a", "integer", primary_key=True)
            .column("b", "text")
            .column("c", "text")
            .heading("c")
            .done()
            .build()
        )
        assert schema.relation("R").heading_attribute.name == "c"

    def test_movie_schema_matches_figure_1(self):
        from repro.datasets import movie_schema

        schema = movie_schema()
        assert set(schema.relation_names) == {
            "MOVIES", "DIRECTOR", "DIRECTED", "ACTOR", "CAST", "GENRE",
        }
        assert len(schema.foreign_keys) == 5
        assert schema.relation("MOVIES").heading_attribute.name == "title"
        assert schema.relation("DIRECTED").bridge is True
