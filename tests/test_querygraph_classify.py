"""Tests for the query-difficulty taxonomy (Section 3.3)."""

import pytest

from repro.datasets import (
    MANAGER_QUERY,
    PAPER_QUERIES,
    employee_schema,
    generate_workload,
    movie_schema,
    paper_workload,
)
from repro.querygraph import QueryCategory, classify_query

EXPECTED = {
    "Q1": QueryCategory.PATH,
    "Q2": QueryCategory.SUBGRAPH,
    "Q3": QueryCategory.GRAPH,
    "Q4": QueryCategory.GRAPH,
    "Q5": QueryCategory.NESTED,
    "Q6": QueryCategory.NESTED,
    "Q7": QueryCategory.AGGREGATE,
    "Q8": QueryCategory.IMPOSSIBLE,
    "Q9": QueryCategory.IMPOSSIBLE,
}


@pytest.fixture(scope="module")
def schema():
    return movie_schema()


class TestPaperTaxonomy:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_paper_query_categories(self, schema, name):
        classification = classify_query(schema, PAPER_QUERIES[name])
        assert classification.category is EXPECTED[name]
        assert classification.reasons

    def test_manager_query_is_graph(self):
        classification = classify_query(employee_schema(), MANAGER_QUERY)
        assert classification.category is QueryCategory.GRAPH

    def test_families(self):
        assert QueryCategory.PATH.family == "graph-based"
        assert QueryCategory.NESTED.family == "non-graph"
        assert QueryCategory.IMPOSSIBLE.family == "impossible"

    def test_difficulty_is_monotone_in_paper_order(self):
        order = [
            QueryCategory.PATH,
            QueryCategory.SUBGRAPH,
            QueryCategory.GRAPH,
            QueryCategory.NESTED,
            QueryCategory.AGGREGATE,
            QueryCategory.IMPOSSIBLE,
        ]
        difficulties = [c.difficulty for c in order]
        assert difficulties == sorted(difficulties)
        assert difficulties[0] == 1 and difficulties[-1] == 6


class TestMoreClassifications:
    def test_single_relation_query_is_path(self, schema):
        c = classify_query(schema, "select title from MOVIES where year > 2000")
        assert c.category is QueryCategory.PATH

    def test_disconnected_join_is_graph(self, schema):
        c = classify_query(schema, "select d.name, g.genre from DIRECTOR d, GENRE g")
        assert c.category is QueryCategory.GRAPH

    def test_plain_group_by_is_aggregate(self, schema):
        c = classify_query(
            schema, "select g.genre, count(*) from GENRE g group by g.genre"
        )
        assert c.category is QueryCategory.AGGREGATE

    def test_any_quantifier_is_nested_not_impossible(self, schema):
        c = classify_query(
            schema,
            "select m.title from MOVIES m where m.id = any (select g.mid from GENRE g)",
        )
        assert c.category is QueryCategory.NESTED

    def test_count_distinct_greater_than_one_not_impossible(self, schema):
        c = classify_query(
            schema,
            "select c.aid from CAST c, MOVIES m where m.id = c.mid"
            " group by c.aid having count(distinct m.year) > 1",
        )
        assert c.category is QueryCategory.AGGREGATE

    def test_exists_subquery_is_nested(self, schema):
        c = classify_query(
            schema,
            "select m.title from MOVIES m where exists (select * from GENRE g where g.mid = m.id)",
        )
        assert c.category is QueryCategory.NESTED


class TestWorkloadClassification:
    def test_paper_workload_matches_expected_families(self, schema):
        for query in paper_workload():
            classification = classify_query(schema, query.sql)
            assert classification.category.value == query.expected_category

    def test_generated_workload_classifies_as_labelled(self, schema):
        for query in generate_workload(queries_per_category=3, seed=7):
            classification = classify_query(schema, query.sql)
            assert classification.category.value == query.expected_category, query.name

    def test_generated_workload_is_deterministic(self):
        first = [q.sql for q in generate_workload(queries_per_category=4, seed=11)]
        second = [q.sql for q in generate_workload(queries_per_category=4, seed=11)]
        assert first == second
