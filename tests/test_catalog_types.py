"""Tests for repro.catalog.types."""

import datetime

import pytest

from repro.catalog.types import (
    DataType,
    check_value,
    coerce_value,
    infer_type,
    is_valid_value,
    render_value,
)
from repro.errors import TypeMismatchError


class TestIsValidValue:
    def test_none_is_valid_for_every_type(self):
        for dtype in DataType:
            assert is_valid_value(dtype, None)

    def test_integer_accepts_int(self):
        assert is_valid_value(DataType.INTEGER, 7)

    def test_integer_rejects_bool(self):
        assert not is_valid_value(DataType.INTEGER, True)

    def test_float_accepts_int_and_float(self):
        assert is_valid_value(DataType.FLOAT, 7)
        assert is_valid_value(DataType.FLOAT, 7.5)

    def test_float_rejects_bool(self):
        assert not is_valid_value(DataType.FLOAT, False)

    def test_text_accepts_str_only(self):
        assert is_valid_value(DataType.TEXT, "abc")
        assert not is_valid_value(DataType.TEXT, 3)

    def test_date_accepts_date(self):
        assert is_valid_value(DataType.DATE, datetime.date(2009, 1, 4))
        assert not is_valid_value(DataType.DATE, "2009-01-04")


class TestCheckValue:
    def test_returns_valid_value(self):
        assert check_value(DataType.INTEGER, 5) == 5

    def test_raises_on_mismatch(self):
        with pytest.raises(TypeMismatchError):
            check_value(DataType.INTEGER, "five")

    def test_error_mentions_context(self):
        with pytest.raises(TypeMismatchError, match="MOVIES.year"):
            check_value(DataType.INTEGER, "x", context="MOVIES.year")


class TestCoerceValue:
    def test_none_and_empty_string_become_null(self):
        assert coerce_value(DataType.INTEGER, None) is None
        assert coerce_value(DataType.INTEGER, "") is None

    def test_integer_from_text(self):
        assert coerce_value(DataType.INTEGER, "42") == 42

    def test_float_from_text(self):
        assert coerce_value(DataType.FLOAT, "2.5") == 2.5

    def test_boolean_words(self):
        assert coerce_value(DataType.BOOLEAN, "yes") is True
        assert coerce_value(DataType.BOOLEAN, "0") is False

    def test_boolean_invalid(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(DataType.BOOLEAN, "maybe")

    def test_date_from_iso_text(self):
        assert coerce_value(DataType.DATE, "1935-12-01") == datetime.date(1935, 12, 1)

    def test_date_from_datetime(self):
        stamp = datetime.datetime(2005, 6, 1, 12, 30)
        assert coerce_value(DataType.DATE, stamp) == datetime.date(2005, 6, 1)

    def test_invalid_integer_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(DataType.INTEGER, "not-a-number")

    def test_non_string_valid_value_passes_through(self):
        assert coerce_value(DataType.INTEGER, 9) == 9


class TestRenderValue:
    def test_none_renders_as_unknown(self):
        assert render_value(None) == "unknown"

    def test_date_renders_like_the_paper(self):
        assert render_value(datetime.date(1935, 12, 1)) == "December 1, 1935"

    def test_boolean_renders_as_words(self):
        assert render_value(True) == "yes"
        assert render_value(False) == "no"

    def test_whole_float_drops_decimal(self):
        assert render_value(3.0) == "3"

    def test_fractional_float(self):
        assert render_value(2.5) == "2.5"

    def test_string_verbatim(self):
        assert render_value("Match Point") == "Match Point"


class TestInferType:
    def test_infer_each_type(self):
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type(datetime.date.today()) is DataType.DATE
        assert infer_type("x") is DataType.TEXT
