"""Tests for the query-graph builder (Section 3.2, Figure 2)."""

import pytest

from repro.datasets import PAPER_QUERIES, movie_schema
from repro.errors import SqlValidationError
from repro.querygraph import QueryGraphBuilder, build_query_graph


@pytest.fixture(scope="module")
def schema():
    return movie_schema()


@pytest.fixture(scope="module")
def builder(schema):
    return QueryGraphBuilder(schema)


class TestClasses:
    def test_one_class_per_tuple_variable(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q3"])
        assert set(graph.bindings) == {"m", "c1", "a1", "c2", "a2"}
        assert graph.has_multiple_instances()

    def test_select_entries_attached_to_right_class(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q1"])
        assert [e.attribute for e in graph.query_class("m").select_entries] == ["title"]
        assert graph.query_class("a").select_entries == []

    def test_where_constraints_attached_locally(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q1"])
        constraints = graph.query_class("a").where_constraints
        assert len(constraints) == 1
        assert "Brad Pitt" in constraints[0].text

    def test_unqualified_column_resolved_to_owner(self, schema):
        graph = build_query_graph(
            schema, "select title from MOVIES m where year > 2000"
        )
        assert graph.query_class("m").select_entries[0].attribute == "title"
        assert len(graph.query_class("m").where_constraints) == 1

    def test_star_expands_per_class(self, schema):
        graph = build_query_graph(schema, "select * from ACTOR a")
        assert [e.attribute for e in graph.query_class("a").select_entries] == ["id", "name"]

    def test_select_entry_render(self, schema):
        graph = build_query_graph(schema, "select m.title as t from MOVIES m")
        assert graph.query_class("m").select_entries[0].render() == "m.MOVIES.title: t"

    def test_class_render_contains_figure2_compartments(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q1"])
        rendering = graph.query_class("a").render()
        for tag in ("<<FROM>>", "<<alias>>", "<<SELECT>>", "<<WHERE>>", "<<HAVING>>"):
            assert tag in rendering

    def test_group_by_and_order_by_notes(self, schema):
        graph = build_query_graph(
            schema,
            "select m.year, count(*) from MOVIES m group by m.year order by m.year desc",
        )
        assert graph.query_class("m").group_by == ["m.year"]
        assert graph.query_class("m").order_by == ["m.year DESC"]

    def test_invalid_query_raises(self, schema):
        with pytest.raises(SqlValidationError):
            build_query_graph(schema, "select x.title from MOVIES m")


class TestJoinEdges:
    def test_fk_joins_flagged(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q1"])
        assert len(graph.join_edges) == 2
        assert all(edge.is_foreign_key for edge in graph.join_edges)

    def test_non_fk_join_flagged(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q4"])
        non_fk = graph.non_fk_join_edges()
        assert len(non_fk) == 1
        assert "role" in non_fk[0].text

    def test_inequality_edge_is_not_equality(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q3"])
        inequality = [e for e in graph.join_edges if not e.is_equality]
        assert len(inequality) == 1

    def test_cycle_detection(self, schema):
        assert build_query_graph(schema, PAPER_QUERIES["Q4"]).has_cycle()
        assert not build_query_graph(schema, PAPER_QUERIES["Q1"]).has_cycle()

    def test_connectivity(self, schema):
        assert build_query_graph(schema, PAPER_QUERIES["Q2"]).is_connected()
        cross = build_query_graph(schema, "select d.name, g.genre from DIRECTOR d, GENRE g")
        assert not cross.is_connected()

    def test_degree(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q2"])
        assert graph.degree("m") == 3


class TestNestingEdges:
    def test_q5_nested_chain(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q5"])
        assert len(graph.nesting_edges) == 1
        edge = graph.nesting_edges[0]
        assert edge.connector == "IN"
        assert len(edge.subgraph.nesting_edges) == 1

    def test_q6_not_exists_connector(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q6"])
        assert graph.nesting_edges[0].connector == "NOT EXISTS"

    def test_q7_scalar_connector_in_having(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q7"])
        assert graph.nesting_edges[0].connector.startswith("SCALAR")
        assert graph.nesting_edges[0].in_having

    def test_q9_quantified_connector(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q9"])
        assert graph.nesting_edges[0].connector == "<= ALL"
        assert graph.nesting_edges[0].outer_binding == "m"

    def test_aggregates_recorded(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q7"])
        assert graph.has_aggregates()
        assert "count(*)" in graph.global_aggregates

    def test_aggregate_with_argument_attached_to_class(self, schema):
        graph = build_query_graph(
            schema, "select count(m.id) from MOVIES m group by m.year"
        )
        assert graph.query_class("m").aggregate_entries == ["count(m.id)"]


class TestRendering:
    def test_render_text_includes_nested_blocks(self, schema):
        text = build_query_graph(schema, PAPER_QUERIES["Q5"]).render_text()
        assert "[nested via IN in WHERE]" in text

    def test_to_dot_produces_digraph(self, schema):
        dot = build_query_graph(schema, PAPER_QUERIES["Q2"]).to_dot()
        assert dot.startswith("digraph") and '"m"' in dot

    def test_to_dot_includes_nested_subgraph(self, schema):
        dot = build_query_graph(schema, PAPER_QUERIES["Q7"]).to_dot()
        assert "nq0_" in dot

    def test_summary(self, schema):
        summary = build_query_graph(schema, PAPER_QUERIES["Q3"]).summary()
        assert "multi-instance=True" in summary
