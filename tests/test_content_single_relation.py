"""Tests for single-relation tuple translation (Section 2.2 alternatives a/b)."""

import pytest

from repro.content import (
    TupleStyle,
    UserProfile,
    attribute_clause,
    heading_clause,
    heading_value,
    movie_spec,
    tuple_clauses,
)
from repro.datasets import movie_database
from repro.nlg.realize import realize_paragraph


@pytest.fixture(scope="module")
def context():
    database = movie_database()
    spec = movie_spec(database.schema)
    woody = database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))[0]
    return database, spec, woody


class TestHeadingClause:
    def test_heading_value(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        assert heading_value(relation, woody) == "Woody Allen"

    def test_heading_only_sentence(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clause = heading_clause(relation, woody, spec.registry)
        assert clause.render() == "the director's name is Woody Allen"

    def test_profile_heading_override(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        profile = UserProfile(heading_overrides={"DIRECTOR": "blocation"})
        assert heading_value(relation, woody, profile) == "Brooklyn, New York, USA"


class TestAttributeClause:
    def test_structural_split_with_verb_hint(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clause = attribute_clause(relation, "blocation", woody, spec.registry)
        assert clause.subject == "Woody Allen"
        assert clause.verb == "was born"
        assert clause.complements == ("in Brooklyn, New York, USA",)

    def test_null_attribute_gives_no_clause(self, context):
        database, spec, _ = context
        relation = database.schema.relation("MOVIES")
        clause = attribute_clause(relation, "year", {"title": "X", "year": None}, spec.registry)
        assert clause is None

    def test_default_template_clause(self, context):
        database, spec, _ = context
        relation = database.schema.relation("MOVIES")
        from repro.templates.registry import TemplateRegistry

        defaults = TemplateRegistry(database.schema)
        clause = attribute_clause(relation, "year", {"title": "Troy", "year": 2004}, defaults)
        assert clause.render() == "Troy has release year 2004"


class TestTupleClauses:
    def test_full_style_merges_birth_clauses(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clauses = tuple_clauses(
            relation,
            woody,
            spec.registry,
            style=TupleStyle.FULL,
            attribute_order=spec.order_for("DIRECTOR"),
        )
        assert len(clauses) == 1
        assert realize_paragraph(clauses) == (
            "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
        )

    def test_attribute_order_controls_complement_order(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clauses = tuple_clauses(
            relation, woody, spec.registry, attribute_order=("bdate", "blocation")
        )
        assert clauses[0].complements[0].startswith("on December")

    def test_heading_only_style(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clauses = tuple_clauses(relation, woody, spec.registry, style=TupleStyle.HEADING_ONLY)
        assert len(clauses) == 1
        assert "Woody Allen" in clauses[0].render()

    def test_relation_without_descriptive_attributes_falls_back_to_heading(self, context):
        database, spec, _ = context
        relation = database.schema.relation("ACTOR")
        clauses = tuple_clauses(relation, {"id": 1, "name": "Brad Pitt"}, spec.registry)
        assert len(clauses) == 1
        assert "Brad Pitt" in clauses[0].render()

    def test_unmerged_clauses_when_merge_disabled(self, context):
        database, spec, woody = context
        relation = database.schema.relation("DIRECTOR")
        clauses = tuple_clauses(relation, woody, spec.registry, merge=False)
        assert len(clauses) == 2
