"""Integration tests: the paper's target narratives for Q1-Q9 and Section 3.1."""

import pytest

from repro.content import employee_spec, movie_spec
from repro.datasets import (
    MANAGER_QUERY,
    PAPER_NARRATIVES,
    PAPER_QUERIES,
    employee_schema,
    movie_schema,
)
from repro.query_nl import QueryTranslator
from repro.querygraph import QueryCategory


@pytest.fixture(scope="module")
def translator() -> QueryTranslator:
    schema = movie_schema()
    return QueryTranslator(schema, spec=movie_spec(schema))


class TestExactPaperNarratives:
    def test_q1_verbose_and_concise(self, translator):
        translation = translator.translate(PAPER_QUERIES["Q1"])
        assert translation.text == PAPER_NARRATIVES["Q1"]
        assert translation.concise == PAPER_NARRATIVES["Q1_concise"]

    def test_q2(self, translator):
        assert translator.translate(PAPER_QUERIES["Q2"]).text == PAPER_NARRATIVES["Q2"]

    def test_q3_pairs_phrase(self, translator):
        text = translator.translate(PAPER_QUERIES["Q3"]).text
        assert text.startswith("Find pairs of actors")
        assert text.endswith("the same movie")

    def test_q4(self, translator):
        assert translator.translate(PAPER_QUERIES["Q4"]).text == PAPER_NARRATIVES["Q4"]

    def test_q5_concise_matches_paper(self, translator):
        translation = translator.translate(PAPER_QUERIES["Q5"])
        assert PAPER_NARRATIVES["Q5"] in translation.variants.values()
        assert translation.rewritten_sql is not None
        assert "CAST" in translation.rewritten_sql

    def test_q6(self, translator):
        assert translator.translate(PAPER_QUERIES["Q6"]).text == PAPER_NARRATIVES["Q6"]

    def test_q7(self, translator):
        assert translator.translate(PAPER_QUERIES["Q7"]).text == PAPER_NARRATIVES["Q7"]

    def test_q8(self, translator):
        assert translator.translate(PAPER_QUERIES["Q8"]).text == PAPER_NARRATIVES["Q8"]

    def test_q9(self, translator):
        assert translator.translate(PAPER_QUERIES["Q9"]).text == PAPER_NARRATIVES["Q9"]

    def test_manager_query_shape(self):
        schema = employee_schema()
        translation = QueryTranslator(schema, spec=employee_spec(schema)).translate(MANAGER_QUERY)
        assert translation.text == (
            "Find the names of employees whose salary is greater than the salary"
            " of their manager"
        )


class TestTranslationMetadata:
    @pytest.mark.parametrize(
        "name,category",
        [
            ("Q1", QueryCategory.PATH),
            ("Q2", QueryCategory.SUBGRAPH),
            ("Q3", QueryCategory.GRAPH),
            ("Q4", QueryCategory.GRAPH),
            ("Q5", QueryCategory.NESTED),
            ("Q6", QueryCategory.NESTED),
            ("Q7", QueryCategory.AGGREGATE),
            ("Q8", QueryCategory.IMPOSSIBLE),
            ("Q9", QueryCategory.IMPOSSIBLE),
        ],
    )
    def test_categories_attached(self, translator, name, category):
        assert translator.translate(PAPER_QUERIES[name]).category is category

    def test_notes_explain_the_choice(self, translator):
        notes = " ".join(translator.translate(PAPER_QUERIES["Q6"]).notes)
        assert "division" in notes

    def test_graph_attached_to_translation(self, translator):
        translation = translator.translate(PAPER_QUERIES["Q2"])
        assert translation.graph is not None
        assert len(translation.graph.classes) == 6

    def test_every_translation_starts_with_find(self, translator):
        for name, sql in PAPER_QUERIES.items():
            assert translator.translate(sql).text.startswith("Find"), name

    def test_variants_dictionary(self, translator):
        variants = translator.translate(PAPER_QUERIES["Q1"]).variants
        assert set(variants) == {"default", "concise"}
