"""Tests for metrics, the experiment registry and reporting."""

import pytest

from repro.datasets import PAPER_QUERIES, movie_schema
from repro.evaluation import (
    TextMetrics,
    compression_ratio,
    coverage,
    experiment_ids,
    format_report,
    markdown_table,
    query_coverage,
    query_elements,
    redundancy_ratio,
    run_all_experiments,
    run_experiment,
    summary_rows,
    tokens,
)


class TestMetrics:
    def test_tokens(self):
        assert tokens("Find movies, where Brad Pitt plays!") == [
            "find", "movies", "where", "brad", "pitt", "plays",
        ]

    def test_redundancy_ratio(self):
        assert redundancy_ratio("a b c d") == 0.0
        assert redundancy_ratio("a a a a") == pytest.approx(0.75)
        assert redundancy_ratio("") == 0.0

    def test_compression_ratio(self):
        assert compression_ratio("one two", "one two three four") == pytest.approx(0.5)
        assert compression_ratio("x", "") == 1.0

    def test_text_metrics(self):
        metrics = TextMetrics.of("One two three. Four five.")
        assert metrics.words == 5 and metrics.sentences == 2

    def test_query_elements_include_constants_and_concepts(self):
        elements = query_elements(movie_schema(), PAPER_QUERIES["Q1"])
        assert "Brad Pitt" in elements
        assert "movie" in elements and "actor" in elements
        assert "cast" not in elements  # bridge relations are skipped

    def test_coverage(self):
        assert coverage("find movies where brad pitt plays", ["movie", "Brad Pitt"]) == 1.0
        assert coverage("nothing relevant", ["Brad Pitt"]) == 0.0
        assert coverage("anything", []) == 1.0

    def test_query_coverage_of_paper_narrative(self):
        schema = movie_schema()
        value = query_coverage(
            schema, PAPER_QUERIES["Q1"], "Find the titles of movies where the actor Brad Pitt plays"
        )
        assert value == 1.0

    def test_query_coverage_penalises_missing_constant(self):
        schema = movie_schema()
        value = query_coverage(schema, PAPER_QUERIES["Q1"], "Find some movies")
        assert value < 1.0


class TestExperiments:
    def test_registry_covers_every_paper_artifact(self):
        ids = experiment_ids()
        for required in ["FIG1", "FIG2", "EX-WOODY-COMPACT", "EX-WOODY-PROCEDURAL",
                         "EX-DIRECTOR", "EX-SPLIT", "Q0"] + sorted(PAPER_QUERIES):
            assert required in ids

    def test_woody_compact_experiment_matches_paper(self):
        result = run_experiment("EX-WOODY-COMPACT")
        assert result.artifacts["match"] is True

    def test_paper_query_experiments_report_exactness(self):
        for name in ("Q2", "Q6", "Q7", "Q8", "Q9"):
            result = run_experiment(name)
            assert result.artifacts["exact_match"] is True, name

    def test_fig1_experiment_counts(self):
        artifacts = run_experiment("FIG1").artifacts
        assert artifacts["relations"] == 6
        assert artifacts["join_edges"] == 5

    def test_fig2_experiment_has_all_compartments(self):
        assert run_experiment("FIG2").artifacts["has_all_compartments"] is True

    def test_run_all_and_reporting(self):
        results = run_all_experiments()
        assert len(results) == len(experiment_ids())
        report = format_report(results)
        assert "EX-WOODY-COMPACT" in report
        table = markdown_table(results)
        assert table.startswith("| Experiment |")
        rows = summary_rows()
        assert any("[exact]" in row for row in rows)

    def test_coverage_reported_for_queries(self):
        result = run_experiment("Q1")
        assert result.artifacts["coverage"] >= 0.8
