"""Docs health in tier-1: links resolve, the README quickstart is real.

The full example-run pass lives in CI (``python tools/check_docs.py``);
here we keep the fast guarantees: every relative link in ``README.md``
and ``docs/*.md`` points at a file that exists, the documents the
acceptance criteria name are present, and the README's quickstart code
block executes as written.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_docs import broken_links, doc_files  # noqa: E402


def test_docs_exist():
    for required in ("README.md", "docs/architecture.md", "docs/api.md",
                     "docs/performance.md"):
        assert (REPO / required).is_file(), f"{required} is missing"


def test_every_relative_link_resolves():
    broken = broken_links()
    assert not broken, f"broken documentation links: {broken}"


def test_doc_files_cover_readme_and_docs():
    names = {path.name for path in doc_files()}
    assert "README.md" in names and "architecture.md" in names


def test_readme_quickstart_block_runs():
    text = (REPO / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README.md has no python quickstart block"
    # The first python block is the 30-second quickstart; it must be
    # copy-pasteable as-is.
    exec(compile(blocks[0], "README.md#quickstart", "exec"), {})
