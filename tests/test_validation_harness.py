"""The batch differential-validation harness and its CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets.domains import CorpusQuery, Domain, get_domain
from repro.validation import (
    BASELINE_MODE,
    Mode,
    ValidationHarness,
    ValidationReport,
    default_modes,
)
from repro.validation.report import Mismatch, QueryOutcome

REPO = Path(__file__).resolve().parent.parent


def mini_domain() -> Domain:
    """A tiny unregistered domain so differ tests stay fast."""
    twitter = get_domain("twitter")
    return Domain(
        name="mini",
        description="three-query probe over the twitter schema",
        schema_factory=twitter.schema_factory,
        database_factory=twitter.database_factory,
        lexicon_factory=twitter.lexicon_factory,
        corpus_factory=lambda: [
            CorpusQuery(
                "scan",
                "select u.handle from USERS u where u.country = 'norway'",
                "path",
            ),
            CorpusQuery(
                "agg",
                "select u.country, count(*) from USERS u group by u.country",
                "aggregate",
            ),
            CorpusQuery(
                "boom",
                "select u.nosuchcolumn from USERS u",
                "path",
            ),
        ],
    )


class TestModes:
    def test_default_matrix_is_baseline_first_and_complete(self):
        modes = default_modes()
        assert modes[0] == BASELINE_MODE
        assert len(modes) == 6
        assert len(set(modes)) == 6

    def test_mode_validates_axes(self):
        with pytest.raises(ValueError):
            Mode("jit", "rows")
        with pytest.raises(ValueError):
            Mode("compiled", "tape")

    def test_harness_requires_baseline_mode(self):
        with pytest.raises(ValueError, match="baseline"):
            ValidationHarness(domains=[mini_domain()], modes=(Mode("oracle", "rows"),))


class TestZeroDiff:
    def test_mini_domain_full_matrix_is_clean(self):
        report = ValidationHarness(domains=[mini_domain()]).run()
        assert report.ok
        assert report.total_queries == 3
        assert report.total_comparisons == 3 * 5
        assert "PASS" in report.render()

    def test_real_domain_across_both_axes(self):
        # One registered domain across both matrix axes (the full
        # five-domain matrix runs in the corpus-validate CI job).
        modes = (
            BASELINE_MODE,
            Mode("oracle", "rows"),
            Mode("compiled", "paged"),
            Mode("compiled", "columnar"),
        )
        report = ValidationHarness(domains=[get_domain("twitter")], modes=modes).run()
        assert report.ok, report.render()

    def test_errors_agree_across_modes(self):
        # The "boom" query fails identically everywhere, so a clean run
        # proves error OBJECTS are compared, not just successes.
        report = ValidationHarness(domains=[mini_domain()]).run()
        assert report.ok


class TestInjectedMismatches:
    def _run_with(self, mutate) -> ValidationReport:
        return ValidationHarness(
            domains=[mini_domain()],
            modes=(BASELINE_MODE, Mode("oracle", "columnar")),
            mutate=mutate,
        ).run()

    def test_corrupted_cell_is_reported_with_all_kinds(self):
        def mutate(mode, domain, query, outcome):
            if mode != BASELINE_MODE and query.name == "scan":
                return QueryOutcome(
                    query=outcome.query,
                    expected_category=outcome.expected_category,
                    translation="corrupted translation",
                    category=outcome.category,
                    rows="corrupted rows",
                    narration="corrupted narration",
                    error=outcome.error,
                )
            return outcome

        report = self._run_with(mutate)
        assert not report.ok
        kinds = {m.kind for m in report.mismatches}
        assert kinds == {"translation", "rows", "narration"}
        assert all(m.query == "scan" for m in report.mismatches)
        assert all(m.mode == "oracle/columnar" for m in report.mismatches)

    def test_error_divergence_is_classified_as_error(self):
        def mutate(mode, domain, query, outcome):
            if mode != BASELINE_MODE and query.name == "boom":
                return QueryOutcome(
                    query=outcome.query,
                    expected_category=outcome.expected_category,
                    error="SomeOtherError('different',)",
                )
            return outcome

        report = self._run_with(mutate)
        assert any(m.kind == "error" and m.query == "boom" for m in report.mismatches)

    def test_category_flip_in_baseline_is_a_taxonomy_mismatch(self):
        def mutate(mode, domain, query, outcome):
            if mode == BASELINE_MODE and query.name == "agg":
                return QueryOutcome(
                    query=outcome.query,
                    expected_category=outcome.expected_category,
                    translation=outcome.translation,
                    category="path",
                    rows=outcome.rows,
                    narration=outcome.narration,
                    error=outcome.error,
                )
            return outcome

        report = self._run_with(mutate)
        kinds = {m.kind for m in report.mismatches}
        assert "taxonomy" in kinds
        # The corrupted baseline also diverges from the healthy other mode.
        assert "category" in kinds

    def test_mismatch_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Mismatch(
                domain="d", query="q", mode="m", kind="vibes", baseline=None, observed=None
            )


class TestReportShape:
    def test_to_dict_is_json_serializable_and_complete(self):
        report = ValidationHarness(
            domains=[mini_domain()], modes=(BASELINE_MODE, Mode("oracle", "rows"))
        ).run()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["baseline"] == "compiled/rows"
        assert payload["domains"][0]["domain"] == "mini"
        assert payload["domains"][0]["queries"] == 3
        assert payload["domains"][0]["mismatches"] == []

    def test_render_lists_mismatches(self):
        def mutate(mode, domain, query, outcome):
            if mode != BASELINE_MODE and query.name == "scan":
                return QueryOutcome(
                    query=outcome.query,
                    expected_category=outcome.expected_category,
                    translation="corrupted",
                )
            return outcome

        report = ValidationHarness(
            domains=[mini_domain()],
            modes=(BASELINE_MODE, Mode("oracle", "rows")),
            mutate=mutate,
        ).run()
        rendered = report.render()
        assert "FAIL" in rendered
        assert "mini/scan" in rendered


class TestCli:
    def _run(self, *args):
        env = dict(os.environ)
        env.pop("REPRO_ORACLE", None)
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "validate_corpus.py"), *args],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_demo_passes_with_exit_zero(self):
        result = self._run("--demo", "--no-narration")
        assert result.returncode == 0, result.stderr
        assert "PASS" in result.stdout

    def test_drill_fails_with_nonzero_exit(self):
        result = self._run("--demo", "--no-narration", "--drill")
        assert result.returncode == 1, result.stdout + result.stderr
        assert "MISMATCH" in result.stdout
        assert "[drill]" in result.stdout
