"""Tests for the NLG core: clauses, aggregation, realisation, planning."""

import pytest

from repro.nlg import (
    Clause,
    DocumentPlan,
    LengthBudget,
    attach_relative,
    clause_from_text,
    coordinate,
    merge_clauses,
    merge_same_subject,
    merge_templates,
    realize_paragraph,
    realize_sentence,
    sentence_count,
    split_prefix,
    word_count,
)
from repro.templates.parser import parse_template


class TestClause:
    def test_render_joins_parts(self):
        clause = Clause("Woody Allen", "was born", ("in Brooklyn", "on December 1, 1935"))
        assert clause.render() == "Woody Allen was born in Brooklyn on December 1, 1935"

    def test_empty_clause(self):
        assert Clause("").is_empty
        assert not Clause("x").is_empty

    def test_with_extra_complements(self):
        clause = Clause("X", "is", ("a",)).with_extra_complements(("b",))
        assert clause.complements == ("a", "b")

    def test_entity_phrase_with_relative(self):
        phrase = attach_relative("the director D1", "was born in Italy")
        assert phrase.render() == "the director D1 who was born in Italy"

    def test_clause_from_text(self):
        assert clause_from_text("Just text").render() == "Just text"


class TestAggregation:
    def test_merge_clauses_same_subject_and_verb(self):
        merged = merge_clauses(
            [
                Clause("Woody Allen", "was born", ("in Brooklyn, New York, USA",)),
                Clause("Woody Allen", "was born", ("on December 1, 1935",)),
            ]
        )
        assert len(merged) == 1
        assert merged[0].render() == (
            "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935"
        )

    def test_merge_clauses_different_verbs_stay_apart(self):
        merged = merge_clauses(
            [Clause("X", "was born", ("a",)), Clause("X", "directed", ("b",))]
        )
        assert len(merged) == 2

    def test_merge_clauses_without_verb_never_merge(self):
        merged = merge_clauses([Clause("same text"), Clause("same text")])
        assert len(merged) == 2

    def test_merge_clauses_case_insensitive_subject(self):
        merged = merge_clauses(
            [Clause("X", "is", ("a",)), Clause("x", "is", ("b",))]
        )
        assert len(merged) == 1

    def test_merge_same_subject_coordinates_predicates(self):
        merged = merge_same_subject(
            [Clause("X", "was born", ("in Rome",)), Clause("X", "directed", ("Troy",))]
        )
        assert len(merged) == 1
        assert merged[0].render() == "X was born in Rome and directed Troy"

    def test_merge_templates_factors_common_prefix(self):
        first = parse_template('DNAME + " was born" + " in " + BLOCATION')
        second = parse_template('DNAME + " was born" + " on " + BDATE')
        merged = merge_templates([first, second])
        assert len(merged) == 1
        rendered = merged[0].instantiate(
            {"DNAME": "Woody Allen", "BLOCATION": "Brooklyn", "BDATE": "December 1, 1935"}
        )
        assert rendered == "Woody Allen was born in Brooklyn on December 1, 1935"

    def test_merge_templates_requires_shared_slot_and_text(self):
        first = parse_template('"the year is " + YEAR')
        second = parse_template('"the year is " + GENRE')
        merged = merge_templates([first, second])
        assert len(merged) == 2  # common prefix has no slot -> not a common expression

    def test_merge_templates_drops_exact_duplicates(self):
        label = parse_template('A + " is " + B')
        assert len(merge_templates([label, label])) == 1

    def test_split_prefix(self):
        label = parse_template('DNAME + " was born" + " in " + BLOCATION')
        prefix, rest = split_prefix(label)
        assert len(prefix) == 3 and len(rest) == 1


class TestRealize:
    def test_realize_sentence_capitalises_and_punctuates(self):
        assert realize_sentence("hello world") == "Hello world."

    def test_realize_sentence_keeps_existing_punctuation(self):
        assert realize_sentence("Done!") == "Done!"

    def test_realize_paragraph_skips_empty(self):
        assert realize_paragraph(["one", "", "two"]) == "One. Two."

    def test_coordinate(self):
        assert coordinate(["a", "b", "c"]) == "a, b, and c"

    def test_word_and_sentence_count(self):
        assert word_count("one two three.") == 3
        assert sentence_count("A. B? C!") == 3


class TestDocumentPlan:
    def test_render_unbounded(self):
        plan = DocumentPlan()
        plan.add_text("first sentence")
        plan.add_text("second sentence")
        assert plan.render() == "First sentence. Second sentence."

    def test_max_sentences_drops_lightest(self):
        plan = DocumentPlan()
        plan.add_text("important", weight=5.0)
        plan.add_text("unimportant detail", weight=1.0)
        plan.add_text("also important", weight=4.0)
        rendered = plan.render(LengthBudget(max_sentences=2))
        assert "unimportant" not in rendered
        assert rendered.index("Important") < rendered.index("Also important")

    def test_max_words_budget(self):
        plan = DocumentPlan()
        plan.add_text("short", weight=1.0)
        plan.add_text("a much longer sentence with many words in it", weight=0.5)
        rendered = plan.render(LengthBudget(max_words=4))
        assert rendered == "Short."

    def test_budget_never_drops_last_sentence(self):
        plan = DocumentPlan()
        plan.add_text("a very long single sentence that exceeds the word budget")
        assert plan.render(LengthBudget(max_words=2))

    def test_add_clause(self):
        plan = DocumentPlan()
        plan.add_clause(Clause("Woody Allen", "directed", ("three movies",)))
        assert plan.render() == "Woody Allen directed three movies."

    def test_total_words(self):
        plan = DocumentPlan()
        plan.add_text("one two")
        plan.add_text("three")
        assert plan.total_words == 3
