"""Resilience suite: deadlines, retries, breakers, shedding, chaos.

Three layers of coverage, mirroring the layering of the code:

* **policy units** — :class:`Deadline`, :class:`RetryPolicy`,
  :class:`CircuitBreaker` and :class:`AdmissionController` exercised in
  isolation with injected clocks (no sleeps, no timing races);
* **service integration** — admission shedding, in-queue deadline
  expiry and overload answers through the real ``NarrationSession``
  queue/drain machinery, made deterministic by holding the session's
  work lock instead of racing wall clock;
* **shard-tier drills** — a SIGKILLed worker stays invisible to
  idempotent reads, a permanently-dead worker's shapes degrade to the
  next ring node byte-identically, and the chaos soak replays the
  50-query corpus plus interleaved mutations under seeded fault
  schedules (crashes, frame corruption/drops, slow replicas) asserting
  byte-equivalence with the single-process oracle throughout.
"""

import asyncio
import os
import subprocess
import sys

import pytest

from repro.datasets import generate_workload, movie_database
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    NarrationService,
    RetryPolicy,
    ServiceOverloaded,
    ShardError,
    ShardRouter,
    ShardRouterConfig,
)
from repro.service.faults import (
    CORRUPT,
    DELIVER,
    DROP,
    FaultInjector,
    FaultPlan,
    corrupt_frame,
    parse_faults,
)
from repro.sql.shape import is_mutation, shape_hash, statement_keyword

DB_FACTORY = "repro.datasets.movies:movie_database"

TIMEOUT = 240


def run(coro, timeout=TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


def corpus_sql(count=50):
    queries = [q.sql for q in generate_workload(queries_per_category=12, seed=7)]
    return queries[:count]


class FakeClock:
    """An injectable monotonic clock: tests step time, nothing sleeps."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_unbounded_deadline_never_expires(self):
        assert Deadline.after(None) is Deadline.NONE
        assert not Deadline.NONE.expired
        assert Deadline.NONE.remaining() is None
        # Unbounded bound() passes the attempt slice through untouched
        # (and None stays None — what asyncio.wait_for wants).
        assert Deadline.NONE.bound(5.0) == 5.0
        assert Deadline.NONE.bound(None) is None
        Deadline.NONE.require("anything")  # never raises

    def test_remaining_counts_down_and_floors_at_zero(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(10.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0  # never negative

    def test_bound_takes_the_tighter_of_budget_and_slice(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.bound(5.0) == pytest.approx(2.0)  # budget is tighter
        assert deadline.bound(0.5) == pytest.approx(0.5)  # slice is tighter
        assert deadline.bound(None) == pytest.approx(2.0)

    def test_require_raises_typed_and_timeout_compatible(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        deadline.require("the test began")
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.require("the test finished")
        # Callers that already catch TimeoutError keep working.
        assert isinstance(excinfo.value, TimeoutError)
        assert "the test finished" in str(excinfo.value)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_is_deterministic_for_seed_and_salt(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        delays = [a.delay(n, salt="execute:123") for n in (1, 2, 3)]
        assert delays == [b.delay(n, salt="execute:123") for n in (1, 2, 3)]
        # A different salt (or seed) jitters differently.
        assert delays != [a.delay(n, salt="execute:124") for n in (1, 2, 3)]
        assert delays != [RetryPolicy(seed=8).delay(n, "execute:123") for n in (1, 2, 3)]

    def test_backoff_grows_within_jitter_bounds_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.5, seed=1
        )
        for attempt, raw in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.5), (9, 0.5)):
            delay = policy.delay(attempt, salt="s")
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=3.0, max_delay=10.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == pytest.approx([0.1, 0.3, 0.9])

    def test_should_retry_respects_attempts_and_deadline(self):
        clock = FakeClock()
        policy = RetryPolicy(attempts=3)
        live = Deadline.after(10.0, clock)
        assert policy.should_retry(1, live)
        assert policy.should_retry(2, live)
        assert not policy.should_retry(3, live)  # attempts is the total
        clock.advance(10.0)
        assert not policy.should_retry(1, live)  # expired budget ends it

    def test_invalid_configuration_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def breaker(self, clock, threshold=3, reset=5.0, probes=1):
        return CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset,
            probes=probes,
            clock=clock,
        )

    def test_trips_open_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # the streak resets: still closed
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()  # third consecutive: trip
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # no second concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_retrips(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe found the worker still sick
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 2
        clock.advance(4.9)
        assert breaker.state == "open"  # the timer restarted at the re-trip
        clock.advance(0.1)
        assert breaker.state == "half_open"

    def test_force_open_and_reset(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        breaker.force_open()
        assert breaker.state == "open" and not breaker.allow()
        breaker.reset()  # a fresh worker incarnation came up
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.stats()["state"] == "closed"
        assert breaker.stats()["trips"] == 1


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_default_admits_any_depth(self):
        admission = AdmissionController()
        admission.admit(10_000)
        assert admission.stats() == {"overload": 0, "deadline": 0, "in_queue": 0}

    def test_depth_threshold_sheds_typed(self):
        admission = AdmissionController(max_depth=2)
        admission.admit(0)
        admission.admit(1)
        with pytest.raises(ServiceOverloaded):
            admission.admit(2)
        with pytest.raises(ServiceOverloaded):
            admission.admit(7)
        assert admission.stats()["overload"] == 2

    def test_expired_deadline_is_shed_at_admission(self):
        clock = FakeClock()
        admission = AdmissionController()
        deadline = Deadline.after(1.0, clock)
        admission.admit(0, deadline)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            admission.admit(0, deadline)
        assert admission.stats()["deadline"] == 1

    def test_in_queue_shed_is_counted_separately(self):
        admission = AdmissionController()
        error = admission.shed_expired_in_queue()
        assert isinstance(error, DeadlineExceeded)
        assert admission.stats() == {"overload": 0, "deadline": 0, "in_queue": 1}

    def test_invalid_depth_is_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)


# ---------------------------------------------------------------------------
# Mutation detection hardening (satellite: _is_mutation misclassification)
# ---------------------------------------------------------------------------


class TestMutationDetection:
    def test_plain_statements(self):
        assert not is_mutation("select m.title from MOVIES m")
        assert is_mutation("insert into GENRE values (1, 'x')")
        assert is_mutation("update MOVIES set year = 2000")
        assert is_mutation("delete from GENRE")

    def test_leading_whitespace_and_case(self):
        assert not is_mutation("  \n\t SELECT m.title from MOVIES m")
        assert is_mutation("  \n InSeRt into GENRE values (1, 'x')")

    def test_line_comments_are_skipped(self):
        assert not is_mutation("-- a read\nselect m.title from MOVIES m")
        assert is_mutation("-- just a note\ninsert into GENRE values (1, 'x')")

    def test_block_comments_are_skipped(self):
        assert not is_mutation("/* hint */ select m.title from MOVIES m")
        assert not is_mutation("/* multi\n line */\n  select 1 from MOVIES")
        assert is_mutation("/* c */ update MOVIES set year = 1")

    def test_parenthesised_select_is_a_read(self):
        assert not is_mutation("(select m.title from MOVIES m)")
        assert not is_mutation("(( select m.title from MOVIES m ))")
        assert not is_mutation(" ( /* c */ -- d\n select 1 from MOVIES )")

    def test_degenerate_inputs_fail_safe_as_mutations(self):
        # No recognisable keyword → classified as a mutation: the cost is
        # a lost batching/retry opportunity, never a wrong answer (an
        # auto-retried write would be the dangerous misclassification).
        assert is_mutation("")
        assert is_mutation("   ")
        assert is_mutation("-- only a comment")
        assert is_mutation("/* unterminated select")

    def test_statement_keyword_extraction(self):
        assert statement_keyword("  (select 1") == "select"
        assert statement_keyword("-- x\ninsert into T") == "insert"
        assert statement_keyword("/* a */ UPDATE T set x = 1") == "update"
        assert statement_keyword("/* never closed") == ""


# ---------------------------------------------------------------------------
# Fault injector (satellite: deterministic schedules)
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_parse_faults_full_spec(self):
        plan = parse_faults(
            "seed=42, crash_nth=25, drop=0.01, corrupt=0.02,"
            " delay=0.1, delay_s=0.2, stall=0.3, stall_s=0.4"
        )
        assert plan == FaultPlan(
            seed=42,
            crash_nth=25,
            drop=0.01,
            corrupt=0.02,
            delay=0.1,
            delay_s=0.2,
            stall=0.3,
            stall_s=0.4,
        )
        assert plan.active

    def test_parse_faults_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            parse_faults("nonsense=1")
        with pytest.raises(ValueError):
            parse_faults("crash_nth")
        with pytest.raises(ValueError):
            parse_faults("drop=1.5")

    def test_from_env_is_quiet_unless_armed(self):
        assert FaultInjector.from_env("worker-0", environ={}) is None
        # A spec with no active fault (seed alone) stays quiet too.
        assert FaultInjector.from_env("worker-0", environ={"REPRO_FAULTS": "seed=9"}) is None
        injector = FaultInjector.from_env(
            "worker-0", environ={"REPRO_FAULTS": "seed=9,crash_nth=3"}
        )
        assert injector is not None
        assert injector.plan.crash_nth == 3

    def test_crash_scheduling(self):
        nth = FaultInjector(FaultPlan(crash_nth=3), "worker-0")
        assert [i for i in range(1, 10) if nth.crash_due(i)] == [3]
        every = FaultInjector(FaultPlan(crash_every=4), "worker-0")
        assert [i for i in range(1, 13) if every.crash_due(i)] == [4, 8, 12]

    def test_rate_extremes_are_certain(self):
        always_drop = FaultInjector(FaultPlan(drop=1.0), "worker-0")
        assert all(
            always_drop.response_fate(i) == (DROP, 0.0) for i in range(1, 20)
        )
        always_corrupt = FaultInjector(FaultPlan(corrupt=1.0), "worker-0")
        assert all(
            always_corrupt.response_fate(i) == (CORRUPT, 0.0) for i in range(1, 20)
        )
        quiet = FaultInjector(FaultPlan(), "worker-0")
        assert quiet.response_fate(5) == (DELIVER, 0.0)
        assert quiet.stall_for(5) == 0.0

    def test_corrupt_frame_keeps_length_breaks_codec(self):
        frame = bytes([1]) + b"x" * 16
        bad = corrupt_frame(frame)
        assert len(bad) == len(frame)
        assert bad[0] == 0xFF
        assert bad[1:] == frame[1:]

    def test_schedule_is_scope_dependent(self):
        plan = FaultPlan(seed=5, drop=0.3, stall=0.3)
        a = FaultInjector(plan, "worker-0").schedule(64)
        b = FaultInjector(plan, "worker-1").schedule(64)
        assert a != b  # different workers draw different fates

    def test_same_seed_identical_schedule_across_processes(self):
        # The acceptance bar for determinism: a fresh interpreter with a
        # different PYTHONHASHSEED derives the *exact* same schedule.
        spec = "seed=5,crash_nth=7,drop=0.1,corrupt=0.1,delay=0.2,stall=0.3"
        injector = FaultInjector(parse_faults(spec), "worker-3")
        expected = repr(injector.schedule(48))
        script = (
            "import sys; sys.path.insert(0, sys.argv[1]); "
            "from repro.service.faults import FaultInjector, parse_faults; "
            f"print(repr(FaultInjector(parse_faults({spec!r}), 'worker-3')"
            ".schedule(48)))"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONHASHSEED="999")
        output = subprocess.run(
            [sys.executable, "-c", script, src],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert output == expected


# ---------------------------------------------------------------------------
# Service-level shedding (deterministic: the work lock stands in for load)
# ---------------------------------------------------------------------------


class TestServiceShedding:
    def test_expired_budget_is_shed_at_admission(self):
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=1) as service:
                session = service.session(database=database)
                await session.execute("select count(*) from MOVIES")
                with pytest.raises(DeadlineExceeded):
                    await session.execute("select count(*) from GENRE", timeout=0.0)
                return session.stats()

        stats = run(main())
        assert stats["requests"]["shed"]["deadline"] == 1
        assert stats["requests"]["shed"]["in_queue"] == 0

    def test_deadline_expiry_in_queue_is_shed_typed(self):
        # Hold the session's work lock so the drain task is provably busy
        # while the queued request's budget runs out — no wall-clock race.
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=1) as service:
                session = service.session(database=database)
                await session.execute("select count(*) from MOVIES")
                assert session._work_lock.acquire(timeout=5)
                try:
                    pending = asyncio.ensure_future(
                        session.execute("select count(*) from GENRE", timeout=0.05)
                    )
                    await asyncio.sleep(0.3)  # the budget expires while queued
                finally:
                    session._work_lock.release()
                with pytest.raises(DeadlineExceeded) as excinfo:
                    await pending
                assert isinstance(excinfo.value, TimeoutError)
                return session.stats()

        stats = run(main())
        assert stats["requests"]["shed"]["in_queue"] == 1
        assert stats["requests"]["queue_depth"] == 0  # nothing left behind

    def test_overload_answers_typed_not_timeout(self):
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=1) as service:
                session = service.session(
                    database=database, admission=AdmissionController(max_depth=2)
                )
                await session.execute("select count(*) from MOVIES")
                assert session._work_lock.acquire(timeout=5)
                submitted = []
                try:
                    # The drain task pulls the first request and blocks on
                    # the held lock; the rest pile up in the queue until
                    # the depth threshold answers ServiceOverloaded.
                    for mid in range(6):
                        submitted.append(
                            asyncio.ensure_future(
                                session.execute(
                                    "select g.genre from GENRE g"
                                    f" where g.mid = {mid}"
                                )
                            )
                        )
                        await asyncio.sleep(0.05)
                finally:
                    session._work_lock.release()
                outcomes = await asyncio.gather(*submitted, return_exceptions=True)
                return outcomes, session.stats()

        outcomes, stats = run(main())
        shed = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
        served = [o for o in outcomes if hasattr(o, "rows")]
        assert len(shed) == 3 and len(served) == 3
        # The shed answer is the typed overload error, not a timeout.
        assert not any(isinstance(o, TimeoutError) for o in outcomes)
        assert stats["requests"]["shed"]["overload"] == 3
        assert stats["requests"]["queue_depth"] == 0


# ---------------------------------------------------------------------------
# Shard-tier drills
# ---------------------------------------------------------------------------


class TestShardResilience:
    def test_killed_worker_invisible_to_idempotent_reads(self):
        # The acceptance drill: SIGKILL one worker mid-workload, then keep
        # reading with *plain awaits* — zero caller-visible WorkerCrashed;
        # the router retries/degrades inside its deadline.
        corpus = corpus_sql(30)
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database)
                expected = [await oracle.execute(sql) for sql in corpus]
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                for sql in corpus[:10]:
                    await router.execute(sql)
                # Kill the worker that owns the very next read, so the
                # crash is observed before supervision finishes the
                # respawn (killing a fixed index is hash-distribution
                # dependent: if its shapes only appear late in the
                # corpus, the respawn wins the race and no retry or
                # degraded read is ever recorded).
                owner = router._ring.preference(shape_hash(corpus[0]))[0]
                assert router.kill_worker(owner) is not None
                results = [await router.execute(sql) for sql in corpus]
                stats = await router.stats()
            return expected, results, stats

        expected, results, stats = run(main())
        for got, want in zip(results, expected):
            assert got == want
            assert got.rows == want.rows
        assert stats["router"]["crashes"] >= 1
        # The crash was absorbed by a retry and/or a degraded reroute.
        assert stats["router"]["retries"] + stats["router"]["degraded_reads"] >= 1

    def test_degraded_rerouting_is_byte_identical(self):
        # With the respawn budget at zero, worker 0 stays permanently
        # dead — every read it owned must degrade to the next live ring
        # node and come back byte-identical (colder caches, same bytes).
        corpus = corpus_sql(20)
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database)
                expected = {
                    "translations": [await oracle.translate(sql) for sql in corpus],
                    "results": [await oracle.execute(sql) for sql in corpus],
                }
            async with ShardRouter(DB_FACTORY, workers=2, max_respawns=0) as router:
                await router.execute("select count(*) from MOVIES")
                # Kill a worker that owns at least one corpus shape —
                # killing a fixed index would assert degraded reads the
                # hash distribution may never produce.
                dead = router._ring.preference(shape_hash(corpus[0]))[0]
                router.kill_worker(dead)
                for _ in range(int(TIMEOUT / 0.05)):
                    if router._handles[dead].gave_up:
                        break
                    await asyncio.sleep(0.05)
                assert router._handles[dead].gave_up
                got = {
                    "translations": [await router.translate(sql) for sql in corpus],
                    "results": [await router.execute(sql) for sql in corpus],
                }
                stats = await router.stats()
            return expected, got, stats, dead

        expected, got, stats, dead = run(main())
        assert got["translations"] == expected["translations"]
        assert [t.text for t in got["translations"]] == [
            t.text for t in expected["translations"]
        ]
        for have, want in zip(got["results"], expected["results"]):
            assert have == want
            assert have.rows == want.rows
        health = stats["router"]["worker_health"]
        assert health[dead] == "dead"
        assert health[1 - dead] == "live"
        assert stats["router"]["degraded_reads"] > 0
        assert stats["workers"][dead]["session"] is None

    def test_mutations_are_never_auto_retried(self):
        # The counter contract behind the idempotency rule: a workload of
        # reads *and* writes through a healthy fleet retries nothing, and
        # the mutation count equals exactly the writes issued — no write
        # is ever replayed by the retry machinery.
        async def main():
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                for mid in range(1, 4):
                    await router.execute(
                        f"insert into GENRE values ({mid}, 'once-{mid}')"
                    )
                    await router.execute("select count(*) from GENRE")
                stats = await router.stats()
            return stats

        stats = run(main())
        assert stats["router"]["mutations"] == 3
        assert stats["router"]["requests_by_kind"]["execute_mutation"] == 3
        assert stats["router"]["retries"] == 0
        # Every replica applied each write exactly once.
        for worker in stats["workers"]:
            assert worker["applied_seq"] == 3


# ---------------------------------------------------------------------------
# Chaos soak (satellite: the deterministic fault harness, end to end)
# ---------------------------------------------------------------------------

#: Three seeded schedules, one per fault family: deterministic crashes,
#: frame corruption/drops, and slow replicas with delayed responses.
CHAOS_SCHEDULES = [
    "seed=11,crash_nth=17",
    "seed=23,corrupt=0.04,drop=0.04",
    "seed=37,stall=0.25,stall_s=0.03,delay=0.12,delay_s=0.03",
]


def chaos_history(corpus):
    """The soak workload: the full corpus with writes interleaved."""
    history = []
    for i, sql in enumerate(corpus):
        history.append(("translate", sql))
        history.append(("execute", sql))
        if i % 10 == 9:
            history.append(
                ("mutate", f"insert into GENRE values ({i // 10 + 1}, 'chaos-{i}')")
            )
    return history


class TestChaosSoak:
    @pytest.mark.parametrize("faults", CHAOS_SCHEDULES)
    def test_soak_byte_identical_to_oracle(self, faults, monkeypatch):
        corpus = corpus_sql(50)
        history = chaos_history(corpus)
        database = movie_database()

        async def oracle_run():
            outputs = []
            async with NarrationService(max_workers=2) as service:
                session = service.session(database=database)
                for kind, sql in history:
                    if kind == "translate":
                        outputs.append(await session.translate(sql))
                    elif kind == "execute":
                        outputs.append(await session.execute(sql))
                    else:
                        await session.execute(sql)
                        outputs.append(None)
            return outputs

        expected = run(oracle_run())

        monkeypatch.setenv("REPRO_FAULTS", faults)

        async def router_run():
            outputs = []
            # Short attempt slices keep dropped-frame retries cheap; the
            # overall budget stays generous so no request ever expires.
            config = ShardRouterConfig(request_timeout=120.0, attempt_timeout=2.0)
            async with ShardRouter(DB_FACTORY, workers=2, config=config) as router:
                for kind, sql in history:
                    if kind == "translate":
                        outputs.append(await router.translate(sql))
                    elif kind == "execute":
                        outputs.append(await router.execute(sql))
                    else:
                        # A broadcast may fail typed if the schedule kills
                        # a worker mid-write — but the write is already in
                        # the router's log, so every replica still applies
                        # it (on respawn replay), exactly like the oracle.
                        try:
                            await router.execute(sql)
                        except (ShardError, asyncio.TimeoutError):
                            pass
                        outputs.append(None)
                stats = await router.stats()
            return outputs, stats

        got, stats = run(router_run())
        assert len(got) == len(expected)
        for have, want in zip(got, expected):
            if want is None:
                continue  # mutations are compared through later reads
            assert have == want
            if hasattr(want, "rows"):
                assert have.rows == want.rows
            if hasattr(want, "text"):
                assert have.text == want.text
        # The schedule actually exercised the fault machinery.
        if "crash" in faults or "corrupt" in faults or "drop" in faults:
            assert (
                stats["router"]["crashes"]
                + stats["router"]["retries"]
                + stats["router"]["degraded_reads"]
            ) > 0
        assert stats["router"]["mutations"] == sum(
            1 for kind, _ in history if kind == "mutate"
        )
