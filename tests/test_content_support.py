"""Tests for content-translation support modules: navigation, ranking, summaries."""

import pytest

from repro.content import (
    UserProfile,
    coverage_plan,
    describe_histogram,
    describe_profile,
    describe_sample,
    describe_schema,
    describe_statistics,
    find_by_heading,
    non_bridge_path,
    rank_relations,
    rank_tuples,
    related_rows,
    score_tuple,
    tuple_connectivity,
)
from repro.datasets import movie_database
from repro.graph import SchemaGraph
from repro.nlg import LengthBudget


@pytest.fixture(scope="module")
def database():
    return movie_database()


class TestNavigation:
    def test_find_by_heading(self, database):
        row = find_by_heading(database, "DIRECTOR", "Woody Allen")
        assert row is not None and row["id"] == 1
        assert find_by_heading(database, "DIRECTOR", "Nobody") is None

    def test_related_rows_across_bridge(self, database):
        graph = SchemaGraph(database.schema)
        woody = find_by_heading(database, "DIRECTOR", "Woody Allen")
        path = graph.shortest_path("DIRECTOR", "MOVIES")
        movies = related_rows(database, path, woody)
        assert [m["title"] for m in movies] == [
            "Match Point", "Melinda and Melinda", "Anything Else",
        ]

    def test_related_rows_deduplicates(self, database):
        graph = SchemaGraph(database.schema)
        troy = find_by_heading(database, "MOVIES", "Troy")
        path = graph.shortest_path("MOVIES", "ACTOR")
        actors = related_rows(database, path, troy)
        assert len(actors) == len({a["id"] for a in actors}) == 2

    def test_related_rows_trivial_path(self, database):
        woody = find_by_heading(database, "DIRECTOR", "Woody Allen")
        assert related_rows(database, ["DIRECTOR"], woody) == [woody]

    def test_related_rows_unconnected_path(self, database):
        woody = find_by_heading(database, "DIRECTOR", "Woody Allen")
        assert related_rows(database, ["DIRECTOR", "ACTOR"], woody) == []

    def test_non_bridge_path_drops_bridges(self, database):
        assert non_bridge_path(database.schema, ("DIRECTOR", "DIRECTED", "MOVIES")) == [
            "DIRECTOR", "MOVIES",
        ]


class TestRanking:
    def test_connectivity_counts_references(self, database):
        relation = database.schema.relation("MOVIES")
        ocean = find_by_heading(database, "MOVIES", "Ocean Heist")
        troy = find_by_heading(database, "MOVIES", "Troy")
        assert tuple_connectivity(database, relation, ocean) > tuple_connectivity(
            database, relation, troy
        )

    def test_score_includes_profile_weight(self, database):
        relation = database.schema.relation("MOVIES")
        row = find_by_heading(database, "MOVIES", "Troy")
        light = UserProfile(relation_weights={"MOVIES": 0.1})
        heavy = UserProfile(relation_weights={"MOVIES": 10.0})
        assert score_tuple(database, relation, row, heavy) > score_tuple(
            database, relation, row, light
        )

    def test_rank_tuples_orders_by_score(self, database):
        ranked = rank_tuples(database, "MOVIES", limit=3)
        assert ranked[0].row["title"] == "Ocean Heist"
        assert len(ranked) == 3

    def test_rank_relations_excludes_bridges(self, database):
        names = [r.name for r in rank_relations(database)]
        assert "CAST" not in names and "DIRECTED" not in names
        assert names[0] == "MOVIES"

    def test_rank_relations_respects_profile_exclusions(self, database):
        profile = UserProfile(excluded_relations={"GENRE"})
        names = [r.name for r in rank_relations(database, profile)]
        assert "GENRE" not in names

    def test_coverage_plan_limits(self, database):
        plan = coverage_plan(database, max_relations=2, max_tuples_per_relation=1)
        assert len(plan) == 2
        assert all(len(tuples) == 1 for tuples in plan.values())


class TestSummaries:
    def test_schema_description_mentions_entities_and_links(self, database):
        text = describe_schema(database.schema)
        assert "movies" in text and "directors" in text
        assert "connected to" in text

    def test_statistics(self, database):
        text = describe_statistics(database)
        assert "nine movies" in text or "9 movies" in text

    def test_sample(self, database):
        text = describe_sample(database, "ACTOR", sample_size=2)
        assert "Brad Pitt" in text

    def test_sample_of_empty_relation(self):
        from repro.datasets import movie_database as make

        empty = make(seed_data=False)
        assert "empty" in describe_sample(empty, "ACTOR")

    def test_histogram(self):
        years = [1977, 1995, 1997, 1999, 2001, 2003, 2004, 2004, 2005]
        text = describe_histogram(years, "release year")
        assert "range from 1977 to 2005" in text
        assert "Most of them" in text

    def test_histogram_degenerate_cases(self):
        assert "no release year values" in describe_histogram([], "release year")
        assert "equal 2000" in describe_histogram([2000, 2000], "release year")

    def test_profile_description(self, database):
        profile = UserProfile(
            name="visitor",
            heading_overrides={"MOVIES": "year"},
            excluded_relations={"GENRE"},
            budget=LengthBudget(max_sentences=3, max_words=60),
        )
        text = describe_profile(profile, database.schema)
        assert "visitor" in text and "GENRE" in text and "three sentences" in text
