"""Tests for expression evaluation (three-valued logic, functions, subqueries)."""

import pytest

from repro.engine.evaluator import ExpressionEvaluator
from repro.errors import EvaluationError
from repro.sql.parser import Parser
from repro.sql.lexer import tokenize
from repro.storage.row import Row


def expr(text: str):
    """Parse a standalone expression by wrapping it in a SELECT."""
    parser = Parser(tokenize(f"select * from R where {text}"))
    return parser.parse_select().where


@pytest.fixture
def evaluator() -> ExpressionEvaluator:
    return ExpressionEvaluator()


ROW = Row({"r.a": 5, "r.b": None, "r.name": "Brad Pitt", "r.year": 2004})


class TestComparisons:
    def test_equality(self, evaluator):
        assert evaluator.evaluate(expr("r.a = 5"), ROW) is True
        assert evaluator.evaluate(expr("r.a = 6"), ROW) is False

    def test_null_comparison_is_unknown(self, evaluator):
        assert evaluator.evaluate(expr("r.b = 5"), ROW) is None

    def test_matches_treats_unknown_as_false(self, evaluator):
        assert evaluator.matches(expr("r.b = 5"), ROW) is False
        assert evaluator.matches(None, ROW) is True

    def test_ordering_operators(self, evaluator):
        assert evaluator.evaluate(expr("r.a < 10"), ROW) is True
        assert evaluator.evaluate(expr("r.a >= 5"), ROW) is True
        assert evaluator.evaluate(expr("r.a <> 5"), ROW) is False

    def test_incomparable_types_raise(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("r.name > 5"), ROW)


class TestBooleanLogic:
    def test_and_short_circuit_false(self, evaluator):
        assert evaluator.evaluate(expr("r.a = 6 and r.b = 1"), ROW) is False

    def test_and_with_unknown(self, evaluator):
        assert evaluator.evaluate(expr("r.a = 5 and r.b = 1"), ROW) is None

    def test_or_true_wins_over_unknown(self, evaluator):
        assert evaluator.evaluate(expr("r.a = 5 or r.b = 1"), ROW) is True

    def test_or_unknown(self, evaluator):
        assert evaluator.evaluate(expr("r.a = 6 or r.b = 1"), ROW) is None

    def test_not(self, evaluator):
        assert evaluator.evaluate(expr("not r.a = 5"), ROW) is False
        assert evaluator.evaluate(expr("not r.b = 5"), ROW) is None


class TestOperatorsAndFunctions:
    def test_arithmetic(self, evaluator):
        assert evaluator.evaluate(expr("r.a + 3 = 8"), ROW) is True
        assert evaluator.evaluate(expr("r.a * 2 = 10"), ROW) is True

    def test_integer_division_exact(self, evaluator):
        row = Row({"r.a": 10})
        assert evaluator.evaluate(expr("r.a / 2 = 5"), row) is True

    def test_division_by_zero(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("r.a / 0 = 1"), ROW)

    def test_concat(self, evaluator):
        row = Row({"r.x": "ab", "r.y": "cd"})
        assert evaluator.evaluate(expr("r.x || r.y = 'abcd'"), row) is True

    def test_like(self, evaluator):
        assert evaluator.evaluate(expr("r.name like 'Brad%'"), ROW) is True
        assert evaluator.evaluate(expr("r.name like '____ Pitt'"), ROW) is True
        assert evaluator.evaluate(expr("r.name not like 'X%'"), ROW) is True

    def test_between(self, evaluator):
        assert evaluator.evaluate(expr("r.year between 2000 and 2005"), ROW) is True
        assert evaluator.evaluate(expr("r.year not between 2000 and 2005"), ROW) is False

    def test_in_list(self, evaluator):
        assert evaluator.evaluate(expr("r.a in (1, 5, 9)"), ROW) is True
        assert evaluator.evaluate(expr("r.a not in (1, 9)"), ROW) is True

    def test_in_list_with_null_member_is_unknown_when_absent(self, evaluator):
        assert evaluator.evaluate(expr("r.a in (1, null)"), ROW) is None

    def test_is_null(self, evaluator):
        assert evaluator.evaluate(expr("r.b is null"), ROW) is True
        assert evaluator.evaluate(expr("r.a is not null"), ROW) is True

    def test_scalar_functions(self, evaluator):
        row = Row({"r.s": "Hello"})
        assert evaluator.evaluate(expr("lower(r.s) = 'hello'"), row) is True
        assert evaluator.evaluate(expr("length(r.s) = 5"), row) is True
        assert evaluator.evaluate(expr("coalesce(r.missingish, 'x') = 'x'"), Row({"r.missingish": None})) is True

    def test_unknown_function_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("soundex(r.name) = 'x'"), ROW)

    def test_case_expression(self, evaluator):
        value = evaluator.evaluate(
            Parser(tokenize("select case when r.a = 5 then 'five' else 'other' end from R"))
            .parse_select()
            .select_items[0]
            .expression,
            ROW,
        )
        assert value == "five"


class TestColumnResolution:
    def test_qualified_column_must_exist(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("z.a = 1"), ROW)

    def test_unqualified_resolution(self, evaluator):
        assert evaluator.evaluate(expr("a = 5"), ROW) is True

    def test_ambiguous_unqualified_raises(self, evaluator):
        row = Row({"r.id": 1, "s.id": 2})
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("id = 1"), row)

    def test_subquery_without_runner_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(expr("r.a in (select x from S)"), ROW)

    def test_aggregate_outside_group_context_raises(self, evaluator):
        parser = Parser(tokenize("select count(*) from R"))
        aggregate = parser.parse_select().select_items[0].expression
        with pytest.raises(EvaluationError):
            evaluator.evaluate(aggregate, ROW)
