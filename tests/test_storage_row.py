"""Tests for repro.storage.row."""

import pytest

from repro.storage.row import Row


class TestRowLookup:
    def test_exact_key(self):
        row = Row({"m.title": "Troy"})
        assert row["m.title"] == "Troy"

    def test_case_insensitive_key(self):
        row = Row({"m.Title": "Troy"})
        assert row["M.TITLE"] == "Troy"

    def test_unqualified_suffix_lookup(self):
        row = Row({"m.title": "Troy", "m.year": 2004})
        assert row["title"] == "Troy"

    def test_ambiguous_suffix_returns_none_via_resolve(self):
        row = Row({"m.id": 1, "a.id": 2})
        assert row.resolve_key("id") is None
        assert row.is_ambiguous("id")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Row({"a": 1})["b"]

    def test_get_with_default(self):
        assert Row({"a": 1}).get("missing", 42) == 42

    def test_contains(self):
        row = Row({"m.title": "Troy"})
        assert "title" in row
        assert "year" not in row


class TestRowConstruction:
    def test_merged_right_side_wins(self):
        merged = Row({"a": 1, "b": 2}).merged(Row({"b": 3, "c": 4}))
        assert merged.as_dict() == {"a": 1, "b": 3, "c": 4}

    def test_prefixed(self):
        row = Row({"title": "Troy", "year": 2004}).prefixed("m")
        assert set(row.keys()) == {"m.title", "m.year"}

    def test_prefixed_replaces_existing_prefix(self):
        row = Row({"x.title": "Troy"}).prefixed("m")
        assert set(row.keys()) == {"m.title"}

    def test_project(self):
        row = Row({"m.title": "Troy", "m.year": 2004}).project(["title"])
        assert row.as_dict() == {"title": "Troy"}

    def test_values_tuple(self):
        row = Row({"a": 1, "b": 2})
        assert row.values_tuple(["b", "a"]) == (2, 1)


class TestRowEquality:
    def test_equal_to_dict(self):
        assert Row({"a": 1}) == {"a": 1}

    def test_equal_rows_hash_equal(self):
        assert hash(Row({"a": 1, "b": "x"})) == hash(Row({"b": "x", "a": 1}))

    def test_hash_with_list_values(self):
        assert isinstance(hash(Row({"a": [1, 2]})), int)

    def test_len_and_iter(self):
        row = Row({"a": 1, "b": 2})
        assert len(row) == 2
        assert set(iter(row)) == {"a", "b"}
