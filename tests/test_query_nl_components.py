"""Tests for individual query-translation components and fallbacks."""

import pytest

from repro.content import movie_spec
from repro.datasets import PAPER_QUERIES, movie_database, movie_schema
from repro.query_nl import (
    AnswerExplainer,
    DmlTranslator,
    QueryTranslator,
    procedural_translation,
)
from repro.query_nl.phrases import (
    comparison_phrase,
    ensure_by,
    is_participle_verb,
    verb_past_participle,
    verb_plural,
    verb_without_preposition,
)
from repro.querygraph import build_query_graph
from repro.sql import parse_sql


@pytest.fixture(scope="module")
def schema():
    return movie_schema()


@pytest.fixture(scope="module")
def translator(schema):
    return QueryTranslator(schema, spec=movie_spec(schema))


class TestPhraseHelpers:
    def test_verb_without_preposition(self):
        assert verb_without_preposition("plays in") == "plays"
        assert verb_without_preposition("directed") == "directed"

    def test_verb_plural(self):
        assert verb_plural("plays in") == "play in"
        assert verb_plural("belongs to") == "belong to"
        assert verb_plural("watches") == "watch"

    def test_verb_past_participle(self):
        assert verb_past_participle("plays in") == "played in"
        assert verb_past_participle("directs") == "directed"
        assert verb_past_participle("writes") == "written"

    def test_participle_detection_and_by(self):
        assert is_participle_verb("directed")
        assert is_participle_verb("written by")
        assert not is_participle_verb("plays in")
        assert ensure_by("directed") == "directed by"
        assert ensure_by("directed by") == "directed by"

    def test_comparison_phrase_wordings(self, schema):
        from repro.lexicon import default_lexicon
        from repro.sql import parse_select

        lexicon = default_lexicon(schema)
        condition = parse_select("select * from MOVIES m where m.year >= 2000").where
        phrase = comparison_phrase(schema, lexicon, "MOVIES", condition)
        assert phrase == "whose release year is at least 2000"


class TestProceduralFallback:
    def test_procedural_translation_mentions_every_relation(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q2"])
        from repro.lexicon import default_lexicon

        text = procedural_translation(schema, default_lexicon(schema), graph)
        for word in ("movie", "actor", "director", "genre"):
            assert word in text

    def test_procedural_translation_of_nested_query(self, schema):
        graph = build_query_graph(schema, PAPER_QUERIES["Q6"])
        from repro.lexicon import default_lexicon

        text = procedural_translation(schema, default_lexicon(schema), graph)
        assert "nested query" in text

    def test_translate_procedurally_entry_point(self, translator):
        translation = translator.translate_procedurally(PAPER_QUERIES["Q7"])
        assert "Group the results by" in translation.text
        assert "count(*)" in translation.text

    def test_procedural_is_longer_than_declarative(self, translator):
        declarative = translator.translate(PAPER_QUERIES["Q2"]).text
        procedural = translator.translate_procedurally(PAPER_QUERIES["Q2"]).text
        assert len(procedural) > len(declarative)


class TestOtherSpjQueries:
    def test_constraint_on_center_relation(self, translator):
        text = translator.translate(
            "select m.title from MOVIES m where m.year >= 2000"
        ).text
        assert "release year is at least 2000" in text

    def test_projection_of_non_heading_attribute(self, translator):
        text = translator.translate(
            "select d.blocation from DIRECTOR d, DIRECTED r, MOVIES m"
            " where d.id = r.did and r.mid = m.id and m.title = 'Troy'"
        ).text
        assert "birth location" in text

    def test_path_query_via_director(self, translator):
        text = translator.translate(
            "select m.title from MOVIES m, DIRECTED r, DIRECTOR d"
            " where m.id = r.mid and r.did = d.id and d.name = 'Woody Allen'"
        ).text
        assert text == "Find the titles of movies directed by Woody Allen"

    def test_nested_negation_translation(self, translator):
        text = translator.translate(
            "select m.title from MOVIES m where not exists"
            " (select * from GENRE g where g.mid = m.id and g.genre = 'comedy')"
        ).text
        assert text.startswith("Find movies that have no genre")

    def test_aggregate_sum_projection(self, translator):
        text = translator.translate(
            "select d.name, count(m.id) from DIRECTOR d, DIRECTED r, MOVIES m"
            " where d.id = r.did and r.mid = m.id group by d.name"
        ).text
        assert "number of" in text or "ids" in text


class TestDmlTranslation:
    def test_insert(self, schema):
        text = DmlTranslator(schema).translate(
            parse_sql("insert into MOVIES (id, title, year) values (99, 'New Film', 2008)")
        )
        assert text == "Insert a new movie with id 99, title New Film, and release year 2008."

    def test_multi_row_insert(self, schema):
        text = DmlTranslator(schema).translate(
            parse_sql("insert into ACTOR (id, name) values (50, 'A'), (51, 'B')")
        )
        assert text.count("Insert a new actor") == 2

    def test_update(self, schema):
        text = DmlTranslator(schema).translate(
            parse_sql("update MOVIES set year = 2008 where title = 'Troy'")
        )
        assert "set the release year to 2008" in text
        assert "Troy" in text

    def test_delete(self, schema):
        text = DmlTranslator(schema).translate(
            parse_sql("delete from MOVIES where year < 1980")
        )
        assert text == "Delete the movies whose release year is less than 1980."

    def test_delete_without_where(self, schema):
        text = DmlTranslator(schema).translate(parse_sql("delete from GENRE"))
        assert "every genre" in text

    def test_create_view(self, translator, schema):
        text = translator.translate(
            "create view brad_movies as select m.title from MOVIES m, CAST c, ACTOR a"
            " where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'"
        ).text
        assert text.startswith("Define the view brad_movies as")
        assert "Brad Pitt" in text


class TestAnswerExplainer:
    @pytest.fixture(scope="class")
    def explainer(self):
        return AnswerExplainer(movie_database())

    def test_non_empty_answer_needs_no_explanation(self, explainer):
        explanation = explainer.explain("select title from MOVIES where year = 2005")
        assert explanation.row_count == 1
        assert "no explanation" in explanation.text

    def test_single_responsible_condition(self, explainer):
        explanation = explainer.explain(
            "select m.title from MOVIES m, GENRE g"
            " where m.id = g.mid and g.genre = 'western'"
        )
        assert explanation.row_count == 0
        assert any("western" in c for c in explanation.responsible_conditions)
        assert "responsible" in explanation.text

    def test_pairwise_relaxation(self, explainer):
        explanation = explainer.explain(
            "select m.title from MOVIES m where m.year > 2010 and m.title = 'Sleeper'"
        )
        assert explanation.row_count == 0
        assert "no single condition" in explanation.text or explanation.responsible_conditions

    def test_no_selection_conditions(self, explainer):
        explanation = explainer.explain(
            "select m.title from MOVIES m, GENRE g where m.id = g.mid and g.mid > 9000"
        )
        assert explanation.row_count == 0

    def test_large_answer_explanation(self, explainer):
        explanation = explainer.explain(
            "select m.title, g.genre, a.name from MOVIES m, GENRE g, ACTOR a",
            large_threshold=100,
        )
        assert explanation.row_count >= 100
        assert "cross" in explanation.text or "selective" in explanation.text
