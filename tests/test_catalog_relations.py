"""Tests for attributes, relations and foreign keys."""

import pytest

from repro.catalog.attribute import Attribute
from repro.catalog.foreign_key import ForeignKey
from repro.catalog.relation import Relation
from repro.catalog.types import DataType
from repro.errors import DuplicateAttributeError, UnknownAttributeError


def make_movie_relation() -> Relation:
    return Relation(
        name="MOVIES",
        attributes=[
            Attribute("id", DataType.INTEGER, primary_key=True),
            Attribute("title", DataType.TEXT, heading=True),
            Attribute("year", DataType.INTEGER, caption="release year"),
        ],
        concept="movie",
    )


class TestAttribute:
    def test_qualified_name_requires_relation(self):
        attribute = Attribute("title")
        assert attribute.qualified_name == "title"
        assert attribute.renamed("MOVIES").qualified_name == "MOVIES.title"

    def test_display_caption_defaults_from_name(self):
        assert Attribute("birth_date").display_caption == "birth date"

    def test_display_caption_override(self):
        assert Attribute("bdate", caption="birth date").display_caption == "birth date"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")


class TestRelation:
    def test_attribute_lookup_is_case_insensitive(self):
        relation = make_movie_relation()
        assert relation.attribute("TITLE").name == "title"

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_movie_relation().attribute("missing")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            Relation("R", [Attribute("a"), Attribute("a")])

    def test_primary_key(self):
        relation = make_movie_relation()
        assert relation.primary_key_names == ("id",)

    def test_heading_attribute_flagged(self):
        assert make_movie_relation().heading_attribute.name == "title"

    def test_heading_attribute_heuristic_prefers_text_non_key(self):
        relation = Relation(
            "ACTOR",
            [Attribute("id", DataType.INTEGER, primary_key=True), Attribute("name")],
        )
        assert relation.heading_attribute.name == "name"

    def test_heading_attribute_falls_back_to_first_attribute(self):
        relation = Relation(
            "LINK",
            [
                Attribute("a", DataType.INTEGER, primary_key=True),
                Attribute("b", DataType.INTEGER, primary_key=True),
            ],
        )
        assert relation.heading_attribute.name == "a"

    def test_with_heading_produces_new_relation(self):
        relation = make_movie_relation().with_heading("year")
        assert relation.heading_attribute.name == "year"
        assert make_movie_relation().heading_attribute.name == "title"

    def test_descriptive_attributes_exclude_key_and_heading(self):
        relation = make_movie_relation()
        assert [a.name for a in relation.descriptive_attributes] == ["year"]

    def test_concept_defaults_from_name(self):
        relation = Relation("DIRECTORS", [Attribute("name")])
        assert relation.concept == "director"

    def test_contains_and_len(self):
        relation = make_movie_relation()
        assert "title" in relation
        assert "nope" not in relation
        assert len(relation) == 3

    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            Relation("EMPTY", [])


class TestForeignKey:
    def test_mismatched_arity_rejected(self):
        with pytest.raises(ValueError):
            ForeignKey("A", ("x", "y"), "B", ("z",))

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ForeignKey("A", (), "B", ())

    def test_display_name_generated(self):
        fk = ForeignKey("CAST", ("mid",), "MOVIES", ("id",))
        assert fk.display_name == "fk_cast_mid_movies"

    def test_column_pairs(self):
        fk = ForeignKey("CAST", ("mid", "aid"), "X", ("a", "b"))
        assert list(fk.column_pairs()) == [("mid", "a"), ("aid", "b")]

    def test_reversed_swaps_endpoints(self):
        fk = ForeignKey("CAST", ("mid",), "MOVIES", ("id",), verb_phrase="features")
        reverse = fk.reversed()
        assert reverse.source_relation == "MOVIES"
        assert reverse.target_relation == "CAST"
        assert reverse.verb_phrase == "features"
