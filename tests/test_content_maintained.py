"""Differential suite for the maintained content-side structures.

* the :class:`repro.content.ranking.ConnectivityTracker` (top-k ranking
  maintained on DML, like the hash indexes) must order and score tuples
  exactly like the score-every-row oracle, across schemas and through
  arbitrary insert/update/delete sequences;
* the per-relation clause-weight histograms must keep streaming narration
  byte-identical to the eager pipeline while letting the early-exit
  certificate fire on varied-weight schemas (the shipped movie spec).
"""

import random

import pytest

import repro.content.narrator as narrator_module
from repro.content.narrator import ContentNarrator
from repro.content.patterns import SynthesisMode
from repro.content.personalization import UserProfile
from repro.content.presets import default_spec, movie_spec
from repro.content.ranking import ConnectivityTracker, rank_tuples, tracker_for
from repro.datasets import (
    GeneratorConfig,
    employee_database,
    generate_movie_database,
    library_database,
    movie_database,
)
from repro.errors import ForeignKeyViolationError, PrimaryKeyViolationError
from repro.nlg.document import LengthBudget


def assert_ranking_matches_oracle(database, label=""):
    for relation in database.schema.relations:
        maintained = rank_tuples(database, relation.name)
        oracle = rank_tuples(database, relation.name, maintained=False)
        assert [(r.row.as_dict(), r.score) for r in maintained] == [
            (r.row.as_dict(), r.score) for r in oracle
        ], (label, relation.name)


class TestMaintainedRanking:
    def test_matches_oracle_on_shipped_datasets(self):
        for database in (movie_database(), employee_database(), library_database()):
            assert_ranking_matches_oracle(database, database.schema.name)

    def test_matches_oracle_on_generated_database(self):
        database = generate_movie_database(
            GeneratorConfig(movies=80, directors=8, actors=20)
        )
        assert_ranking_matches_oracle(database, "generated")

    def test_limit_is_a_prefix_of_the_full_order(self):
        database = movie_database()
        full = rank_tuples(database, "MOVIES")
        top = rank_tuples(database, "MOVIES", limit=3)
        assert [r.row.as_dict() for r in top] == [r.row.as_dict() for r in full[:3]]

    def test_maintained_through_random_dml(self):
        database = movie_database()
        tracker_for(database)  # build before mutating, so updates are incremental
        rng = random.Random(7)
        next_id = 1000
        for step in range(80):
            action = rng.random()
            try:
                if action < 0.4:
                    database.insert(
                        "MOVIES",
                        {"id": next_id, "title": f"M{next_id}", "year": 1980 + next_id % 40},
                    )
                    database.insert("GENRE", {"mid": next_id, "genre": "drama"})
                    database.insert(
                        "CAST", {"mid": next_id, "aid": 1 + next_id % 8, "role": "R"}
                    )
                    next_id += 1
                elif action < 0.6:
                    table = database.table("CAST")
                    rowids = [rowid for rowid, _row in table.rows_with_ids()]
                    if rowids:
                        table.delete_rows([rng.choice(rowids)])
                elif action < 0.8:
                    table = database.table("MOVIES")
                    rowids = [rowid for rowid, _row in table.rows_with_ids()]
                    if rowids:
                        table.update_rows([rng.choice(rowids)], {"year": 1950 + step})
                else:
                    table = database.table("CAST")
                    rowids = [rowid for rowid, _row in table.rows_with_ids()]
                    if rowids:
                        table.update_rows([rng.choice(rowids)], {"aid": 1 + step % 8})
            except (PrimaryKeyViolationError, ForeignKeyViolationError):
                pass
            if step % 16 == 0:
                assert_ranking_matches_oracle(database, f"step {step}")
        assert_ranking_matches_oracle(database, "final")

    def test_truncate_rebuilds(self):
        database = movie_database()
        tracker = tracker_for(database)
        database.table("CAST").truncate()
        assert_ranking_matches_oracle(database, "after truncate")
        assert tracker.ranked_rowids("CAST") == []

    def test_fk_update_moves_connectivity(self):
        database = movie_database()
        tracker = tracker_for(database)
        cast = database.table("CAST")
        movies = database.table("MOVIES")
        rowid, row = next(cast.rows_with_ids())
        old_mid = row.get("mid")
        old_parent_rowid = next(
            rid for rid, r in movies.rows_with_ids() if r.get("id") == old_mid
        )
        target_mid = next(
            r.get("id") for r in movies.rows() if r.get("id") != old_mid
        )
        target_rowid = next(
            rid for rid, r in movies.rows_with_ids() if r.get("id") == target_mid
        )
        before_old = tracker.connectivity("MOVIES", old_parent_rowid)
        before_new = tracker.connectivity("MOVIES", target_rowid)
        cast.update_rows([rowid], {"mid": target_mid})
        assert tracker.connectivity("MOVIES", old_parent_rowid) == before_old - 1
        assert tracker.connectivity("MOVIES", target_rowid) == before_new + 1
        assert_ranking_matches_oracle(database, "after fk move")

    def test_tracker_is_shared_per_database(self):
        database = movie_database()
        assert tracker_for(database) is tracker_for(database)

    def test_rank_tuples_is_order_only_dependent_on_connectivity(self):
        database = movie_database()
        heavy = UserProfile(name="heavy", relation_weights={"MOVIES": 99.0})
        default_order = [r.row.as_dict() for r in rank_tuples(database, "MOVIES")]
        heavy_order = [
            r.row.as_dict() for r in rank_tuples(database, "MOVIES", profile=heavy)
        ]
        assert default_order == heavy_order


# ---------------------------------------------------------------------------
# Weight-histogram streaming certificates
# ---------------------------------------------------------------------------

BUDGETS = [
    LengthBudget(max_sentences=2),
    LengthBudget(max_sentences=4),
    LengthBudget(max_sentences=12),
    LengthBudget(max_words=60),
    LengthBudget(max_sentences=3, max_words=25),
    None,
]


class TestHistogramStreaming:
    def test_streaming_byte_identical_across_specs_and_modes(self):
        databases = [
            (movie_database(), movie_spec),
            (employee_database(), default_spec),
            (library_database(), default_spec),
            (
                generate_movie_database(GeneratorConfig(movies=60, directors=6, actors=15)),
                movie_spec,
            ),
        ]
        for database, spec_factory in databases:
            narrator = ContentNarrator(database, spec=spec_factory(database.schema))
            for mode in (SynthesisMode.COMPACT, SynthesisMode.PROCEDURAL):
                for budget in BUDGETS:
                    assert narrator.narrate_database(
                        budget=budget, mode=mode
                    ) == narrator.narrate_database(budget=budget, mode=mode, streaming=False)

    def test_streaming_byte_identical_with_varied_weight_profile(self):
        database = generate_movie_database(
            GeneratorConfig(movies=60, directors=6, actors=15)
        )
        profile = UserProfile(
            name="varied",
            relation_weights={"MOVIES": 5.0, "GENRE": 0.5},
            attribute_weights={("MOVIES", "year"): 4.0},
        )
        narrator = ContentNarrator(database, spec=movie_spec(database.schema), profile=profile)
        for budget in BUDGETS:
            assert narrator.narrate_database(budget=budget) == narrator.narrate_database(
                budget=budget, streaming=False
            )

    def test_certificate_fires_on_varied_weight_movie_spec(self, monkeypatch):
        """Under a tight budget the stream must stop before ranking every relation."""
        database = generate_movie_database(
            GeneratorConfig(movies=100, directors=10, actors=25)
        )
        ranked = []
        original = narrator_module.rank_tuples

        def spy(db, relation_name, limit=None, profile=None, maintained=True):
            ranked.append(relation_name)
            return original(db, relation_name, limit, profile, maintained)

        monkeypatch.setattr(narrator_module, "rank_tuples", spy)
        narrator = ContentNarrator(database, spec=movie_spec(database.schema))
        streamed = narrator.narrate_database(budget=LengthBudget(max_sentences=4))
        assert ranked == ["MOVIES"], ranked  # later relations never tuple-ranked
        monkeypatch.setattr(narrator_module, "rank_tuples", original)
        assert streamed == narrator.narrate_database(
            budget=LengthBudget(max_sentences=4), streaming=False
        )

    def test_certificate_fires_mid_relation_with_heavy_attribute(self, monkeypatch):
        """A unique-heavy attribute exhausts its histogram bucket and exits."""
        database = generate_movie_database(
            GeneratorConfig(movies=100, directors=10, actors=25)
        )
        profile = UserProfile(
            name="year-heavy",
            relation_weights={name: 1.0 for name in database.schema.relation_names},
            attribute_weights={
                ("MOVIES", "year"): 4.0,
                ("DIRECTOR", "bdate"): 1.0,
                ("DIRECTOR", "blocation"): 1.0,
                ("CAST", "role"): 1.0,
            },
        )
        ranked = []
        original = narrator_module.rank_tuples

        def spy(db, relation_name, limit=None, profile=None, maintained=True):
            ranked.append(relation_name)
            return original(db, relation_name, limit, profile, maintained)

        monkeypatch.setattr(narrator_module, "rank_tuples", spy)
        narrator = ContentNarrator(
            database, spec=movie_spec(database.schema), profile=profile
        )
        streamed = narrator.narrate_database(budget=LengthBudget(max_sentences=5))
        assert ranked == ["MOVIES"], ranked
        monkeypatch.setattr(narrator_module, "rank_tuples", original)
        assert streamed == narrator.narrate_database(
            budget=LengthBudget(max_sentences=5), streaming=False
        )

    def test_histogram_excludes_all_null_attributes(self):
        database = movie_database(seed_data=False)
        database.insert("DIRECTOR", {"id": 1, "name": "A. Director"})
        database.insert("DIRECTOR", {"id": 2, "name": "B. Director"})
        narrator = ContentNarrator(database, spec=movie_spec(database.schema))
        histogram = narrator._clause_weight_histogram(
            "DIRECTOR", None, SynthesisMode.COMPACT, 3
        )
        weights = [weight for weight, _count in histogram]
        # bdate/blocation are entirely NULL: only the heading fallback remains.
        assert weights == [narrator.profile.relation_weight(
            database.schema.relation("DIRECTOR")
        )]
        assert narrator.narrate_relation(
            "DIRECTOR", budget=LengthBudget(max_sentences=2)
        ) == narrator.narrate_relation(
            "DIRECTOR", budget=LengthBudget(max_sentences=2), streaming=False
        )

    def test_empty_partner_path_drops_relationship_weights(self):
        database = movie_database(seed_data=False)
        database.insert("MOVIES", {"id": 1, "title": "Solo", "year": 2000})
        narrator = ContentNarrator(database, spec=movie_spec(database.schema))
        histogram = narrator._clause_weight_histogram(
            "MOVIES", "DIRECTOR", SynthesisMode.COMPACT, 3
        )
        partner_weight = narrator.profile.relation_weight(
            database.schema.relation("DIRECTOR")
        )
        # DIRECTED is empty, so no relationship sentence can ever be produced.
        assert all(weight != partner_weight for weight, _count in histogram)

    def test_histogram_invalidated_by_dml(self):
        database = movie_database()
        narrator = ContentNarrator(database, spec=movie_spec(database.schema))
        first = narrator._clause_weight_histogram(
            "MOVIES", "DIRECTOR", SynthesisMode.COMPACT, 3
        )
        database.insert("MOVIES", {"id": 900, "title": "New", "year": 2020})
        second = narrator._clause_weight_histogram(
            "MOVIES", "DIRECTOR", SynthesisMode.COMPACT, 3
        )
        assert first is not second
        assert narrator.narrate_database(
            budget=LengthBudget(max_sentences=12)
        ) == narrator.narrate_database(
            budget=LengthBudget(max_sentences=12), streaming=False
        )
