"""The multi-domain registry: schemas, generators, lexicons, corpora."""

import pytest

from repro.datasets.domains import (
    DOMAIN_NAMES,
    TAXONOMY,
    CorpusQuery,
    Domain,
    all_domains,
    get_domain,
    register_domain,
)
from repro.engine.executor import Executor
from repro.engine.result import QueryResult
from repro.query_nl.translator import QueryTranslator
from repro.querygraph.classify import classify_query
from repro.storage.loader import dump_records

NEW_DOMAINS = ("twitter", "twitch", "companies", "gameofthrones")


class TestRegistry:
    def test_catalogue(self):
        assert DOMAIN_NAMES == ("movies", "twitter", "twitch", "companies", "gameofthrones")
        assert [d.name for d in all_domains()] == list(DOMAIN_NAMES)

    def test_get_domain_unknown_lists_catalogue(self):
        with pytest.raises(KeyError, match="movies"):
            get_domain("nope")

    def test_register_rejects_duplicates(self):
        existing = get_domain("movies")
        with pytest.raises(ValueError, match="already registered"):
            register_domain(existing)

    def test_corpus_query_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="category"):
            CorpusQuery(name="x", sql="select 1", category="trivial")

    def test_duplicate_corpus_names_rejected(self):
        domain = Domain(
            name="dupes",
            description="",
            schema_factory=get_domain("twitter").schema_factory,
            database_factory=get_domain("twitter").database_factory,
            corpus_factory=lambda: [
                CorpusQuery("a", "select 1", "path"),
                CorpusQuery("a", "select 2", "path"),
            ],
        )
        with pytest.raises(ValueError, match="duplicate"):
            domain.corpus()


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("name", NEW_DOMAINS)
    def test_same_seed_same_database(self, name):
        domain = get_domain(name)
        assert dump_records(domain.database(seed=3)) == dump_records(domain.database(seed=3))

    @pytest.mark.parametrize("name", NEW_DOMAINS)
    def test_different_seed_different_database(self, name):
        domain = get_domain(name)
        assert dump_records(domain.database(seed=0)) != dump_records(domain.database(seed=1))

    @pytest.mark.parametrize("name", NEW_DOMAINS)
    def test_scale_grows_the_database(self, name):
        domain = get_domain(name)
        small = sum(len(rows) for rows in dump_records(domain.database(scale=1)).values())
        large = sum(len(rows) for rows in dump_records(domain.database(scale=2)).values())
        assert large > small

    @pytest.mark.parametrize("name", NEW_DOMAINS)
    def test_referential_integrity(self, name):
        domain = get_domain(name)
        schema = domain.schema()
        records = dump_records(domain.database())
        for fk in schema.foreign_keys:
            targets = {
                tuple(row[col] for col in fk.target_attributes)
                for row in records[schema.relation(fk.target_relation).name]
            }
            for row in records[schema.relation(fk.source_relation).name]:
                key = tuple(row[col] for col in fk.source_attributes)
                assert key in targets, (fk, row)


class TestCorpora:
    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_corpus_floor_and_taxonomy_coverage(self, name):
        corpus = get_domain(name).corpus()
        assert len(corpus) >= 40
        covered = {query.category for query in corpus}
        assert covered == set(TAXONOMY)

    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_every_query_classifies_as_labelled(self, name):
        domain = get_domain(name)
        schema = domain.schema()
        for query in domain.corpus():
            classification = classify_query(schema, query.sql)
            assert classification.category.value == query.category, query.name

    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_every_query_translates_and_executes(self, name):
        domain = get_domain(name)
        lexicon = domain.lexicon()
        translator = QueryTranslator(domain.schema(), lexicon=lexicon, cache_size=None)
        executor = Executor(domain.database())
        for query in domain.corpus():
            translation = translator.translate(query.sql)
            assert translation.text.strip(), query.name
            result = executor.execute_sql(query.sql)
            assert isinstance(result, QueryResult), query.name


class TestDomainVocabulary:
    def test_companies_morphology_in_translations(self):
        domain = get_domain("companies")
        translator = QueryTranslator(domain.schema(), lexicon=domain.lexicon())
        chairmen = translator.translate(
            "select b.name from BOARD b, COMPANY c "
            "where b.cid = c.id and c.sector = 'finance'"
        ).text
        assert "chairmen" in chairmen
        assert "chairmans" not in chairmen
        chiefs = translator.translate(
            "select x.name from EXECUTIVE x, COMPANY c "
            "where x.cid = c.id and c.hq = 'Osaka'"
        ).text
        assert "chiefs" in chiefs
        assert "chieves" not in chiefs

    def test_twitch_morphology_in_translations(self):
        domain = get_domain("twitch")
        translator = QueryTranslator(domain.schema(), lexicon=domain.lexicon())
        heroes = translator.translate(
            "select h.name from HERO h where h.role = 'tank'"
        ).text
        assert "heroes" in heroes
        videos = translator.translate(
            "select v.title from VIDEO v where v.views > 100"
        ).text
        assert "videos" in videos

    def test_gameofthrones_direwolves(self):
        domain = get_domain("gameofthrones")
        translator = QueryTranslator(domain.schema(), lexicon=domain.lexicon())
        text = translator.translate(
            "select w.name from DIREWOLF w, CHARACTER c where w.owner = c.id"
        ).text
        assert "direwolves" in text
