"""Tests for template specs: instantiation, slots, list templates."""

import datetime

import pytest

from repro.errors import TemplateInstantiationError
from repro.templates.spec import ListTemplate, SlotPart, Template, slot, template, text


class TestTemplateInstantiation:
    def test_simple_concatenation(self):
        label = template(slot("DNAME"), " was born in ", slot("BLOCATION"))
        rendered = label.instantiate({"DNAME": "Woody Allen", "BLOCATION": "Brooklyn"})
        assert rendered == "Woody Allen was born in Brooklyn"

    def test_case_insensitive_values(self):
        label = template(slot("TITLE"))
        assert label.instantiate({"title": "Troy"}) == "Troy"

    def test_qualified_slot_matches_qualified_value(self):
        label = template(slot("MOVIES.title"))
        assert label.instantiate({"MOVIES.title": "Troy"}) == "Troy"

    def test_qualified_value_matched_by_suffix(self):
        label = template(slot("title"))
        assert label.instantiate({"MOVIES.title": "Troy"}) == "Troy"

    def test_date_rendering_matches_paper(self):
        label = template(slot("BDATE"))
        assert label.instantiate({"BDATE": datetime.date(1935, 12, 1)}) == "December 1, 1935"

    def test_missing_value_strict_raises(self):
        label = template(slot("MISSING"))
        with pytest.raises(TemplateInstantiationError):
            label.instantiate({})

    def test_missing_value_lenient_renders_empty(self):
        label = template("x", slot("MISSING"), "y")
        assert label.instantiate({}, strict=False) == "xy"

    def test_none_value_renders_unknown(self):
        label = template(slot("YEAR"))
        assert label.instantiate({"YEAR": None}) == "unknown"

    def test_slot_names(self):
        label = template(slot("A"), text("-"), slot("R.B"))
        assert label.slot_names == ("A", "B")

    def test_subject_and_verb_metadata(self):
        label = template(slot("A"), " was born", subject="A", verb="was born")
        assert label.subject == "A"
        assert label.predicate_verb == "was born"


class TestListTemplate:
    @pytest.fixture
    def movie_list(self) -> ListTemplate:
        item = template(slot("title"), " (", slot("year"), ")")
        return ListTemplate(
            name="MOVIE_LIST",
            item=item,
            last_item=item,
            separator=", ",
            last_separator=", and ",
            pair_separator=" and ",
        )

    def test_empty_list(self, movie_list):
        assert movie_list.instantiate([]) == ""

    def test_single_item(self, movie_list):
        assert movie_list.instantiate([{"title": "Troy", "year": 2004}]) == "Troy (2004)"

    def test_two_items_use_pair_separator(self, movie_list):
        rendered = movie_list.instantiate(
            [{"title": "A", "year": 2000}, {"title": "B", "year": 2001}]
        )
        assert rendered == "A (2000) and B (2001)"

    def test_three_items_match_paper_punctuation(self, movie_list):
        rendered = movie_list.instantiate(
            [
                {"title": "Match Point", "year": 2005},
                {"title": "Melinda and Melinda", "year": 2004},
                {"title": "Anything Else", "year": 2003},
            ]
        )
        assert rendered == (
            "Match Point (2005), Melinda and Melinda (2004), and Anything Else (2003)"
        )

    def test_slot_names_include_last_item(self):
        lt = ListTemplate(
            name="L",
            item=template(slot("a")),
            last_item=template(slot("a"), slot("b")),
        )
        assert lt.slot_names == ("a", "b")

    def test_custom_last_item_without_pair_separator(self):
        lt = ListTemplate(
            name="L",
            item=template(slot("a"), ", "),
            last_item=template("and ", slot("a"), "."),
            separator="",
            last_separator="",
        )
        rendered = lt.instantiate([{"a": "x"}, {"a": "y"}, {"a": "z"}])
        assert rendered == "x, y, and z."
