"""Tests for the content narrator, including the paper's exact narratives."""

import pytest

from repro.content import ContentNarrator, SynthesisMode, UserProfile, movie_spec
from repro.datasets import library_database, movie_database
from repro.content.presets import library_spec
from repro.errors import TranslationError
from repro.nlg import LengthBudget

PAPER_COMPACT = (
    "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
    " As a director, Woody Allen's work includes Match Point (2005),"
    " Melinda and Melinda (2004), and Anything Else (2003)."
)

PAPER_PROCEDURAL = (
    "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
    " As a director, Woody Allen's work includes Match Point, Melinda and"
    " Melinda, Anything Else. Match Point was released in 2005. Melinda and"
    " Melinda was released in 2004. Anything Else was released in 2003."
)


@pytest.fixture(scope="module")
def narrator() -> ContentNarrator:
    database = movie_database()
    return ContentNarrator(database, spec=movie_spec(database.schema))


class TestPaperNarratives:
    def test_compact_woody_allen_matches_paper(self, narrator):
        text = narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.COMPACT
        )
        assert text == PAPER_COMPACT

    def test_procedural_woody_allen_matches_paper(self, narrator):
        text = narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.PROCEDURAL
        )
        assert text == PAPER_PROCEDURAL

    def test_compact_is_shorter_than_procedural(self, narrator):
        compact = narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES")
        procedural = narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.PROCEDURAL
        )
        assert len(compact) < len(procedural)

    def test_merged_tuple_narrative(self, narrator):
        row = narrator.database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))[0]
        assert narrator.narrate_tuple("DIRECTOR", row) == (
            "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
        )

    def test_split_pattern_single_sentence_with_conjunction(self, narrator):
        text = narrator.narrate_split("MOVIES", "Troy", ["DIRECTOR", "ACTOR"])
        assert text.count(".") == 1
        assert " and " in text
        assert "director" in text and "actor" in text
        assert "who " in text


class TestEntityNarration:
    def test_default_partner_selected_automatically(self, narrator):
        text = narrator.narrate_entity("DIRECTOR", "Woody Allen")
        assert "Match Point" in text

    def test_unknown_entity_raises(self, narrator):
        with pytest.raises(TranslationError):
            narrator.narrate_entity("DIRECTOR", "Nobody")

    def test_entity_with_row_argument(self, narrator):
        row = narrator.database.table("ACTOR").lookup(("name",), ("Brad Pitt",))[0]
        text = narrator.narrate_entity("ACTOR", row, "MOVIES")
        assert "Brad Pitt" in text and "Troy" in text

    def test_budget_limits_sentences(self, narrator):
        text = narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES",
            mode=SynthesisMode.PROCEDURAL,
            budget=LengthBudget(max_sentences=2),
        )
        assert text.count(".") <= 3  # periods inside dates still count


class TestRelationAndDatabaseNarration:
    def test_narrate_relation_limit(self, narrator):
        text = narrator.narrate_relation("DIRECTOR", limit=1)
        assert "Woody Allen" in text or "G. Loucas" in text

    def test_narrate_database_contains_overview(self, narrator):
        text = narrator.narrate_database(max_tuples_per_relation=1)
        assert text.startswith("The movies database describes")

    def test_narrate_database_respects_relation_filter(self, narrator):
        text = narrator.narrate_database(
            relations=["DIRECTOR"], max_tuples_per_relation=1, include_overview=False
        )
        assert "genre" not in text.lower()

    def test_narrate_database_budget(self, narrator):
        bounded = narrator.narrate_database(budget=LengthBudget(max_sentences=3))
        unbounded = narrator.narrate_database()
        assert len(bounded) < len(unbounded)

    def test_narrate_schema(self, narrator):
        text = narrator.narrate_schema()
        assert "movies" in text and "directors" in text

    def test_profile_excludes_relations(self):
        database = movie_database()
        profile = UserProfile(excluded_relations={"GENRE"})
        narrator = ContentNarrator(database, spec=movie_spec(database.schema), profile=profile)
        text = narrator.narrate_database(max_tuples_per_relation=1, include_overview=False)
        assert "genre" not in text.lower()

    def test_profile_budget_applies_by_default(self):
        database = movie_database()
        profile = UserProfile(budget=LengthBudget(max_sentences=2))
        narrator = ContentNarrator(database, spec=movie_spec(database.schema), profile=profile)
        bounded = narrator.narrate_database()
        assert bounded.count(".") <= 4


class TestQueryAnswerNarration:
    def test_single_column_answer(self, narrator):
        from repro.engine import Executor

        result = Executor(narrator.database).execute_sql(
            "select m.title from MOVIES m where m.year = 2004 order by m.title"
        )
        text = narrator.narrate_query_answer(result)
        assert "2" in text and "Melinda and Melinda" in text and "Troy" in text

    def test_empty_answer(self, narrator):
        from repro.engine import Executor

        result = Executor(narrator.database).execute_sql(
            "select m.title from MOVIES m where m.year = 1900"
        )
        assert "no results" in narrator.narrate_query_answer(result)

    def test_multi_column_answer(self, narrator):
        from repro.engine import Executor

        result = Executor(narrator.database).execute_sql(
            "select m.title, m.year from MOVIES m where m.id = 1"
        )
        text = narrator.narrate_query_answer(result)
        assert "Match Point" in text and "2005" in text

    def test_truncation_notice(self, narrator):
        from repro.engine import Executor

        result = Executor(narrator.database).execute_sql("select g.genre from GENRE g")
        text = narrator.narrate_query_answer(result, max_rows=3)
        assert "more rows" in text


class TestLibraryScenario:
    def test_author_narrative(self):
        database = library_database()
        narrator = ContentNarrator(database, spec=library_spec(database.schema))
        text = narrator.narrate_entity("AUTHOR", "Grace Murray", "ITEM")
        assert "Grace Murray" in text
        assert "Talking Databases" in text
