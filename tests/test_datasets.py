"""Tests for the shipped datasets and generators."""

import pytest

from repro.datasets import (
    ALL_GENRES,
    GeneratorConfig,
    PAPER_NARRATIVES,
    PAPER_QUERIES,
    employee_database,
    generate_movie_database,
    generate_movie_records,
    generate_workload,
    library_database,
    movie_database,
    paper_workload,
    seed_rows,
    workload_by_category,
)
from repro.engine import Executor


class TestMovieSeed:
    def test_paper_tuples_present(self):
        database = movie_database()
        assert database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))
        assert database.table("ACTOR").lookup(("name",), ("Brad Pitt",))
        assert database.table("MOVIES").lookup(("title",), ("Match Point",))

    def test_woody_allen_has_exactly_the_three_paper_movies(self):
        database = movie_database()
        executor = Executor(database)
        result = executor.execute_sql(
            "select m.title from MOVIES m, DIRECTED r, DIRECTOR d"
            " where m.id = r.mid and r.did = d.id and d.name = 'Woody Allen'"
        )
        assert sorted(result.column("m.title")) == [
            "Anything Else", "Match Point", "Melinda and Melinda",
        ]

    def test_all_genres_constant_matches_data(self):
        database = movie_database()
        executor = Executor(database)
        genres = executor.execute_sql("select distinct g.genre from GENRE g")
        assert sorted(genres.column("g.genre")) == ALL_GENRES

    def test_empty_database_option(self):
        assert movie_database(seed_data=False).total_rows == 0

    def test_seed_rows_returns_copies(self):
        rows = seed_rows("MOVIES")
        rows["MOVIES"][0]["title"] = "Mutated"
        assert movie_database().table("MOVIES").lookup(("id",), (1,))[0]["title"] == "Match Point"

    def test_narratives_defined_for_every_query(self):
        for name in PAPER_QUERIES:
            assert name in PAPER_NARRATIVES


class TestOtherDatasets:
    def test_employee_database_referential_cycle_loaded(self):
        database = employee_database()
        assert len(database.table("EMP")) == 6
        assert len(database.table("DEPT")) == 3
        carol = database.table("EMP").lookup(("name",), ("Carol Chen",))[0]
        assert carol["did"] == 10

    def test_library_database(self):
        database = library_database()
        assert len(database.table("ITEM")) == 6
        assert database.table("AUTHOR").lookup(("name",), ("Grace Murray",))


class TestGenerator:
    def test_generated_records_sizes(self):
        config = GeneratorConfig(movies=20, directors=5, actors=10)
        records = generate_movie_records(config)
        assert len(records["MOVIES"]) == 20
        assert len(records["DIRECTED"]) == 20
        assert len(records["CAST"]) == 20 * config.cast_per_movie
        assert len(records["GENRE"]) == 20 * config.genres_per_movie

    def test_generation_is_deterministic(self):
        config = GeneratorConfig(movies=15, seed=123)
        assert generate_movie_records(config) == generate_movie_records(config)

    def test_different_seeds_differ(self):
        first = generate_movie_records(GeneratorConfig(movies=15, seed=1))
        second = generate_movie_records(GeneratorConfig(movies=15, seed=2))
        assert first != second

    def test_generated_database_satisfies_foreign_keys(self):
        database = generate_movie_database(GeneratorConfig(movies=30, directors=5, actors=12))
        # FK enforcement is on, so loading already proves consistency; check counts.
        assert len(database.table("MOVIES")) == 30 + 9  # synthetic + paper seed
        assert len(database.table("DIRECTED")) == 30 + 9

    def test_generated_database_without_paper_seed(self):
        database = generate_movie_database(
            GeneratorConfig(movies=5, directors=2, actors=4), include_paper_seed=False
        )
        assert len(database.table("MOVIES")) == 5

    def test_scaled_config(self):
        config = GeneratorConfig(movies=10, directors=2, actors=4).scaled(3)
        assert config.movies == 30 and config.directors == 6


class TestWorkload:
    def test_paper_workload_has_nine_queries(self):
        assert len(paper_workload()) == 9

    def test_generated_workload_size_and_grouping(self):
        workload = generate_workload(queries_per_category=5, seed=3)
        assert len(workload) == 25
        grouped = workload_by_category(workload)
        assert set(grouped) == {"path", "subgraph", "graph", "nested", "aggregate"}
        assert all(len(queries) == 5 for queries in grouped.values())

    def test_workload_queries_execute(self):
        database = movie_database()
        executor = Executor(database)
        for query in generate_workload(queries_per_category=2, seed=5):
            result = executor.execute_sql(query.sql)
            assert result.row_count >= 0
