"""Tests for the SQL printer (round-trips) and the semantic validator."""

import pytest

from repro.datasets import PAPER_QUERIES, movie_schema
from repro.errors import SqlValidationError
from repro.sql import ast
from repro.sql.parser import parse_select, parse_sql
from repro.sql.printer import expression_to_sql, to_sql
from repro.sql.validator import Validator, validate


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_round_trip(self, name):
        first = parse_select(PAPER_QUERIES[name])
        printed = to_sql(first)
        second = parse_select(printed)
        assert first == second

    @pytest.mark.parametrize(
        "sql",
        [
            "select distinct m.title from MOVIES m where m.year between 2000 and 2005",
            "select title from MOVIES where title like 'S%' order by year desc limit 3",
            "select count(distinct year) from MOVIES group by title having count(*) > 1",
            "select a.name from ACTOR a where a.id in (1, 2, 3)",
            "select title from MOVIES where year is not null",
            "select case when year > 2000 then 'new' else 'old' end as era from MOVIES",
        ],
    )
    def test_misc_round_trips(self, sql):
        first = parse_select(sql)
        assert parse_select(to_sql(first)) == first

    def test_dml_round_trips(self):
        for sql in (
            "insert into MOVIES (id, title, year) values (1, 'A', 2000)",
            "update MOVIES set year = 2001 where id = 1",
            "delete from MOVIES where year < 1980",
            "create view recent as select title from MOVIES where year > 2000",
        ):
            statement = parse_sql(sql)
            assert parse_sql(to_sql(statement)) == statement

    def test_top_level_parentheses_are_dropped(self):
        query = parse_select("select * from R where (a = 1 and b = 2)")
        assert to_sql(query).count("WHERE (a = 1) AND (b = 2)") == 1

    def test_expression_to_sql_literal_escaping(self):
        assert expression_to_sql(ast.Literal("O'Hara")) == "'O''Hara'"

    def test_null_and_booleans(self):
        assert expression_to_sql(ast.Literal(None)) == "NULL"
        assert expression_to_sql(ast.Literal(True)) == "TRUE"


class TestValidator:
    @pytest.fixture
    def schema(self):
        return movie_schema()

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_validate(self, schema, name):
        result = validate(schema, parse_select(PAPER_QUERIES[name]))
        assert result.bindings

    def test_unknown_relation(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_select("select * from NOSUCH"))

    def test_unknown_column(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_select("select m.rating from MOVIES m"))

    def test_unknown_alias(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_select("select x.title from MOVIES m"))

    def test_ambiguous_unqualified_column(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_select("select id from MOVIES m, ACTOR a"))

    def test_unambiguous_unqualified_column(self, schema):
        result = validate(schema, parse_select("select title from MOVIES m, ACTOR a"))
        assert result.resolved_columns[0].relation.name == "MOVIES"

    def test_duplicate_alias_rejected(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_select("select * from MOVIES m, CAST m"))

    def test_correlated_subquery_sees_outer_bindings(self, schema):
        sql = (
            "select m.title from MOVIES m where exists"
            " (select * from GENRE g where g.mid = m.id)"
        )
        result = Validator(schema).validate_select(parse_select(sql))
        assert result.subquery_results

    def test_insert_column_mismatch(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_sql("insert into MOVIES (id, title) values (1)"))

    def test_insert_unknown_column(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_sql("insert into MOVIES (rating) values (5)"))

    def test_update_unknown_column(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_sql("update MOVIES set rating = 5"))

    def test_delete_validates_where(self, schema):
        with pytest.raises(SqlValidationError):
            validate(schema, parse_sql("delete from MOVIES where rating = 5"))

    def test_valid_dml_passes(self, schema):
        validate(schema, parse_sql("update MOVIES set year = 2001 where id = 1"))
        validate(schema, parse_sql("delete from MOVIES where year < 1980"))
        validate(schema, parse_sql("insert into MOVIES (id, title, year) values (99, 'X', 2000)"))
