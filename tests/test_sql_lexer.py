"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        assert values("MOVIES m")[0] == "MOVIES"

    def test_numbers_int_and_float(self):
        assert values("42 2.5") == [42, 2.5]

    def test_string_literal(self):
        assert values("'Brad Pitt'") == ["Brad Pitt"]

    def test_string_literal_with_escaped_quote(self):
        assert values("'O''Hara'") == ["O'Hara"]

    def test_quoted_identifier(self):
        tokens = tokenize('"Select"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "Select"

    def test_operators(self):
        assert values("a <= b <> c != d") == ["a", "<=", "b", "<>", "c", "!=", "d"]

    def test_punctuation(self):
        assert values("(a, b)") == ["(", "a", ",", "b", ")"]

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert values("select -- comment here\n 1") == ["SELECT", 1]

    def test_block_comment(self):
        assert values("select /* skip\nme */ 1") == ["SELECT", 1]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("select /* never ends")

    def test_positions_track_lines(self):
        tokens = tokenize("select\n  title")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlLexError):
            tokenize("select @")

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("select 'open")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("select", "update")
        assert not token.is_keyword("FROM")

    def test_paper_query_q1_tokenises(self):
        from repro.datasets import PAPER_QUERIES

        tokens = tokenize(PAPER_QUERIES["Q1"])
        assert tokens[-1].type is TokenType.EOF
        assert "Brad Pitt" in [t.value for t in tokens]
