"""Concurrency equivalence suite for the asyncio narration service.

The contract under test: any interleaving of concurrent requests through
one :class:`~repro.service.NarrationService` session produces results
byte-identical to sequential synchronous calls against the underlying
pipeline — and the shared cache/plan statistics stay consistent while
worker threads and the event loop interleave.
"""

import asyncio

import pytest

from repro.content.narrator import ContentNarrator
from repro.content.presets import movie_spec
from repro.datasets import (
    PAPER_QUERIES,
    generate_workload,
    movie_database,
    movie_schema,
)
from repro.engine import Executor
from repro.errors import SqlValidationError
from repro.query_nl.empty_answer import AnswerExplainer
from repro.query_nl.translator import QueryTranslator
from repro.service import NarrationService, ServiceClosed


def workload_sql():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


def run(coro):
    return asyncio.run(coro)


def _fields(translation):
    return (
        translation.sql,
        translation.text,
        translation.concise,
        translation.category,
        tuple(translation.notes),
        translation.rewritten_sql,
    )


# ---------------------------------------------------------------------------
# Byte-identical equivalence under concurrency
# ---------------------------------------------------------------------------


class TestConcurrentEquivalence:
    def test_64_clients_replaying_workload_match_sequential_sync(self):
        database = movie_database()
        corpus = workload_sql() + list(PAPER_QUERIES.values())
        sync = QueryTranslator(
            database.schema, spec=movie_spec(database.schema), phrase_plans=True
        )
        expected = [_fields(sync.translate(sql)) for sql in corpus]

        async def replay(session):
            results = await asyncio.gather(
                *[session.translate(sql) for sql in corpus]
            )
            return [_fields(t) for t in results]

        async def main():
            async with NarrationService(max_workers=4) as service:
                session = service.session(
                    database=database, spec_factory=movie_spec
                )
                clients = await asyncio.gather(*[replay(session) for _ in range(64)])
                return clients, session.stats()

        clients, stats = run(main())
        for client in clients:
            assert client == expected
        assert stats["requests"]["by_kind"]["translate"] == 64 * len(corpus)
        # Stats consistency: a drained, unconfigured session shed nothing
        # and holds no queued work.
        assert stats["requests"]["queue_depth"] == 0
        assert stats["requests"]["shed"] == {
            "overload": 0,
            "deadline": 0,
            "in_queue": 0,
        }

    def test_execution_and_narration_match_sync_pipeline(self):
        database = movie_database()
        spec = movie_spec(database.schema)
        select = "select m.title from MOVIES m where m.year = 2004"
        empty = "select m.title from MOVIES m where m.year = 1800"
        sync_executor = Executor(
            database, compiled=True, use_caches=True, index_scans=True
        )
        expected_rows = sync_executor.execute_sql(select).rows
        expected_story = ContentNarrator(database, spec=spec).narrate_database()
        expected_movie = ContentNarrator(database, spec=spec).narrate_relation("MOVIES")
        expected_explanation = AnswerExplainer(database).explain(empty).text

        async def main():
            async with NarrationService(max_workers=4) as service:
                session = service.session(database=database, spec=spec)
                stories, relations, results, explanations = await asyncio.gather(
                    asyncio.gather(*[session.narrate_database() for _ in range(8)]),
                    asyncio.gather(
                        *[session.narrate_relation("MOVIES") for _ in range(8)]
                    ),
                    asyncio.gather(*[session.execute(select) for _ in range(8)]),
                    asyncio.gather(*[session.explain_empty(empty) for _ in range(8)]),
                )
                return stories, relations, results, explanations

        stories, relations, results, explanations = run(main())
        assert all(story == expected_story for story in stories)
        assert all(relation == expected_movie for relation in relations)
        assert all(result.rows == expected_rows for result in results)
        assert all(e.text == expected_explanation for e in explanations)

    def test_mixed_kinds_interleaved_match_sync(self):
        database = movie_database()
        spec = movie_spec(database.schema)
        corpus = workload_sql()[:20]
        sync = QueryTranslator(database.schema, spec=movie_spec(database.schema))
        expected_texts = [sync.translate(sql).text for sql in corpus]
        expected_story = ContentNarrator(database, spec=spec).narrate_database()

        async def client(session, index):
            if index % 3 == 2:
                return await session.narrate_database()
            return (await session.translate(corpus[index % len(corpus)])).text

        async def main():
            async with NarrationService(max_workers=3) as service:
                session = service.session(database=database, spec=spec)
                return await asyncio.gather(*[client(session, i) for i in range(60)])

        outputs = run(main())
        for index, output in enumerate(outputs):
            if index % 3 == 2:
                assert output == expected_story
            else:
                assert output == expected_texts[index % len(corpus)]


# ---------------------------------------------------------------------------
# Fast path, batching and back-pressure
# ---------------------------------------------------------------------------


class TestServiceMechanics:
    def test_fast_path_serves_warm_requests_inline(self):
        schema = movie_schema()
        sql = list(PAPER_QUERIES.values())[0]

        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(schema=schema)
                await session.translate(sql)  # cold: compiles on a worker
                # Warm requests with an idle queue take the direct-await
                # path.  The first may still race the worker releasing the
                # session lock, so probe a few times.
                warm = None
                for _ in range(10):
                    await asyncio.sleep(0.01)
                    warm = await session.translate(sql)
                    if session.stats()["requests"]["fast_path_hits"]:
                        break
                return warm, session.stats()

        warm, stats = run(main())
        assert warm.text
        assert stats["requests"]["fast_path_hits"] >= 1

    def test_same_shape_requests_share_one_plan_compile(self):
        schema = movie_schema()
        template = "select m.title from MOVIES m where m.year = {year}"
        variants = [template.format(year=1990 + i) for i in range(40)]

        async def main():
            async with NarrationService(max_workers=2) as service:
                # cache_size=None so every request exercises the plan path.
                session = service.session(
                    schema=schema, cache_size=None, phrase_plans=True
                )
                await asyncio.gather(*[session.translate(sql) for sql in variants])
                return session.stats()

        stats = run(main())
        plans = stats["translator"]["plan_store"]
        # One shape: exactly one miss compiled the plan, everything else hit
        # (via the shape group, later batches, or the direct-await path).
        assert plans["misses"] == 1
        assert plans["hits"] + plans["misses"] == len(variants)
        assert stats["requests"]["shape_groups"] <= stats["requests"]["batches"] * 2

    def test_backpressure_bounds_the_queue(self):
        schema = movie_schema()
        template = "select m.title from MOVIES m where m.year = {year}"

        async def main():
            async with NarrationService(max_workers=2, max_queue=4, max_batch=2) as service:
                session = service.session(schema=schema, cache_size=None)
                await asyncio.gather(
                    *[session.translate(template.format(year=1900 + i)) for i in range(50)]
                )
                return session.stats()

        stats = run(main())
        assert stats["requests"]["queue_high_water"] <= 4
        assert stats["requests"]["by_kind"]["translate"] == 50
        # Back-pressure suspends producers; the default admission
        # controller must not have shed a single request.
        assert stats["requests"]["queue_depth"] == 0
        assert stats["requests"]["shed"] == {
            "overload": 0,
            "deadline": 0,
            "in_queue": 0,
        }

    def test_errors_propagate_to_the_awaiting_client(self):
        schema = movie_schema()

        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(schema=schema)
                ok = await session.translate(list(PAPER_QUERIES.values())[0])
                with pytest.raises(SqlValidationError):
                    await session.translate("select m.nope from MOVIES m")
                # the session survives the failed request
                again = await session.translate(list(PAPER_QUERIES.values())[1])
                return ok, again

        ok, again = run(main())
        assert ok.text and again.text

    def test_schema_only_session_rejects_execution(self):
        async def main():
            async with NarrationService(max_workers=1) as service:
                session = service.session(schema=movie_schema())
                with pytest.raises(ValueError):
                    await session.execute("select m.title from MOVIES m")

        run(main())

    def test_closed_service_rejects_requests(self):
        async def main():
            service = NarrationService(max_workers=1)
            session = service.session(schema=movie_schema())
            await session.translate(list(PAPER_QUERIES.values())[0])
            await service.aclose()
            with pytest.raises(ServiceClosed):
                await session.translate(list(PAPER_QUERIES.values())[1])
            with pytest.raises(ServiceClosed):
                service.session(schema=movie_schema())

        run(main())

    def test_existing_session_rejects_new_configuration(self):
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=1) as service:
                service.session(database=database, cache_size=None)
                with pytest.raises(ValueError):
                    service.session(database=database, phrase_plans=False)
                # reuse without configuration is fine
                assert service.session(database=database) is not None

        run(main())

    def test_fast_path_probe_does_not_double_count_lru_misses(self):
        schema = movie_schema()
        template = "select m.title from MOVIES m where m.year = {year}"
        uniques = [template.format(year=1900 + i) for i in range(30)]

        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(schema=schema, phrase_plans=True)
                for sql in uniques:  # sequential: every probe runs and misses
                    await session.translate(sql)
                return session.stats()

        stats = run(main())
        exact = stats["translator"]["exact_cache"]
        # The fast-path probe's misses are uncounted: only slow-path
        # lookups count, so the total stays below one per request (without
        # record_miss=False every request would count 1-2 misses).
        assert exact["misses"] < len(uniques)
        assert exact["hits"] == 0  # every text was unique
        plans = stats["translator"]["plan_store"]
        assert plans["hits"] + plans["misses"] == len(uniques)

    def test_session_is_shared_per_schema_database_pair(self):
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=1) as service:
                a = service.session(database=database)
                b = service.session(database=database)
                c = service.session(schema=database.schema)
                return a, b, c

        a, b, c = run(main())
        assert a is b
        assert c is not a  # schema-only session is a distinct pair


# ---------------------------------------------------------------------------
# Plan-store statistics consistency under interleaving (stress)
# ---------------------------------------------------------------------------


class TestPlanStoreStatsConsistency:
    def test_hits_plus_misses_account_for_every_plan_lookup(self):
        """Interleaved clients: the shared plan store never loses a count.

        With the exact-text LRU disabled every translate performs exactly
        one shape-keyed plan lookup, recorded as exactly one hit or one
        miss — across worker threads and the event-loop fast path.
        """
        schema = movie_schema()
        names = ["Brad Pitt", "Mark Hamill", "Jodie Foster", "Eric Bana"]
        base = workload_sql()
        rounds = 6
        batches = [
            [sql.replace("Brad Pitt", names[(r + i) % len(names)])
             for i, sql in enumerate(base)]
            for r in range(rounds)
        ]

        async def client(session, batch):
            return await asyncio.gather(*[session.translate(sql) for sql in batch])

        async def main():
            async with NarrationService(max_workers=4) as service:
                session = service.session(
                    schema=schema, cache_size=None, phrase_plans=True
                )
                before = session.translator.stats()["plan_store"]
                await asyncio.gather(*[client(session, b) for b in batches])
                after = session.translator.stats()["plan_store"]
                return before, after, session.stats()

        before, after, stats = run(main())
        total = rounds * len(base)
        produced = stats["requests"]["by_kind"]["translate"]
        assert produced == total
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        assert hits + misses == total
        # every distinct (shape, guards) compiled at most once
        assert misses <= len(base) * 2
        assert after["unplannable"] == before["unplannable"]

    def test_two_sessions_share_one_plan_store_consistently(self):
        """Sessions of the same schema share the per-lexicon plan store."""
        database = movie_database()
        # The *same* Schema object: the shared default lexicon (and its
        # plan store) is keyed by schema identity.
        schema = database.schema
        sqls = workload_sql()[:25]

        async def replay(session):
            await asyncio.gather(*[session.translate(sql) for sql in sqls])

        async def main():
            async with NarrationService(max_workers=4) as service:
                translate_only = service.session(
                    schema=schema, cache_size=None, phrase_plans=True
                )
                with_database = service.session(
                    database=database, cache_size=None, phrase_plans=True
                )
                store_a = translate_only.translator._plans
                store_b = with_database.translator._plans
                assert store_a is store_b  # same shared default lexicon
                before = store_a.stats
                await asyncio.gather(
                    replay(translate_only),
                    replay(with_database),
                    replay(translate_only),
                    replay(with_database),
                )
                return before, store_a.stats

        before, after = run(main())
        total = 4 * len(sqls)
        delta = (after["hits"] - before["hits"]) + (after["misses"] - before["misses"])
        assert delta == total
