"""WAL + snapshot unit corpus: formats, damage classification, recovery.

The durability layer's contract (docs/architecture.md, "Durability") is
tested here at the file level, no processes involved:

* a torn final record — at *every* byte offset — is truncatable debris;
* any damage followed by more data is mid-log corruption and fails
  typed (:class:`~repro.errors.WalCorruptionError`), never guessed past;
* snapshots restore byte-identical state (rowids and counters included)
  and refuse version skew against the log;
* recovery is idempotent — recovering twice changes nothing.
"""

import os
import pickle
import shutil
import struct
import zlib
from pathlib import Path

import pytest

from repro.datasets import movie_database
from repro.errors import (
    DurabilityError,
    RecoveryError,
    SnapshotError,
    WalCorruptionError,
)
from repro.service.faults import corrupt_wal_record, tear_wal_tail
from repro.storage import (
    Database,
    DurabilityConfig,
    DurabilityManager,
    WriteAheadLog,
    latest_snapshot,
    load_snapshot,
    scan_wal,
    write_snapshot,
)
from repro.storage.snapshot import (
    SNAPSHOT_MAGIC,
    list_snapshots,
    prune_snapshots,
    restore_into,
    snapshot_state,
)
from repro.storage.wal import MAGIC, WAL_NAME, _RECORD_HEADER, _encode_record


def build_log(path, count=4, fsync="never"):
    """A closed WAL holding ``count`` records seq 1..count."""
    with WriteAheadLog(path, fsync=fsync) as wal:
        for index in range(count):
            wal.append({"sql": f"INSERT {index}"})
    return path


def table_state(database):
    """Comparable full state: rows, rowids, and counters, per table."""
    return {
        table.name: (dict(table._rows), table._next_rowid)
        for table in database.tables
    }


# ---------------------------------------------------------------------------
# Empty and fresh logs
# ---------------------------------------------------------------------------


class TestEmptyLog:
    def test_scan_of_missing_file(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.records == []
        assert scan.last_seq == 0
        assert not scan.torn

    def test_scan_of_zero_byte_file(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_bytes(b"")
        scan = scan_wal(path)
        assert scan.records == [] and scan.valid_bytes == 0

    def test_fresh_open_writes_magic_and_sequences_from_one(self, tmp_path):
        path = tmp_path / WAL_NAME
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.recovered == []
            assert wal.append({"sql": "first"}) == 1
        assert path.read_bytes().startswith(MAGIC)

    def test_magic_only_log_reopens_empty(self, tmp_path):
        path = tmp_path / WAL_NAME
        WriteAheadLog(path, fsync="never").close()
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.recovered == [] and wal.last_seq == 0

    def test_wrong_magic_fails_typed(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(b"NOTAWAL!" + b"x" * 32)
        with pytest.raises(WalCorruptionError):
            scan_wal(path)
        loose = scan_wal(path, strict=False)
        assert loose.records == [] and isinstance(loose.error, WalCorruptionError)

    def test_partial_magic_is_unrecoverable_even_non_strict(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(MAGIC[:4])  # a crash mid-creation, mid-magic
        with pytest.raises(WalCorruptionError):
            scan_wal(path, strict=False)


# ---------------------------------------------------------------------------
# Torn tails (recoverable by construction)
# ---------------------------------------------------------------------------


class TestTornTail:
    def test_torn_at_every_byte_offset_of_the_final_record(self, tmp_path):
        source = build_log(tmp_path / "source.log", count=4)
        whole = scan_wal(source)
        last = whole.records[-1]
        size = source.stat().st_size
        assert last.offset + last.length == size
        path = tmp_path / "torn.log"
        for cut in range(last.offset + 1, size):
            shutil.copyfile(source, path)
            with open(path, "r+b") as handle:
                handle.truncate(cut)
            scan = scan_wal(path)  # strict — a torn tail must not raise
            assert len(scan.records) == 3
            assert scan.torn and scan.torn_bytes == cut - last.offset
            assert scan.valid_bytes == last.offset
            # Recovery-open truncates the debris and appends continue.
            with WriteAheadLog(path, fsync="never") as wal:
                assert [r.seq for r in wal.recovered] == [1, 2, 3]
                assert wal.stats()["torn_bytes_truncated"] == cut - last.offset
                assert wal.append({"sql": "again"}) == 4
            assert not scan_wal(path).torn

    def test_truncation_at_a_record_boundary_is_simply_clean(self, tmp_path):
        source = build_log(tmp_path / "source.log", count=4)
        last = scan_wal(source).records[-1]
        with open(source, "r+b") as handle:
            handle.truncate(last.offset)
        scan = scan_wal(source)
        assert len(scan.records) == 3 and not scan.torn

    def test_garbled_in_place_final_record_is_a_torn_tail(self, tmp_path):
        path = build_log(tmp_path / WAL_NAME, count=3)
        corrupt_wal_record(path, 2)  # the final record: same length, bad crc
        scan = scan_wal(path)  # strict — still must not raise
        assert len(scan.records) == 2 and scan.torn

    def test_tear_wal_tail_is_deterministic_per_seed(self, tmp_path):
        first = build_log(tmp_path / "a.log", count=5)
        second = build_log(tmp_path / "b.log", count=5)
        assert tear_wal_tail(first, seed=7) == tear_wal_tail(second, seed=7)
        assert first.read_bytes() == second.read_bytes()

    def test_tear_wal_tail_refuses_an_empty_log(self, tmp_path):
        path = tmp_path / WAL_NAME
        WriteAheadLog(path, fsync="never").close()
        with pytest.raises(ValueError):
            tear_wal_tail(path)


# ---------------------------------------------------------------------------
# Mid-log corruption (typed refusal by construction)
# ---------------------------------------------------------------------------


class TestMidLogCorruption:
    def test_corrupt_checksum_with_data_following_fails_typed(self, tmp_path):
        path = build_log(tmp_path / WAL_NAME, count=4)
        corrupt_wal_record(path, 1)
        with pytest.raises(WalCorruptionError):
            scan_wal(path)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(path)  # recovery-open must refuse too
        loose = scan_wal(path, strict=False)
        assert [r.seq for r in loose.records] == [1]
        assert isinstance(loose.error, WalCorruptionError)

    def test_sequence_discontinuity_mid_log_fails_typed(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(
            MAGIC
            + _encode_record(1, "a")
            + _encode_record(3, "skipped two")  # the gap
            + _encode_record(4, "c")
        )
        with pytest.raises(WalCorruptionError, match="discontinuity"):
            scan_wal(path)

    def test_sequence_discontinuity_at_the_tail_is_torn(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(MAGIC + _encode_record(1, "a") + _encode_record(3, "b"))
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1] and scan.torn

    def test_undecodable_record_mid_log_fails_typed(self, tmp_path):
        garbage = b"not a pickle at all"
        framed = _RECORD_HEADER.pack(len(garbage), zlib.crc32(garbage)) + garbage
        path = tmp_path / WAL_NAME
        path.write_bytes(MAGIC + _encode_record(1, "a") + framed + _encode_record(2, "b"))
        with pytest.raises(WalCorruptionError, match="undecodable"):
            scan_wal(path)

    def test_corrupt_wal_record_rejects_out_of_range(self, tmp_path):
        path = build_log(tmp_path / WAL_NAME, count=2)
        with pytest.raises(ValueError):
            corrupt_wal_record(path, 5)


# ---------------------------------------------------------------------------
# Append contract, fsync policies, compaction
# ---------------------------------------------------------------------------


class TestAppendContract:
    def test_explicit_seq_must_continue_exactly(self, tmp_path):
        with WriteAheadLog(tmp_path / WAL_NAME, fsync="never") as wal:
            assert wal.append("a", seq=1) == 1
            with pytest.raises(DurabilityError, match="does not continue"):
                wal.append("b", seq=3)
            assert wal.append("b", seq=2) == 2

    def test_set_base_continues_a_compacted_log(self, tmp_path):
        path = tmp_path / WAL_NAME
        with WriteAheadLog(path, fsync="never") as wal:
            for _ in range(3):
                wal.append("x")
            wal.compact(3)  # every record covered: the file is now empty
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.recovered == []
            wal.set_base(3)
            assert wal.append("y") == 4

    def test_set_base_is_illegal_once_the_log_holds_anything(self, tmp_path):
        path = tmp_path / WAL_NAME
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append("x")
            with pytest.raises(DurabilityError):
                wal.set_base(10)
        with WriteAheadLog(path, fsync="never") as wal:  # recovered non-empty
            with pytest.raises(DurabilityError):
                wal.set_base(10)

    def test_set_base_never_rewinds(self, tmp_path):
        with WriteAheadLog(tmp_path / WAL_NAME, fsync="never") as wal:
            wal.set_base(5)
            wal.set_base(2)  # ignored: lower than the current base
            assert wal.append("x") == 6

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / WAL_NAME, fsync="never")
        wal.close()
        with pytest.raises(DurabilityError, match="closed"):
            wal.append("x")

    def test_invalid_policies_fail_fast(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / WAL_NAME, fsync="sometimes")
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / WAL_NAME, fsync="batch", batch_every=0)

    def test_fsync_accounting_per_policy(self, tmp_path):
        # The creation fsync (magic write) is the +1 in each count.
        with WriteAheadLog(tmp_path / "always.log", fsync="always") as wal:
            for _ in range(3):
                wal.append("x")
            assert wal.stats()["syncs"] == 1 + 3
        with WriteAheadLog(
            tmp_path / "batch.log", fsync="batch", batch_every=2
        ) as wal:
            for _ in range(5):
                wal.append("x")
            assert wal.stats()["syncs"] == 1 + 2  # after appends 2 and 4
            assert wal.stats()["pending_sync"] == 1
            wal.commit()
            assert wal.stats()["pending_sync"] == 0
        with WriteAheadLog(tmp_path / "never.log", fsync="never") as wal:
            for _ in range(5):
                wal.append("x")
            assert wal.stats()["syncs"] == 1
            wal.commit()  # nothing batched: a no-op
            assert wal.stats()["syncs"] == 1

    def test_compaction_drops_covered_records_atomically(self, tmp_path):
        path = build_log(tmp_path / WAL_NAME, count=6)
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.compact(4) == 4
            assert wal.stats()["compactions"] == 1
            assert wal.append({"sql": "next"}) == 7  # sequence continues
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [5, 6, 7]
        assert not list(path.parent.glob("*.compact"))  # no temp debris


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class TestSnapshots:
    def test_round_trip_restores_rowids_and_counters_exactly(self, tmp_path):
        database = movie_database()
        database.insert("MOVIES", {"id": 901, "title": "Snap", "year": 1999})
        database.delete_where("GENRE", lambda row: row["mid"] == 1)
        before = table_state(database)
        info = write_snapshot(tmp_path, database, wal_seq=12)
        assert info.wal_seq == 12
        fresh = movie_database()
        restore_into(fresh, load_snapshot(info.path))
        assert table_state(fresh) == before

    def test_restore_bumps_data_version(self, tmp_path):
        database = movie_database()
        state = snapshot_state(database, wal_seq=1)
        version = database.data_version
        restore_into(database, state)
        assert database.data_version > version  # caches must invalidate

    def test_restore_refuses_a_mismatched_schema(self, tmp_path):
        database = movie_database()
        state = snapshot_state(database, wal_seq=1)
        del state["tables"]["GENRE"]
        with pytest.raises(RecoveryError, match="do not match"):
            restore_into(movie_database(), state)

    @pytest.mark.parametrize(
        "damage",
        ["truncate_header", "truncate_body", "flip_byte", "wrong_magic"],
    )
    def test_damaged_snapshot_fails_typed(self, tmp_path, damage):
        info = write_snapshot(tmp_path, movie_database(), wal_seq=3)
        data = bytearray(info.path.read_bytes())
        if damage == "truncate_header":
            data = data[: len(SNAPSHOT_MAGIC) + 2]
        elif damage == "truncate_body":
            data = data[:-10]
        elif damage == "flip_byte":
            data[len(data) // 2] ^= 0xFF
        elif damage == "wrong_magic":
            data[:8] = b"NOTASNAP"
        info.path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError):
            load_snapshot(info.path)

    def test_missing_snapshot_fails_typed(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "snapshot-00000000000000000001.ckpt")

    def test_listing_orders_by_seq_and_prune_keeps_newest(self, tmp_path):
        database = movie_database()
        for seq in (5, 1, 9):
            write_snapshot(tmp_path, database, wal_seq=seq)
        assert [info.wal_seq for info in list_snapshots(tmp_path)] == [1, 5, 9]
        assert latest_snapshot(tmp_path).wal_seq == 9
        assert prune_snapshots(tmp_path, keep=1) == 2
        assert [info.wal_seq for info in list_snapshots(tmp_path)] == [9]
        # Stray files are never pruned: the name pattern is the contract.
        (tmp_path / "unrelated.txt").write_text("keep me")
        assert prune_snapshots(tmp_path, keep=1) == 0
        assert (tmp_path / "unrelated.txt").exists()


# ---------------------------------------------------------------------------
# Recovery (snapshot + replay) through Database.recover / the manager
# ---------------------------------------------------------------------------


class TestRecovery:
    def durable(self, tmp_path, **overrides):
        options = {"directory": tmp_path, "fsync": "never", "checkpoint_every": 0}
        options.update(overrides)
        return DurabilityConfig(**options)

    def test_round_trip_after_process_loss(self, tmp_path):
        manager = DurabilityManager(self.durable(tmp_path))
        database = manager.attach(movie_database())
        database.insert("MOVIES", {"id": 901, "title": "Crash", "year": 2001})
        database.update_where(
            "MOVIES", lambda row: row["id"] == 901, {"year": 2002}
        )
        database.delete_where("GENRE", lambda row: row["mid"] == 2)
        before = table_state(database)
        manager.close()  # simulated loss: nothing checkpointed since attach

        recovered, report = Database.recover(tmp_path)
        assert table_state(recovered) == before
        assert report["replayed"] == 3 and report["rejected"] == 0

    def test_double_recovery_is_idempotent(self, tmp_path):
        manager = DurabilityManager(self.durable(tmp_path))
        database = manager.attach(movie_database())
        for index in range(5):
            database.insert(
                "MOVIES", {"id": 910 + index, "title": f"Twice {index}", "year": 1990}
            )
        manager.close()

        first, first_report = Database.recover(tmp_path)
        second, second_report = Database.recover(tmp_path)
        assert table_state(first) == table_state(second)
        assert first_report == second_report
        # And recovery itself wrote nothing: a third pass still agrees.
        third, _ = Database.recover(tmp_path)
        assert table_state(third) == table_state(first)

    def test_snapshot_log_version_skew_fails_typed(self, tmp_path):
        write_snapshot(tmp_path, movie_database(), wal_seq=5)
        with WriteAheadLog(tmp_path / WAL_NAME, fsync="never") as wal:
            wal.set_base(6)  # the log resumes at 7: seq 6 is missing
            wal.append({"sql": "orphan"})
        with pytest.raises(RecoveryError, match="WAL gap"):
            Database.recover(tmp_path)

    def test_stale_log_behind_the_snapshot_is_ignored(self, tmp_path):
        database = movie_database()
        with WriteAheadLog(tmp_path / WAL_NAME, fsync="never") as wal:
            wal.append(("insert", "GENRE", {"mid": 1, "genre": "stale"}, True))
        write_snapshot(tmp_path, database, wal_seq=5)
        recovered, report = Database.recover(tmp_path)
        assert report["replayed"] == 0  # seq 1 <= snapshot seq 5
        assert table_state(recovered) == table_state(database)

    def test_no_snapshot_and_no_schema_fails_typed(self, tmp_path):
        with pytest.raises(RecoveryError, match="no snapshot"):
            Database.recover(tmp_path)

    def test_rejected_mutation_replays_as_the_same_rejection(self, tmp_path):
        manager = DurabilityManager(self.durable(tmp_path))
        database = manager.attach(movie_database())
        database.insert("MOVIES", {"id": 901, "title": "Valid", "year": 2001})
        with pytest.raises(Exception):
            database.insert("MOVIES", {"id": 901, "title": "Dup", "year": 2002})
        before = table_state(database)
        manager.close()
        recovered, report = Database.recover(tmp_path)
        assert table_state(recovered) == before
        # The duplicate was logged before its primary-key check rejected
        # it; replay re-runs the same check against the same state and
        # lands on the same answer — counted, not applied.
        assert report["replayed"] == 1 and report["rejected"] == 1

    def test_recovery_tolerates_a_torn_final_record(self, tmp_path):
        manager = DurabilityManager(self.durable(tmp_path))
        database = manager.attach(movie_database())
        for index in range(4):
            database.insert(
                "MOVIES", {"id": 920 + index, "title": f"Torn {index}", "year": 1985}
            )
        manager.close()
        tear_wal_tail(tmp_path / WAL_NAME, seed=3)
        recovered, report = Database.recover(tmp_path)
        assert report["torn_bytes"] > 0
        assert report["replayed"] == 3  # the unacknowledged final write is gone
        titles = {
            row["title"]
            for row in recovered.table("MOVIES").rows()
            if str(row["title"]).startswith("Torn")
        }
        assert titles == {"Torn 0", "Torn 1", "Torn 2"}

    def test_recovery_refuses_mid_log_corruption(self, tmp_path):
        manager = DurabilityManager(self.durable(tmp_path))
        database = manager.attach(movie_database())
        for index in range(4):
            database.insert(
                "MOVIES", {"id": 930 + index, "title": f"Mid {index}", "year": 1985}
            )
        manager.close()
        corrupt_wal_record(tmp_path / WAL_NAME, 1)
        with pytest.raises(WalCorruptionError):
            Database.recover(tmp_path)

    def test_manager_reattach_recovers_and_checkpoint_compacts(self, tmp_path):
        config = self.durable(tmp_path)
        manager = DurabilityManager(config)
        database = manager.attach(movie_database())
        database.insert("MOVIES", {"id": 940, "title": "Gen one", "year": 1970})
        before = table_state(database)
        manager.close()

        second = DurabilityManager(config)
        database = second.attach(movie_database())  # the vessel is replaced
        assert second.recovered and second.recovery_report["replayed"] == 1
        assert table_state(database) == before
        seq = second.checkpoint()
        assert latest_snapshot(tmp_path).wal_seq == seq
        assert scan_wal(config.wal_path).records == []  # compacted away
        stats = second.stats()
        assert stats["checkpoints"] == 1 and stats["wal"]["compactions"] == 1
        second.close()

        third = DurabilityManager(config)
        database = third.attach(movie_database())
        assert table_state(database) == before  # snapshot-only recovery
        database.insert("MOVIES", {"id": 941, "title": "Gen three", "year": 1971})
        # set_base carried the sequence across the compacted (empty) log.
        assert third.wal.last_seq == seq + 1
        third.close()

    def test_auto_checkpoint_cadence(self, tmp_path):
        manager = DurabilityManager(
            self.durable(tmp_path, checkpoint_every=3, keep_snapshots=1)
        )
        database = manager.attach(movie_database())
        for index in range(7):
            database.insert(
                "MOVIES", {"id": 950 + index, "title": f"Cadence {index}", "year": 2000}
            )
        stats = manager.stats()
        # The baseline snapshot at attach, then one per 3 mutations.
        assert stats["checkpoints"] == 1 + 2
        assert stats["since_checkpoint"] == 1
        assert len(list_snapshots(tmp_path)) == 1  # pruned to keep_snapshots
        assert len(scan_wal(manager.config.wal_path).records) == 1
        manager.close()

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityConfig(directory=tmp_path, fsync="sometimes")
        with pytest.raises(ValueError):
            DurabilityConfig(directory=tmp_path, batch_every=0)
        with pytest.raises(ValueError):
            DurabilityConfig(directory=tmp_path, checkpoint_every=-1)
        with pytest.raises(ValueError):
            DurabilityConfig(directory=tmp_path, keep_snapshots=0)
