"""Durability suite: the system survives losing every process.

Three escalating drills over the WAL + snapshot layer
(``docs/architecture.md``, "Durability"):

* **Session round trip** — a ``NarrationSession`` configured with a
  :class:`~repro.storage.DurabilityConfig` persists every mutation; a
  fresh session over the same directory serves byte-identical reads.
* **Deterministic crash** — a child process runs a durable
  ``ShardRouter`` workload and dies *between a WAL append and its
  acknowledgement* (``REPRO_FAULTS wal_crash_nth``, exit 139 — the
  seeded SIGKILL).  Recovery must surface every acknowledged mutation
  (acked ⊆ logged) and match a single-process oracle that replays the
  recovered log, byte for byte.
* **Whole-tier SIGKILL** — the parent kills the child's entire process
  group mid-workload (router *and* every worker, no warning), then
  recovers from disk alone.

The drills run in whatever execution mode the suite runs in; CI's
``durability-smoke`` job runs them both compiled and ``REPRO_ORACLE=1``.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.content.presets import movie_spec
from repro.datasets import movie_database
from repro.service import NarrationService, ShardRouter, WorkerCrashed
from repro.storage import DurabilityConfig, latest_snapshot, scan_wal
from repro.storage.wal import WAL_NAME

DB_FACTORY = "repro.datasets.movies:movie_database"
SPEC_FACTORY = "repro.content.presets:movie_spec"

TIMEOUT = 120

READS = [
    "select m.title from MOVIES m where m.year > 2010",
    "select count(*) from MOVIES",
    "select g.genre from GENRE g where g.mid = 1",
]


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def drill_sql(index):
    return f"insert into MOVIES values ({900 + index}, 'Drill {index}', {1980 + index % 40})"


async def retry_crashed(call, attempts=80, delay=0.25):
    for _ in range(attempts):
        try:
            return await call()
        except WorkerCrashed:
            await asyncio.sleep(delay)
    raise AssertionError("worker never came back")


async def oracle_outputs(mutations):
    """Single-process oracle: apply ``mutations`` in order, run READS."""
    async with NarrationService(max_workers=2) as service:
        database = movie_database()
        session = service.session(database=database, spec=movie_spec(database.schema))
        for sql in mutations:
            await session.execute(sql)
        return [await session.execute(sql) for sql in READS]


async def recovered_outputs(directory):
    """Recover a shard tier from ``directory`` and run READS through it."""
    config = DurabilityConfig(directory=directory, fsync="never", checkpoint_every=0)
    async with ShardRouter(
        DB_FACTORY, spec_factory=SPEC_FACTORY, workers=2, durability=config
    ) as router:
        outputs = [await router.execute(sql) for sql in READS]
        stats = await router.stats()
    return outputs, stats


def logged_mutations(directory):
    """Every mutation the durability directory knows, in sequence order.

    With no checkpoint taken (the drills disable the cadence) the WAL
    alone is the full history.
    """
    scan = scan_wal(Path(directory) / WAL_NAME, strict=False)
    assert scan.error is None, f"drill log unexpectedly corrupt: {scan.error}"
    return [record.payload["sql"] for record in scan.records]


def acked_mutations(path):
    """The acked side file's complete lines (a torn final line is the
    write the crash interrupted — exactly like the WAL's torn tail)."""
    data = Path(path).read_bytes().decode()
    lines = data.split("\n")
    if lines and lines[-1] != "":
        lines = lines[:-1]  # incomplete final line: never acked to anyone
    else:
        lines = lines[:-1]
    return [line for line in lines if line]


def assert_byte_identical(got, want):
    assert len(got) == len(want)
    for left, right in zip(got, want):
        assert left == right
        assert left.rows == right.rows


#: The crash-drill child: a durable shard tier that records every
#: *acknowledged* mutation to a side file (flushed and fsynced before the
#: next request, so the file never claims an ack that did not happen).
CHILD = r"""
import asyncio, os, sys
from repro.service import ShardRouter
from repro.service.faults import FaultInjector
from repro.storage import DurabilityConfig

directory, acked_path, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
config = DurabilityConfig(
    directory=directory,
    fsync="batch",
    batch_every=4,
    checkpoint_every=0,
    injector=FaultInjector.from_env("router-wal"),
)

async def main():
    router = ShardRouter(
        "repro.datasets.movies:movie_database",
        spec_factory="repro.content.presets:movie_spec",
        workers=2,
        durability=config,
    )
    await router.start()
    with open(acked_path, "a") as acked:
        for index in range(count):
            sql = (
                f"insert into MOVIES values ({900 + index},"
                f" 'Drill {index}', {1980 + index % 40})"
            )
            await router.execute(sql)
            acked.write(sql + "\n")
            acked.flush()
            os.fsync(acked.fileno())
    await router.aclose()

asyncio.run(main())
"""


def child_env(faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


# ---------------------------------------------------------------------------
# Session-level durability
# ---------------------------------------------------------------------------


class TestSessionDurability:
    def test_round_trip_across_service_restarts(self, tmp_path):
        config = DurabilityConfig(directory=tmp_path, fsync="never")
        mutations = [drill_sql(index) for index in range(5)]

        async def first_life():
            async with NarrationService(max_workers=2) as service:
                session = service.session(
                    database=movie_database(), durability=config
                )
                for sql in mutations:
                    await session.execute(sql)
                stats = session.stats()["durability"]
                return [await session.execute(sql) for sql in READS], stats

        async def second_life():
            async with NarrationService(max_workers=2) as service:
                session = service.session(
                    database=movie_database(), durability=config
                )
                stats = session.stats()["durability"]
                return [await session.execute(sql) for sql in READS], stats

        before, first_stats = run(first_life())
        # The baseline snapshot at attach means recovery never needs the
        # database factory's data again.
        assert first_stats["checkpoints"] >= 1
        assert first_stats["recovered"] is False
        after, second_stats = run(second_life())
        assert_byte_identical(after, before)
        assert second_stats["recovered"] is True
        assert second_stats["replayed"] == len(mutations)

    def test_explicit_checkpoint_compacts_the_log(self, tmp_path):
        config = DurabilityConfig(
            directory=tmp_path, fsync="never", checkpoint_every=0
        )

        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(
                    database=movie_database(), durability=config
                )
                for index in range(3):
                    await session.execute(drill_sql(index))
                seq = await session.checkpoint()
                return seq, session.stats()["durability"]

        seq, stats = run(main())
        assert latest_snapshot(tmp_path).wal_seq == seq
        assert scan_wal(config.wal_path).records == []
        assert stats["checkpoints"] == 2  # the attach baseline + ours

    def test_durability_without_a_database_is_rejected(self, tmp_path):
        config = DurabilityConfig(directory=tmp_path)

        async def main():
            async with NarrationService(max_workers=2) as service:
                with pytest.raises(ValueError):
                    service.session(durability=config)

        run(main())

    def test_checkpoint_without_durability_is_rejected(self):
        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(database=movie_database())
                with pytest.raises(ValueError):
                    await session.checkpoint()

        run(main())


# ---------------------------------------------------------------------------
# The deterministic crash drill (3 seeded schedules)
# ---------------------------------------------------------------------------


class TestCrashDrill:
    @pytest.mark.parametrize(
        "seed,crash_nth",
        [(11, 7), (23, 19), (47, 36)],
        ids=["seed11-crash7", "seed23-crash19", "seed47-crash36"],
    )
    def test_crash_between_append_and_ack_recovers_byte_identical(
        self, tmp_path, seed, crash_nth
    ):
        directory = tmp_path / "state"
        acked_path = tmp_path / "acked.txt"
        faults = (
            f"seed={seed},wal_crash_nth={crash_nth}"
            ",fsync_stall=0.25,fsync_stall_s=0.01"
        )
        result = subprocess.run(
            [sys.executable, "-c", CHILD, str(directory), str(acked_path), "50"],
            env=child_env(faults),
            capture_output=True,
            text=True,
            timeout=TIMEOUT,
        )
        # The injector's crash is os._exit(139): the seeded SIGKILL.
        assert result.returncode == 139, result.stderr[-2000:]

        acked = acked_mutations(acked_path)
        logged = logged_mutations(directory)
        # The crash landed after append crash_nth, before its ack: the
        # log holds exactly one mutation nobody was ever told about.
        assert len(acked) == crash_nth - 1
        assert logged[: len(acked)] == acked  # acked ⊆ logged, in order
        assert len(logged) == crash_nth

        outputs, stats = run(recovered_outputs(directory))
        expected = run(oracle_outputs(logged))
        assert_byte_identical(outputs, expected)
        durability = stats["router"]["durability"]
        assert durability["recovered_mutations"] == len(logged)
        assert stats["router"]["mutations"] == len(logged)


# ---------------------------------------------------------------------------
# Losing every process at once
# ---------------------------------------------------------------------------


class TestWholeTierSigkill:
    def test_sigkill_the_entire_tier_mid_workload(self, tmp_path):
        directory = tmp_path / "state"
        acked_path = tmp_path / "acked.txt"
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(directory), str(acked_path), "400"],
            env=child_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # its own process group: killable whole
        )
        try:
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                if acked_path.exists() and len(acked_mutations(acked_path)) >= 10:
                    break
                if child.poll() is not None:
                    raise AssertionError(
                        f"child exited early with {child.returncode}"
                    )
                time.sleep(0.05)
            else:
                raise AssertionError("child never acknowledged 10 mutations")
            # Lose every process: router and both workers, no warning.
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                child.kill()
                child.wait(timeout=30)

        acked = acked_mutations(acked_path)
        logged = logged_mutations(directory)
        assert len(acked) >= 10
        # Every acknowledged mutation survived (the log may additionally
        # hold a final append whose ack the SIGKILL outran).
        assert logged[: len(acked)] == acked
        assert len(logged) - len(acked) <= 1

        outputs, stats = run(recovered_outputs(directory))
        expected = run(oracle_outputs(logged))
        assert_byte_identical(outputs, expected)
        assert stats["router"]["durability"]["recovered_mutations"] == len(logged)


# ---------------------------------------------------------------------------
# Checkpointing and compaction on the router
# ---------------------------------------------------------------------------


class TestRouterCheckpointing:
    def test_cadence_checkpoints_bound_the_mutation_log(self, tmp_path):
        config = DurabilityConfig(
            directory=tmp_path, fsync="never", checkpoint_every=4
        )
        mutations = [drill_sql(index) for index in range(10)]

        async def first_life():
            async with ShardRouter(
                DB_FACTORY, spec_factory=SPEC_FACTORY, workers=2, durability=config
            ) as router:
                for sql in mutations:
                    await router.execute(sql)
                outputs = [await router.execute(sql) for sql in READS]
                return outputs, await router.stats()

        outputs, stats = run(first_life())
        router_stats = stats["router"]
        durability = router_stats["durability"]
        # 10 mutations at a cadence of 4: two checkpoints, and the
        # in-memory log is bounded by compaction instead of growing
        # with the workload (satellite: the unbounded-log fix).
        assert router_stats["compactions"] == 2
        assert durability["checkpoints"] == 2
        assert durability["snapshot_seq"] == 8
        assert router_stats["mutation_log"] == 2  # seqs 9, 10 only
        assert durability["since_checkpoint"] == 2
        assert latest_snapshot(tmp_path).wal_seq == 8
        assert [r.seq for r in scan_wal(config.wal_path).records] == [9, 10]

        # A whole-router restart recovers snapshot + tail and serves the
        # same reads the first life did.
        recovered, second_stats = run(recovered_outputs(tmp_path))
        assert_byte_identical(recovered, outputs)
        assert second_stats["router"]["durability"]["recovered_mutations"] == 2

    def test_explicit_checkpoint_and_respawn_fast_forward(self, tmp_path):
        config = DurabilityConfig(
            directory=tmp_path, fsync="never", checkpoint_every=0
        )

        async def main():
            async with ShardRouter(
                DB_FACTORY, spec_factory=SPEC_FACTORY, workers=2, durability=config
            ) as router:
                for index in range(3):
                    await router.execute(drill_sql(index))
                seq = await router.checkpoint()
                assert seq == 3
                # Kill one worker: its replacement restores the snapshot
                # and fast-forwards the watermark instead of replaying
                # the (compacted-away) history.
                router.kill_worker(0)
                outputs = [
                    await retry_crashed(lambda sql=sql: router.execute(sql))
                    for sql in READS
                ]
                handle = router._handles[0]
                assert handle.restored_seq == 3
                assert handle.applied_seq >= 3
                # And mutations keep flowing after the respawn.
                await router.execute(drill_sql(3))
                return outputs, await router.stats()

        outputs, stats = run(main())
        expected = run(oracle_outputs([drill_sql(index) for index in range(3)]))
        assert_byte_identical(outputs, expected)
        assert stats["router"]["respawns"] >= 1
        assert stats["router"]["durability"]["snapshot_seq"] == 3

    def test_checkpoint_without_durability_is_rejected(self):
        async def main():
            async with ShardRouter(DB_FACTORY, workers=1) as router:
                with pytest.raises(ValueError):
                    await router.checkpoint()

        run(main())
