"""Integration tests: the paper's queries Q1-Q9 executed on the seed data."""

import pytest

from repro.datasets import ALL_GENRES, PAPER_QUERIES, movie_database
from repro.engine import Executor
from repro.rewrite import flatten_in_subqueries
from repro.sql.parser import parse_select


@pytest.fixture(scope="module")
def executor() -> Executor:
    return Executor(movie_database())


class TestPaperQueryAnswers:
    def test_q1_movies_with_brad_pitt(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q1"])
        assert set(result.column("m.title")) == {"Troy", "Seven", "Ocean Heist"}

    def test_q2_action_movies_by_loucas(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q2"])
        assert set(result.to_tuples()) == {
            ("Mark Hamill", "Star Battles"),
        }
        assert result.row_count == 2  # the two Star Battles releases

    def test_q3_actor_pairs_share_a_movie(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q3"])
        pairs = set(result.to_tuples())
        assert ("Jonathan Rhys Meyers", "Scarlett Johansson") in pairs
        assert ("Eric Bana", "Brad Pitt") in pairs
        assert result.row_count == 4

    def test_q4_title_equals_role(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q4"])
        assert result.to_tuples() == [("Melinda and Melinda",)]

    def test_q5_equals_q1(self, executor):
        q1 = executor.execute_sql(PAPER_QUERIES["Q1"])
        q5 = executor.execute_sql(PAPER_QUERIES["Q5"])
        assert sorted(q1.to_tuples()) == sorted(q5.to_tuples())

    def test_q5_flattened_form_gives_same_answer(self, executor):
        flattened = flatten_in_subqueries(parse_select(PAPER_QUERIES["Q5"]))
        assert flattened.changed
        original = executor.execute_sql(PAPER_QUERIES["Q5"])
        rewritten = executor.execute_select(flattened.statement)
        assert sorted(original.to_tuples()) == sorted(rewritten.to_tuples())

    def test_q6_movie_with_all_genres(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q6"])
        assert result.to_tuples() == [("Ocean Heist",)]
        # sanity: Ocean Heist really does carry every genre in the database
        genres = executor.execute_sql(
            "select g.genre from GENRE g, MOVIES m where g.mid = m.id and m.title = 'Ocean Heist'"
        )
        assert sorted(genres.column("g.genre")) == ALL_GENRES

    def test_q7_movies_with_more_than_one_genre(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q7"])
        titles = {row.get("m.title") for row in result.rows}
        assert titles == {"Match Point", "Melinda and Melinda", "Ocean Heist"}
        counts = {row.get("m.title"): row.get("count(*)") for row in result.rows}
        assert counts["Match Point"] == 2  # two cast members

    def test_q8_actors_with_all_movies_in_same_year(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q8"])
        names = {row.get("a.name") for row in result.rows}
        # Actors with a single movie qualify; Brad Pitt (3 years) and Mark
        # Hamill (1977/1997) do not.
        assert "Brad Pitt" not in names
        assert "Mark Hamill" not in names
        assert "Eric Bana" in names

    def test_q9_literal_semantics_includes_earliest_star_battles_actor(self, executor):
        result = executor.execute_sql(PAPER_QUERIES["Q9"])
        names = set(result.column("a.name"))
        # Mark Hamill plays in the 1977 Star Battles, the earliest repeated title.
        assert "Mark Hamill" in names

    def test_q9_intended_semantics_via_restricted_query(self, executor):
        """The paper's *intended* reading: only actors of repeated movies' earliest version."""
        sql = """
            select distinct a.name
            from MOVIES m, CAST c, ACTOR a
            where m.id = c.mid and c.aid = a.id
              and exists (select * from MOVIES m2
                          where m2.title = m.title and m2.id <> m.id)
              and m.year <= all (select m1.year from MOVIES m1
                                 where m1.title = m.title)
        """
        result = executor.execute_sql(sql)
        assert result.to_tuples() == [("Mark Hamill",)]

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_every_query_executes_without_error(self, executor, name):
        result = executor.execute_sql(PAPER_QUERIES[name])
        assert result.row_count >= 0
