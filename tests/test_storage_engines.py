"""Differential suite for the pluggable storage engines.

The dict-row engine (``Table``) is the storage oracle: every test here
runs the same queries — the paper's Q1–Q9, the 50-query generated
corpus, and randomized DML interleavings — against the paged-heap and
columnar engines and asserts byte-identical results, in both the
compiled and (via the CI job's ``REPRO_ORACLE=1`` run) interpreted
configurations.  The paged engine additionally runs with a buffer pool
far smaller than the dataset, so eviction and write-back are on the
query path, not just in unit tests.
"""

import pickle
import random

import pytest

from repro.catalog.attribute import Attribute
from repro.catalog.relation import Relation
from repro.catalog.types import DataType
from repro.content.ranking import rank_tuples, tracker_for
from repro.datasets import PAPER_QUERIES, get_domain, movie_database
from repro.datasets.workload import generate_workload
from repro.engine.executor import Executor
from repro.storage import (
    ColumnarStorage,
    Database,
    DurabilityConfig,
    DurabilityManager,
    PagedHeapStorage,
    StorageConfig,
    Table,
    TableStorage,
    create_storage,
    dump_records,
)
from repro.storage.engine.paged import (
    MAX_PAGE_SIZE,
    MIN_PAGE_SIZE,
    BufferManager,
    DiskManager,
    SlottedPage,
)

ENGINES = ["rows", "paged", "columnar"]

#: A paged configuration whose pool is much smaller than any test
#: dataset: scans continuously evict and fault pages back in.
TINY_POOL = {"page_size": 512, "buffer_pool_pages": 4}


def engine_config(engine: str) -> StorageConfig:
    if engine == "paged":
        return StorageConfig(default_engine="paged", **TINY_POOL)
    return StorageConfig(default_engine=engine)


def database_for(engine: str) -> Database:
    return movie_database().with_storage(engine_config(engine))


def rows_of(result):
    return [dict(row.raw) for row in result.rows]


def movie_relation() -> Relation:
    return Relation(
        "MOVIES",
        [
            Attribute("id", DataType.INTEGER, primary_key=True),
            Attribute("title", DataType.TEXT, heading=True, nullable=False),
            Attribute("year", DataType.INTEGER),
        ],
    )


# ----------------------------------------------------------------------
# Protocol conformance
# ----------------------------------------------------------------------


class TestProtocol:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_satisfies_the_protocol(self, engine):
        table = create_storage(movie_relation(), engine_config(engine))
        assert isinstance(table, TableStorage)

    def test_rows_engine_is_the_historical_table(self):
        table = create_storage(movie_relation(), engine_config("rows"))
        assert isinstance(table, Table)
        assert repr(table) == "Table(MOVIES, 0 rows)"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engine_name_in_stats(self, engine):
        table = create_storage(movie_relation(), engine_config(engine))
        assert table.stats()["engine"] == engine

    def test_deprecated_alias_warns(self):
        from repro.storage import api

        with pytest.warns(DeprecationWarning):
            api.InMemoryTable  # noqa: B018

    def test_storage_config_is_picklable(self):
        config = StorageConfig(default_engine="columnar", engines={"CAST": "paged"})
        assert pickle.loads(pickle.dumps(config)) == config


# ----------------------------------------------------------------------
# StorageConfig validation
# ----------------------------------------------------------------------


class TestStorageConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(default_engine="btree")

    def test_unknown_per_relation_engine_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(engines={"MOVIES": "lsm"})

    def test_page_size_bounds(self):
        with pytest.raises(ValueError):
            StorageConfig(page_size=MIN_PAGE_SIZE - 1)
        with pytest.raises(ValueError):
            StorageConfig(page_size=MAX_PAGE_SIZE + 1)

    def test_pool_must_be_positive(self):
        with pytest.raises(ValueError):
            StorageConfig(buffer_pool_pages=0)

    def test_engine_for_is_case_insensitive(self):
        config = StorageConfig(engines={"MOVIES": "columnar"})
        assert config.engine_for("movies") == "columnar"
        assert config.engine_for("CAST") == "rows"

    def test_from_env_defaults(self):
        assert StorageConfig.from_env(environ={}) == StorageConfig()

    def test_from_env_reads_engine_and_knobs(self):
        config = StorageConfig.from_env(
            environ={
                "REPRO_STORAGE_ENGINE": "paged",
                "REPRO_STORAGE_PAGE_SIZE": "1024",
                "REPRO_STORAGE_POOL_PAGES": "8",
                "REPRO_STORAGE_AUTO_INDEX": "off",
            }
        )
        assert config.default_engine == "paged"
        assert config.page_size == 1024
        assert config.buffer_pool_pages == 8
        assert config.auto_index is False


# ----------------------------------------------------------------------
# Page / disk / buffer unit tests
# ----------------------------------------------------------------------


class TestSlottedPage:
    def test_insert_read_round_trip(self):
        page = SlottedPage(bytearray(MIN_PAGE_SIZE), MIN_PAGE_SIZE)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_full_page_refuses_insert(self):
        page = SlottedPage(bytearray(MIN_PAGE_SIZE), MIN_PAGE_SIZE)
        while page.insert(b"x" * 16) is not None:
            pass
        assert page.insert(b"x" * 16) is None

    def test_delete_kills_the_slot(self):
        page = SlottedPage(bytearray(MIN_PAGE_SIZE), MIN_PAGE_SIZE)
        slot = page.insert(b"doomed")
        page.delete(slot)
        assert page.read(slot) is None


class TestBufferManager:
    def test_eviction_writes_dirty_pages_back(self):
        disk = DiskManager(page_size=MIN_PAGE_SIZE)
        pool = BufferManager(disk, capacity=2)
        pages = [disk.allocate() for _ in range(3)]
        for index, page_id in enumerate(pages):
            buffer = pool.pin(page_id)
            buffer[0] = index + 1
            pool.unpin(page_id, dirty=True)
        stats = pool.stats()
        assert stats["evictions"] >= 1
        assert stats["write_backs"] >= 1
        # Evicted content survives the round trip through the heap file.
        assert pool.pin(pages[0])[0] == 1
        pool.unpin(pages[0], dirty=False)
        disk.close()

    def test_pinned_pages_are_not_evicted(self):
        disk = DiskManager(page_size=MIN_PAGE_SIZE)
        pool = BufferManager(disk, capacity=1)
        first = disk.allocate()
        second = disk.allocate()
        buffer = pool.pin(first)
        buffer[0] = 42
        # The only frame is pinned: the pool must grow, not evict it.
        pool.pin(second)
        pool.unpin(second, dirty=False)
        assert pool.stats()["overflows"] >= 1
        assert buffer[0] == 42
        pool.unpin(first, dirty=False)
        disk.close()

    def test_oversize_record_is_stored(self):
        table = PagedHeapStorage(
            movie_relation(), page_size=MIN_PAGE_SIZE, buffer_pool_pages=2
        )
        big_title = "x" * (4 * MIN_PAGE_SIZE)
        rowid = table.insert({"id": 1, "title": big_title, "year": 2000})
        assert table.row_by_id(rowid)["title"] == big_title
        assert table.stats()["oversize_rows"] == 1


# ----------------------------------------------------------------------
# Query differential: every engine vs. the dict-row oracle
# ----------------------------------------------------------------------


class TestQueryDifferential:
    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_paper_queries_byte_identical(self, engine):
        oracle = Executor(database_for("rows"))
        subject = Executor(database_for(engine))
        for name, sql in sorted(PAPER_QUERIES.items()):
            assert rows_of(subject.execute_sql(sql)) == rows_of(
                oracle.execute_sql(sql)
            ), name

    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_generated_corpus_byte_identical(self, engine):
        corpus = generate_workload(queries_per_category=10, seed=2009)
        assert len(corpus) == 50
        oracle = Executor(database_for("rows"))
        subject = Executor(database_for(engine))
        for query in corpus:
            assert rows_of(subject.execute_sql(query.sql)) == rows_of(
                oracle.execute_sql(query.sql)
            ), query.name

    def test_corpus_with_dataset_4x_larger_than_the_pool(self):
        from repro.datasets.generator import GeneratorConfig, generate_movie_database
        from repro.oracle import oracle_enabled

        # The interpreted oracle executor is quadratic on the corpus's
        # nested queries, so the REPRO_ORACLE run uses a smaller dataset
        # and corpus — with a smaller page size, so the dataset still
        # spans at least 4x more pages than the pool holds.
        if oracle_enabled():
            config = GeneratorConfig(movies=60, directors=20, actors=60)
            storage = StorageConfig(
                default_engine="paged", page_size=MIN_PAGE_SIZE, buffer_pool_pages=4
            )
            per_category = 2
        else:
            config = GeneratorConfig(movies=400, directors=60, actors=120)
            storage = engine_config("paged")
            per_category = 10
        oracle_db = generate_movie_database(config)
        paged_db = generate_movie_database(config).with_storage(storage)
        oracle = Executor(oracle_db)
        subject = Executor(paged_db)
        for query in generate_workload(queries_per_category=per_category, seed=2009):
            assert rows_of(subject.execute_sql(query.sql)) == rows_of(
                oracle.execute_sql(query.sql)
            ), query.name
        movies = paged_db.storage_stats()["MOVIES"]
        # The dataset spans at least 4x more pages than the 4-frame pool
        # holds, so the corpus cannot run without faulting pages back in.
        assert movies["disk"]["pages"] >= 4 * storage.buffer_pool_pages
        assert movies["buffer_pool"]["misses"] > 0
        assert movies["buffer_pool"]["evictions"] > 0

    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_interpreted_mode_matches_too(self, engine):
        oracle = Executor(database_for("rows"), compiled=False)
        subject = Executor(database_for(engine), compiled=False)
        for name, sql in sorted(PAPER_QUERIES.items()):
            assert rows_of(subject.execute_sql(sql)) == rows_of(
                oracle.execute_sql(sql)
            ), name


# ----------------------------------------------------------------------
# Randomized DML differential
# ----------------------------------------------------------------------


class TestRandomizedDml:
    CHECK_QUERIES = [
        "select m.id, m.title, m.year from MOVIES m",
        "select m.title from MOVIES m where m.year > 1990",
        "select g.genre, count(*) from GENRE g group by g.genre",
    ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_interleaved_dml_stays_byte_identical(self, engine, seed):
        rng = random.Random(seed)
        oracle_db = database_for("rows")
        subject_db = database_for(engine)
        oracle = Executor(oracle_db)
        subject = Executor(subject_db)
        next_id = 10_000
        for step in range(120):
            roll = rng.random()
            if roll < 0.45:
                next_id += 1
                sql = (
                    f"insert into MOVIES values ({next_id}, "
                    f"'Generated {next_id}', {rng.randint(1950, 2008)})"
                )
            elif roll < 0.70:
                sql = (
                    f"update MOVIES set year = {rng.randint(1950, 2008)} "
                    f"where id = {rng.randint(1, next_id)}"
                )
            elif roll < 0.85:
                sql = f"delete from MOVIES where id = {rng.randint(1, next_id)}"
            else:
                sql = rng.choice(self.CHECK_QUERIES)
            a = oracle.execute_sql(sql)
            b = subject.execute_sql(sql)
            if hasattr(a, "rows"):
                assert rows_of(b) == rows_of(a), (seed, step, sql)
        assert dump_records(subject_db) == dump_records(oracle_db)
        for sql in self.CHECK_QUERIES:
            assert rows_of(subject.execute_sql(sql)) == rows_of(
                oracle.execute_sql(sql)
            )

    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_update_that_grows_a_row_keeps_position(self, engine):
        database = database_for(engine)
        oracle = database_for("rows")
        grown = "An Extremely Long Replacement Title " * 8
        for db in (database, oracle):
            Executor(db).execute_sql(
                f"update MOVIES set title = '{grown.strip()}' where id = 2"
            )
        assert dump_records(database) == dump_records(oracle)


# ----------------------------------------------------------------------
# Recovery: WAL + snapshot restore into every engine (satellite fix)
# ----------------------------------------------------------------------


class TestRecoveryAcrossEngines:
    def _run_history(self, database: Database) -> None:
        executor = Executor(database)
        executor.execute_sql("insert into MOVIES values (900, 'Recovered', 1999)")
        executor.execute_sql("insert into GENRE values (900, 'Drama')")
        executor.execute_sql("update MOVIES set year = 2001 where id = 900")
        executor.execute_sql("delete from GENRE where mid = 900")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_wal_and_snapshot_restore_into_each_engine(self, tmp_path, engine):
        directory = tmp_path / engine
        config = DurabilityConfig(
            directory=directory, fsync="never", checkpoint_every=2
        )
        with DurabilityManager(config) as manager:
            database = manager.attach(database_for(engine))
            self._run_history(database)
            expected = dump_records(database)
            expected_ranking = [
                (t.row["id"], t.score) for t in rank_tuples(database, "MOVIES")
            ]

        with DurabilityManager(DurabilityConfig(directory=directory, fsync="never")) as manager:
            recovered = manager.attach(database_for(engine))
            assert manager.recovered
            assert dump_records(recovered) == expected
            table = recovered.table("MOVIES")
            # restore() rebuilt the physical layer consistently: indexes
            # answer lookups, null tallies match a recount, and the
            # engine tag survived recovery.
            stats = table.stats()
            assert stats["engine"] == engine
            assert stats["rows"] == len(expected["MOVIES"])
            assert table.lookup(("id",), (900,))[0]["title"] == "Recovered"
            for attribute in table.relation.attributes:
                recount = sum(
                    1 for record in expected["MOVIES"] if record[attribute.name] is None
                )
                assert table.null_count(attribute.name) == recount
            # The connectivity tracker observes the restored table from
            # scratch — ranking over the recovered database matches the
            # pre-crash database exactly.
            ranking = [
                (t.row["id"], t.score) for t in rank_tuples(recovered, "MOVIES")
            ]
            assert ranking == expected_ranking

    @pytest.mark.parametrize("engine", ENGINES)
    def test_restore_resets_observer_counts(self, engine):
        database = database_for(engine)
        tracker = tracker_for(database)  # build before the restore
        baseline = [
            (t.row["id"], t.score) for t in rank_tuples(database, "MOVIES")
        ]
        table = database.table("MOVIES")
        table.restore(table.export_rows(), table.next_rowid)
        after = [(t.row["id"], t.score) for t in rank_tuples(database, "MOVIES")]
        assert after == baseline
        assert tracker is tracker_for(database)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_with_storage_round_trip(self, engine):
        source = movie_database()
        clone = source.with_storage(engine_config(engine))
        assert dump_records(clone) == dump_records(source)
        back = clone.with_storage(StorageConfig())
        assert dump_records(back) == dump_records(source)
        assert back.table("MOVIES").next_rowid == source.table("MOVIES").next_rowid


# ----------------------------------------------------------------------
# Column accessor + vectorized execution
# ----------------------------------------------------------------------


class TestColumnAccess:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_column_matches_row_values(self, engine):
        database = database_for(engine)
        table = database.table("MOVIES")
        assert table.column("title") == [row["title"] for row in table.rows()]
        assert table.column("YEAR") == [row["year"] for row in table.rows()]

    def test_columnar_arrays_only_on_columnar(self):
        assert database_for("rows").table("MOVIES").columnar_arrays() is None
        assert database_for("paged").table("MOVIES").columnar_arrays() is None
        arrays = database_for("columnar").table("MOVIES").columnar_arrays()
        assert set(arrays) == {"id", "title", "year"}


class TestVectorizedScans:
    QUERIES = [
        "select m.title from MOVIES m where m.year > 1990",
        "select m.title from MOVIES m where m.year > 1990 and m.title like '%a%'",
        "select m.title, m.year from MOVIES m where m.year between 1970 and 1999",
        "select upper(m.title) from MOVIES m where m.year is not null",
        "select m.title || ' (' || m.year || ')' from MOVIES m",
        "select m.title from MOVIES m where m.year in (1977, 1994, 2004)",
        "select m.title from MOVIES m where m.year + 1 >= 1995 or m.title = 'Seven'",
        "select m.title from MOVIES m where not (m.year < 1980)",
    ]

    def test_vectorized_results_match_the_row_path(self):
        oracle = Executor(database_for("rows"))
        subject = Executor(database_for("columnar"))
        for sql in self.QUERIES:
            assert rows_of(subject.execute_sql(sql)) == rows_of(
                oracle.execute_sql(sql)
            ), sql
        if subject.compiled:
            assert subject.vector_scans > 0

    def test_parameterised_variants_share_the_vector_plan(self):
        oracle = Executor(database_for("rows"))
        subject = Executor(database_for("columnar"))
        for year in (1960, 1980, 2000):
            for pattern in ("S%", "%e%"):
                sql = (
                    "select m.title from MOVIES m "
                    f"where m.year > {year} and m.title like '{pattern}'"
                )
                assert rows_of(subject.execute_sql(sql)) == rows_of(
                    oracle.execute_sql(sql)
                ), sql

    def test_short_circuit_error_semantics_are_preserved(self):
        # The row path short-circuits OR past the division for the
        # year-1977 row; the vector path evaluates both branches, hits
        # the zero divide, and must silently fall back — same rows out.
        sql = (
            "select m.title from MOVIES m "
            "where m.year = 1977 or 1 / (m.year - 1977) > 0"
        )
        oracle = Executor(database_for("rows"))
        subject = Executor(database_for("columnar"))
        assert rows_of(subject.execute_sql(sql)) == rows_of(oracle.execute_sql(sql))
        if subject.compiled:
            assert subject.vector_fallbacks > 0

    def test_errors_every_path_raises_stay_identical(self):
        sql = "select m.title from MOVIES m where 1 / (m.year - 1977) > 0"
        with pytest.raises(Exception) as oracle_error:
            Executor(database_for("rows")).execute_sql(sql)
        with pytest.raises(Exception) as subject_error:
            Executor(database_for("columnar")).execute_sql(sql)
        assert type(subject_error.value) is type(oracle_error.value)
        assert str(subject_error.value) == str(oracle_error.value)

    def test_dml_invalidates_vectorized_results(self):
        database = database_for("columnar")
        executor = Executor(database)
        sql = "select m.title from MOVIES m where m.year > 2003"
        before = rows_of(executor.execute_sql(sql))
        executor.execute_sql("insert into MOVIES values (901, 'Fresh', 2004)")
        after = rows_of(executor.execute_sql(sql))
        assert len(after) == len(before) + 1
        executor.execute_sql("delete from MOVIES where id = 901")
        assert rows_of(executor.execute_sql(sql)) == before


# ----------------------------------------------------------------------
# Columnar physical behaviour
# ----------------------------------------------------------------------


class TestColumnarCompaction:
    def test_tombstones_compact_and_order_survives(self):
        table = ColumnarStorage(movie_relation())
        for index in range(40):
            table.insert({"id": index, "title": f"T{index}", "year": 1990 + index % 10})
        for index in range(0, 40, 2):
            table.delete_rows([rowid for rowid, row in table.rows_with_ids() if row["id"] == index])
        assert [row["id"] for row in table.rows()] == list(range(1, 40, 2))
        table.columnar_arrays()  # always compacts before exposing arrays
        stats = table.stats()
        assert stats["dead_slots"] == 0
        assert stats["compactions"] >= 1


# ----------------------------------------------------------------------
# Cross-domain DML differential: every new domain, engines vs rows oracle
# ----------------------------------------------------------------------


#: Per-domain randomized DML: one mutable relation with an integer PK,
#: plus check queries spanning scans, filters and aggregates.  Insert
#: column orders match the domain schemas.
DOMAIN_DML = {
    "twitter": dict(
        insert=lambda i, rng: (
            f"insert into TWEET values ({i}, {rng.randint(1, 24)}, "
            f"'generated tweet {i}', {rng.randint(2006, 2009)}, {rng.randint(0, 500)})"
        ),
        update=lambda i, rng: f"update TWEET set likes = {rng.randint(0, 500)} where id = {i}",
        delete=lambda i, rng: f"delete from TWEET where id = {i}",
        checks=[
            "select t.id, t.body, t.likes from TWEET t",
            "select t.body from TWEET t where t.likes > 100",
            "select t.posted, count(*) from TWEET t group by t.posted",
        ],
    ),
    "twitch": dict(
        insert=lambda i, rng: (
            f"insert into STREAM values ({i}, {rng.randint(1, 12)}, "
            f"{rng.randint(1, 8)}, 'generated stream {i}', "
            f"{rng.randint(10, 9000)}, {rng.randint(2006, 2009)})"
        ),
        update=lambda i, rng: (
            f"update STREAM set viewers = {rng.randint(10, 9000)} where id = {i}"
        ),
        delete=lambda i, rng: f"delete from STREAM where id = {i}",
        checks=[
            "select t.id, t.title, t.viewers from STREAM t",
            "select t.title from STREAM t where t.viewers > 4000",
            "select t.aired, count(*) from STREAM t group by t.aired",
        ],
    ),
    "companies": dict(
        insert=lambda i, rng: (
            f"insert into EMPLOYEE values ({i}, {rng.randint(1, 20)}, "
            f"'Generated Hire {i}', 'engineer', {rng.randrange(30000, 160000, 500)}, "
            f"{rng.randint(1990, 2009)})"
        ),
        update=lambda i, rng: (
            f"update EMPLOYEE set salary = {rng.randrange(30000, 160000, 500)} "
            f"where id = {i}"
        ),
        delete=lambda i, rng: f"delete from EMPLOYEE where id = {i}",
        checks=[
            "select e.id, e.name, e.salary from EMPLOYEE e",
            "select e.name from EMPLOYEE e where e.salary > 100000",
            "select e.title, count(*) from EMPLOYEE e group by e.title",
        ],
    ),
    "gameofthrones": dict(
        insert=lambda i, rng: (
            f"insert into CHARACTER values ({i}, {rng.randint(1, 8)}, "
            f"'Generated Knight {i}', 'knight', {rng.randint(240, 290)})"
        ),
        update=lambda i, rng: (
            f"update CHARACTER set born = {rng.randint(240, 290)} where id = {i}"
        ),
        delete=lambda i, rng: f"delete from CHARACTER where id = {i}",
        checks=[
            "select c.id, c.name, c.born from CHARACTER c",
            "select c.name from CHARACTER c where c.born < 260",
            "select c.role, count(*) from CHARACTER c group by c.role",
        ],
    ),
}


class TestCrossDomainDml:
    """Randomized DML streams over each new domain, engines vs rows oracle."""

    @pytest.mark.parametrize("domain_name", sorted(DOMAIN_DML))
    @pytest.mark.parametrize("engine", ["paged", "columnar"])
    def test_interleaved_dml_stays_byte_identical(self, domain_name, engine):
        domain = get_domain(domain_name)
        dml = DOMAIN_DML[domain_name]
        rng = random.Random(f"{domain_name}-dml-0")
        oracle_db = domain.database(storage=StorageConfig(default_engine="rows"))
        subject_db = domain.database(storage=engine_config(engine))
        oracle = Executor(oracle_db)
        subject = Executor(subject_db)
        next_id = 10_000
        for step in range(120):
            roll = rng.random()
            if roll < 0.45:
                next_id += 1
                sql = dml["insert"](next_id, rng)
            elif roll < 0.70:
                sql = dml["update"](rng.randint(10_001, max(next_id, 10_001)), rng)
            elif roll < 0.85:
                sql = dml["delete"](rng.randint(10_001, max(next_id, 10_001)), rng)
            else:
                sql = rng.choice(dml["checks"])
            # The same RNG must drive both sides, so build sql once above.
            a = oracle.execute_sql(sql)
            b = subject.execute_sql(sql)
            if hasattr(a, "rows"):
                assert rows_of(b) == rows_of(a), (domain_name, engine, step, sql)
            else:
                assert b.affected_rows == a.affected_rows, (domain_name, engine, step, sql)
        assert dump_records(subject_db) == dump_records(oracle_db)
        for sql in dml["checks"]:
            assert rows_of(subject.execute_sql(sql)) == rows_of(oracle.execute_sql(sql))
