"""Tests for the schema graph (Figure 1) and its traversal."""

import pytest

from repro.datasets import library_schema, movie_schema
from repro.errors import UnknownNodeError
from repro.graph import (
    PatternKind,
    SchemaGraph,
    detect_join_patterns,
    dfs_traversal,
)


@pytest.fixture(scope="module")
def graph() -> SchemaGraph:
    return SchemaGraph(movie_schema())


class TestGraphStructure:
    def test_one_relation_node_per_relation(self, graph):
        assert len(graph.relation_nodes) == 6

    def test_one_projection_edge_per_attribute(self, graph):
        assert len(graph.projection_edges) == len(graph.attribute_nodes) == 16

    def test_one_join_edge_per_foreign_key(self, graph):
        assert len(graph.join_edges) == 5

    def test_projection_edges_of_relation(self, graph):
        names = {e.attribute_name for e in graph.projection_edges_of("MOVIES")}
        assert names == {"id", "title", "year"}

    def test_join_edges_between(self, graph):
        assert len(graph.join_edges_between("CAST", "MOVIES")) == 1
        assert len(graph.join_edges_between("MOVIES", "DIRECTOR")) == 0

    def test_neighbours(self, graph):
        assert set(graph.neighbours("MOVIES")) == {"DIRECTED", "CAST", "GENRE"}
        assert graph.neighbours("ACTOR") == ("CAST",)

    def test_degree(self, graph):
        assert graph.degree("MOVIES") == 3
        assert graph.degree("DIRECTOR") == 1

    def test_attribute_node_lookup(self, graph):
        node = graph.attribute_node("MOVIES", "title")
        assert node.is_heading and node.key == "MOVIES.title"

    def test_unknown_attribute_node(self, graph):
        with pytest.raises(Exception):
            graph.attribute_node("MOVIES", "missing")

    def test_central_relation_is_movies(self, graph):
        assert graph.central_relation().name == "MOVIES"

    def test_is_connected(self, graph):
        assert graph.is_connected()
        assert graph.is_connected(["MOVIES", "CAST", "ACTOR"])
        assert not graph.is_connected(["ACTOR", "DIRECTOR"])

    def test_shortest_path_via_bridge(self, graph):
        assert graph.shortest_path("DIRECTOR", "MOVIES") == ("DIRECTOR", "DIRECTED", "MOVIES")
        assert graph.shortest_path("ACTOR", "DIRECTOR") == (
            "ACTOR", "CAST", "MOVIES", "DIRECTED", "DIRECTOR",
        )

    def test_shortest_path_same_relation(self, graph):
        assert graph.shortest_path("MOVIES", "MOVIES") == ("MOVIES",)

    def test_shortest_path_disconnected(self):
        from repro.catalog import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("A").column("id", "integer", primary_key=True).done()
            .relation("B").column("id", "integer", primary_key=True).done()
            .build()
        )
        assert SchemaGraph(schema).shortest_path("A", "B") == ()

    def test_subgraph(self, graph):
        sub = graph.subgraph(["MOVIES", "CAST", "ACTOR"])
        assert len(sub.relation_nodes) == 3
        assert len(sub.join_edges) == 2

    def test_to_dot_mentions_all_relations(self, graph):
        dot = graph.to_dot()
        for name in ("MOVIES", "DIRECTOR", "ACTOR", "CAST", "GENRE", "DIRECTED"):
            assert name in dot
        assert dot.startswith("digraph")

    def test_summary(self, graph):
        assert "6 relation" in graph.summary()


class TestTraversal:
    def test_default_start_is_central_relation(self, graph):
        traversal = dfs_traversal(graph)
        assert traversal.order[0] == "MOVIES"

    def test_covers_every_relation(self, graph):
        traversal = dfs_traversal(graph)
        assert set(traversal.order) == set(movie_schema().relation_names)

    def test_restricted_traversal(self, graph):
        traversal = dfs_traversal(graph, start="DIRECTOR", restrict_to=["DIRECTOR", "DIRECTED", "MOVIES"])
        assert set(traversal.order) == {"DIRECTOR", "DIRECTED", "MOVIES"}

    def test_parent_child_relationships(self, graph):
        traversal = dfs_traversal(graph, start="MOVIES")
        assert traversal.parent_of("MOVIES") is None
        assert traversal.parent_of("GENRE") == "MOVIES"

    def test_split_pattern_detected_at_movies(self, graph):
        traversal = dfs_traversal(graph, start="MOVIES")
        split_centers = [p.center for p in traversal.patterns if p.kind is PatternKind.SPLIT]
        assert "MOVIES" in split_centers

    def test_unary_pattern_detected_on_chains(self, graph):
        traversal = dfs_traversal(graph, start="ACTOR", restrict_to=["ACTOR", "CAST", "MOVIES"])
        kinds = {p.kind for p in traversal.patterns}
        assert kinds == {PatternKind.UNARY}

    def test_join_pattern_detection_over_subset(self, graph):
        patterns = detect_join_patterns(graph, ["CAST", "MOVIES", "ACTOR"])
        centers = [p.center for p in patterns]
        assert "CAST" in centers

    def test_disconnected_subset_gets_extra_roots(self, graph):
        traversal = dfs_traversal(graph, start="ACTOR", restrict_to=["ACTOR", "DIRECTOR"])
        assert set(traversal.order) == {"ACTOR", "DIRECTOR"}

    def test_library_schema_graph_builds(self):
        graph = SchemaGraph(library_schema())
        assert graph.central_relation().name in ("COLLECTION", "ITEM", "AUTHOR")
        assert dfs_traversal(graph).order
