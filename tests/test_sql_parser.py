"""Tests for the SQL parser."""

import pytest

from repro.datasets import PAPER_QUERIES
from repro.errors import SqlParseError
from repro.sql import ast
from repro.sql.parser import parse_select, parse_sql


class TestSelectBasics:
    def test_select_list_aliases(self):
        query = parse_select("select m.title as t, m.year y from MOVIES m")
        assert query.select_items[0].alias == "t"
        assert query.select_items[1].alias == "y"

    def test_from_aliases(self):
        query = parse_select("select * from MOVIES m, CAST c")
        assert [t.binding for t in query.from_tables] == ["m", "c"]

    def test_distinct(self):
        assert parse_select("select distinct title from MOVIES").distinct

    def test_star_and_qualified_star(self):
        query = parse_select("select *, m.* from MOVIES m")
        assert isinstance(query.select_items[0].expression, ast.Star)
        assert query.select_items[1].expression.table == "m"

    def test_group_by_having(self):
        query = parse_select(
            "select year, count(*) from MOVIES group by year having count(*) > 1"
        )
        assert len(query.group_by) == 1
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse_select("select title from MOVIES order by year desc, title")
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_limit_offset(self):
        query = parse_select("select title from MOVIES limit 5 offset 2")
        assert query.limit == 5
        assert query.offset == 2

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse_select("select title from MOVIES limit 'x'")

    def test_explicit_join_normalised(self):
        query = parse_select(
            "select m.title from MOVIES m join CAST c on m.id = c.mid"
        )
        assert len(query.from_tables) == 2
        assert any(
            isinstance(c, ast.BinaryOp) and c.op == "="
            for c in ast.conjuncts(query.where)
        )


class TestExpressions:
    def test_operator_precedence_and_or(self):
        query = parse_select("select * from R where a = 1 or b = 2 and c = 3")
        assert isinstance(query.where, ast.BinaryOp)
        assert query.where.op == "OR"

    def test_arithmetic_precedence(self):
        query = parse_select("select * from R where a = 1 + 2 * 3")
        comparison = query.where
        addition = comparison.right
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_not_exists(self):
        query = parse_select("select * from R where not exists (select * from S)")
        conjunct = ast.conjuncts(query.where)[0]
        assert isinstance(conjunct, ast.Exists) and conjunct.negated

    def test_in_list_and_subquery(self):
        in_list = parse_select("select * from R where a in (1, 2, 3)").where
        assert isinstance(in_list, ast.InList)
        in_sub = parse_select("select * from R where a in (select b from S)").where
        assert isinstance(in_sub, ast.InSubquery)

    def test_not_in(self):
        query = parse_select("select * from R where a not in (1, 2)")
        assert query.where.negated is True

    def test_between(self):
        query = parse_select("select * from R where a between 1 and 5")
        assert isinstance(query.where, ast.Between)

    def test_like(self):
        query = parse_select("select * from R where name like 'Brad%'")
        assert query.where.op == "LIKE"

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_select("select * from R where a is null").where, ast.IsNull)
        assert parse_select("select * from R where a is not null").where.negated

    def test_quantified_all(self):
        query = parse_select("select * from R where a <= all (select b from S)")
        where = query.where
        assert isinstance(where, ast.QuantifiedComparison)
        assert where.quantifier == "ALL"
        assert where.op == "<="

    def test_quantified_any_and_some(self):
        any_query = parse_select("select * from R where a = any (select b from S)").where
        some_query = parse_select("select * from R where a = some (select b from S)").where
        assert any_query.quantifier == "ANY"
        assert some_query.quantifier == "ANY"

    def test_scalar_subquery_comparison(self):
        query = parse_select(
            "select * from R where 1 < (select count(*) from S)"
        )
        assert isinstance(query.where.right, ast.ScalarSubquery)

    def test_count_distinct(self):
        query = parse_select("select count(distinct year) from MOVIES")
        call = query.select_items[0].expression
        assert call.name == "COUNT" and call.distinct

    def test_count_star(self):
        call = parse_select("select count(*) from MOVIES").select_items[0].expression
        assert isinstance(call.args[0], ast.Star)

    def test_case_expression(self):
        query = parse_select(
            "select case when year > 2000 then 'new' else 'old' end from MOVIES"
        )
        assert isinstance(query.select_items[0].expression, ast.CaseExpression)

    def test_case_requires_when(self):
        with pytest.raises(SqlParseError):
            parse_select("select case end from MOVIES")

    def test_unary_minus_folds_into_literal(self):
        query = parse_select("select * from R where a = -5")
        assert query.where.right.value == -5

    def test_neq_normalised(self):
        query = parse_select("select * from R where a != 1")
        assert query.where.op == "<>"

    def test_string_concat(self):
        query = parse_select("select a || b from R")
        assert query.select_items[0].expression.op == "||"


class TestOtherStatements:
    def test_insert(self):
        statement = parse_sql(
            "insert into MOVIES (id, title) values (1, 'A'), (2, 'B')"
        )
        assert isinstance(statement, ast.InsertStatement)
        assert len(statement.rows) == 2

    def test_update(self):
        statement = parse_sql("update MOVIES set year = 2001 where id = 1")
        assert isinstance(statement, ast.UpdateStatement)
        assert statement.assignments[0][0] == "year"

    def test_delete(self):
        statement = parse_sql("delete from MOVIES where year < 1980")
        assert isinstance(statement, ast.DeleteStatement)

    def test_create_view(self):
        statement = parse_sql("create view recent as select title from MOVIES where year > 2000")
        assert isinstance(statement, ast.CreateViewStatement)
        assert statement.name == "recent"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("select * from R garbage garbage garbage)")

    def test_semicolon_accepted(self):
        assert parse_sql("select title from MOVIES;")

    def test_parse_select_rejects_dml(self):
        with pytest.raises(SqlParseError):
            parse_select("delete from MOVIES")


class TestPaperQueries:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_every_paper_query_parses(self, name):
        statement = parse_select(PAPER_QUERIES[name])
        assert isinstance(statement, ast.SelectStatement)

    def test_q5_is_doubly_nested(self):
        statement = parse_select(PAPER_QUERIES["Q5"])
        assert statement.is_nested()
        inner = statement.subqueries()[0]
        assert inner.is_nested()

    def test_q7_has_aggregates_and_group_by(self):
        statement = parse_select(PAPER_QUERIES["Q7"])
        assert statement.has_aggregates()
        assert len(statement.group_by) == 2

    def test_q3_has_five_tables(self):
        statement = parse_select(PAPER_QUERIES["Q3"])
        assert len(statement.from_tables) == 5
