"""Tests for query rewriting and idiom detection."""

import pytest

from repro.datasets import PAPER_QUERIES, movie_database, movie_schema
from repro.engine import Executor
from repro.rewrite import (
    can_flatten_subquery,
    detect_count_comparison,
    detect_division,
    detect_same_value_idiom,
    detect_superlative,
    flatten_in_subqueries,
)
from repro.sql import parse_select, to_sql


class TestUnnesting:
    def test_q5_flattens_to_three_table_join(self):
        result = flatten_in_subqueries(parse_select(PAPER_QUERIES["Q5"]))
        assert result.changed
        assert len(result.statement.from_tables) == 3
        assert not result.statement.is_nested()

    def test_flattened_sql_is_equivalent(self):
        executor = Executor(movie_database())
        original = executor.execute_sql(PAPER_QUERIES["Q5"]).to_tuples()
        flattened = flatten_in_subqueries(parse_select(PAPER_QUERIES["Q5"]))
        rewritten = executor.execute_select(flattened.statement).to_tuples()
        assert sorted(original) == sorted(rewritten)

    def test_alias_collision_renamed(self):
        sql = (
            "select m.title from MOVIES m where m.id in"
            " (select m.mid from CAST m where m.role = 'Achilles')"
        )
        result = flatten_in_subqueries(parse_select(sql))
        assert result.changed
        bindings = [t.binding for t in result.statement.from_tables]
        assert len(bindings) == len(set(bindings)) == 2

    def test_negated_in_not_flattened(self):
        sql = "select m.title from MOVIES m where m.id not in (select g.mid from GENRE g)"
        assert not flatten_in_subqueries(parse_select(sql)).changed

    def test_aggregate_subquery_not_flattened(self):
        sql = (
            "select m.title from MOVIES m where m.id in"
            " (select g.mid from GENRE g group by g.mid having count(*) > 1)"
        )
        assert not flatten_in_subqueries(parse_select(sql)).changed

    def test_unchanged_statement_returned_as_is(self):
        statement = parse_select(PAPER_QUERIES["Q1"])
        result = flatten_in_subqueries(statement)
        assert not result.changed and result.statement is statement

    def test_can_flatten_subquery_rules(self):
        ok = parse_select("select c.mid from CAST c where c.role = 'x'")
        assert can_flatten_subquery(ok)
        assert not can_flatten_subquery(parse_select("select distinct c.mid from CAST c"))
        assert not can_flatten_subquery(parse_select("select c.mid, c.aid from CAST c"))
        assert not can_flatten_subquery(parse_select("select count(*) from CAST c"))
        assert not can_flatten_subquery(
            parse_select("select c.mid from CAST c where exists (select * from GENRE g)")
        )

    def test_flattened_output_is_parseable_sql(self):
        result = flatten_in_subqueries(parse_select(PAPER_QUERIES["Q5"]))
        assert parse_select(to_sql(result.statement)) == result.statement


class TestDivision:
    def test_q6_detected(self):
        pattern = detect_division(parse_select(PAPER_QUERIES["Q6"]))
        assert pattern is not None
        assert pattern.outer_binding == "m"
        assert pattern.divisor_relation == "GENRE"
        assert pattern.divided_attribute == "genre"
        assert pattern.is_total

    def test_restricted_divisor_conditions_reported(self):
        sql = """
            select m.title from MOVIES m
            where not exists (
                select * from GENRE g1 where g1.genre <> 'documentary'
                and not exists (
                    select * from GENRE g2
                    where g2.mid = m.id and g2.genre = g1.genre))
        """
        pattern = detect_division(parse_select(sql))
        assert pattern is not None and not pattern.is_total

    def test_single_not_exists_is_not_division(self):
        sql = (
            "select m.title from MOVIES m where not exists"
            " (select * from GENRE g where g.mid = m.id)"
        )
        assert detect_division(parse_select(sql)) is None

    def test_different_inner_relation_is_not_division(self):
        sql = """
            select m.title from MOVIES m
            where not exists (
                select * from GENRE g1 where not exists (
                    select * from CAST c where c.mid = m.id))
        """
        assert detect_division(parse_select(sql)) is None

    def test_missing_outer_correlation_is_not_division(self):
        sql = """
            select m.title from MOVIES m
            where not exists (
                select * from GENRE g1 where not exists (
                    select * from GENRE g2 where g2.genre = g1.genre))
        """
        assert detect_division(parse_select(sql)) is None


class TestSuperlative:
    def test_q9_detected_as_earliest_with_repetition(self):
        idiom = detect_superlative(parse_select(PAPER_QUERIES["Q9"]))
        assert idiom is not None
        assert idiom.superlative == "earliest"
        assert idiom.repeated_relation == "MOVIES"
        assert idiom.repeated_attribute == "title"

    def test_greater_equal_all_is_latest_for_temporal(self):
        sql = "select m.title from MOVIES m where m.year >= all (select m2.year from MOVIES m2)"
        assert detect_superlative(parse_select(sql)).superlative == "latest"

    def test_non_temporal_attribute_uses_smallest_largest(self):
        sql = "select e.name from EMP e where e.sal <= all (select e2.sal from EMP e2)"
        assert detect_superlative(parse_select(sql)).superlative == "smallest"

    def test_any_quantifier_not_detected(self):
        sql = "select m.title from MOVIES m where m.year <= any (select m2.year from MOVIES m2)"
        assert detect_superlative(parse_select(sql)) is None

    def test_no_repetition_without_self_join(self):
        sql = "select m.title from MOVIES m where m.year <= all (select m2.year from MOVIES m2)"
        idiom = detect_superlative(parse_select(sql))
        assert idiom.repeated_relation is None


class TestAggregateIdioms:
    def test_q8_same_value_idiom(self):
        idiom = detect_same_value_idiom(parse_select(PAPER_QUERIES["Q8"]))
        assert idiom is not None
        assert idiom.attribute.column == "year"

    def test_count_distinct_not_equal_one_not_detected(self):
        sql = (
            "select c.aid from CAST c, MOVIES m where m.id = c.mid"
            " group by c.aid having count(distinct m.year) > 1"
        )
        assert detect_same_value_idiom(parse_select(sql)) is None

    def test_q7_correlated_count_comparison(self):
        idiom = detect_count_comparison(parse_select(PAPER_QUERIES["Q7"]))
        assert idiom is not None
        assert idiom.correlated and idiom.counted_relation == "GENRE"
        assert idiom.direction == "more" and idiom.threshold == 1

    def test_plain_count_comparison_directions(self):
        more = detect_count_comparison(
            parse_select("select g.mid from GENRE g group by g.mid having count(*) > 2")
        )
        fewer = detect_count_comparison(
            parse_select("select g.mid from GENRE g group by g.mid having count(*) < 2")
        )
        exact = detect_count_comparison(
            parse_select("select g.mid from GENRE g group by g.mid having count(*) = 2")
        )
        assert more.direction == "more" and not more.correlated
        assert fewer.direction == "fewer"
        assert exact.direction == "exactly"

    def test_no_having_no_idiom(self):
        assert detect_count_comparison(parse_select(PAPER_QUERIES["Q1"])) is None
