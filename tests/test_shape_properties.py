"""Property-based fuzzing of the SQL shape machinery (``repro.sql.shape``).

The shard router, the batch grouper and the parameterised-plan cache all
assume two invariants of the masker:

* ``reconstruct_sql(*sql_shape(q))`` is *shape-faithful*: the rebuilt
  text lexes back to the same shape with the same literals (whitespace
  may differ, meaning may not);
* ``shape_hash``/``batch_key`` are invariant under literal rotation:
  swapping every literal for a different value never changes the key, so
  one compiled plan genuinely serves the whole literal family.

These are fuzzed here over randomly composed SELECTs rather than the
handful of fixtures the unit tests use.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.shape import (
    batch_key,
    reconstruct_sql,
    shape_hash,
    sql_shape,
    stable_hash,
)

# ---------------------------------------------------------------------------
# Strategies: small well-formed SELECTs with controllable literals
# ---------------------------------------------------------------------------

_columns = st.sampled_from(["m.id", "m.title", "m.year", "d.name", "a.country"])
_int_literals = st.integers(min_value=-9999, max_value=9999)
# String literal bodies, including embedded single quotes (the masker must
# handle the '' escape) and SQL keywords hiding inside strings.
_str_literals = st.text(
    alphabet=string.ascii_letters + string.digits + " '.,-", min_size=0, max_size=16
)


def _quote(body: str) -> str:
    return "'" + body.replace("'", "''") + "'"


_comparison = st.builds(
    lambda column, op, literal: f"{column} {op} "
    + (literal if isinstance(literal, str) else str(literal)),
    _columns,
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.one_of(_int_literals.map(str), _str_literals.map(_quote)),
)

_select_texts = st.builds(
    lambda cols, comparisons, distinct, limit: (
        "select "
        + ("distinct " if distinct else "")
        + ", ".join(dict.fromkeys(cols))
        + " from MOVIES m, DIRECTOR d where "
        + " and ".join(comparisons)
        + (f" limit {limit}" if limit else "")
    ),
    st.lists(_columns, min_size=1, max_size=4),
    st.lists(_comparison, min_size=1, max_size=4),
    st.booleans(),
    st.integers(min_value=0, max_value=50),
)


# ---------------------------------------------------------------------------
# Round-trip: reconstruct_sql(sql_shape(q)) is shape-faithful
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_select_texts)
    def test_reconstruct_lexes_to_same_shape_and_literals(self, sql):
        shaped = sql_shape(sql)
        assert shaped is not None, sql
        shape, literals = shaped
        rebuilt = reconstruct_sql(shape, literals)
        reshaped = sql_shape(rebuilt)
        assert reshaped is not None, rebuilt
        assert reshaped[0] == shape
        assert list(reshaped[1]) == list(literals)

    @settings(max_examples=200, deadline=None)
    @given(_select_texts)
    def test_reconstruct_is_idempotent(self, sql):
        shape, literals = sql_shape(sql)
        once = reconstruct_sql(shape, literals)
        again = reconstruct_sql(*sql_shape(once))
        assert once == again

    @settings(max_examples=100, deadline=None)
    @given(_str_literals)
    def test_string_literals_survive_masking_exactly(self, body):
        sql = f"select m.title from MOVIES m where m.title = {_quote(body)}"
        shape, literals = sql_shape(sql)
        assert list(literals) == [body]
        reshaped = sql_shape(reconstruct_sql(shape, literals))
        assert list(reshaped[1]) == [body]


# ---------------------------------------------------------------------------
# Literal rotation: the shape key must not move
# ---------------------------------------------------------------------------


class TestLiteralRotation:
    @settings(max_examples=200, deadline=None)
    @given(
        _select_texts,
        # Rotation values must themselves be lexer-producible literals:
        # a negative number is operator + literal at the token level, so
        # extracted literals are never negative.
        st.lists(st.integers(min_value=0, max_value=9999), min_size=8, max_size=8),
        st.lists(_str_literals, min_size=8, max_size=8),
    )
    def test_shape_hash_invariant_under_literal_rotation(self, sql, ints, strings):
        shape, literals = sql_shape(sql)
        rotated = []
        int_pool, str_pool = iter(ints), iter(strings)
        for literal in literals:
            if isinstance(literal, str):
                rotated.append(next(str_pool, literal + "x"))
            else:
                rotated.append(next(int_pool, 0))
        # shape_hash keys on the masked TEXT (case and spacing preserved),
        # so the invariant is stated between two renderings that differ
        # only in their literal spans.
        original = reconstruct_sql(shape, literals)
        variant = reconstruct_sql(shape, rotated)
        assert shape_hash(variant) == shape_hash(original)
        assert batch_key(variant) == batch_key(original)
        assert sql_shape(variant)[0] == shape

    @settings(max_examples=100, deadline=None)
    @given(_select_texts)
    def test_shape_hash_agrees_with_sql_shape_equality(self, sql):
        shape, literals = sql_shape(sql)
        zeroed = [0 if not isinstance(l, str) else "" for l in literals]
        variant = reconstruct_sql(shape, zeroed)
        assert sql_shape(variant)[0] == shape
        assert shape_hash(variant) == shape_hash(reconstruct_sql(shape, literals))

    def test_number_and_string_literals_are_different_shapes(self):
        # Regression: the masker used one placeholder for both literal
        # kinds, so `x = 0` and `x = '0'` were mask-equal — the shape
        # cache and the service's batch grouping then served one kind's
        # compiled plans for the other.  Found by the fuzzer above.
        numeric = "select m.title from MOVIES m where m.title = 0"
        stringy = "select m.title from MOVIES m where m.title = '0'"
        assert batch_key(numeric) != batch_key(stringy)
        assert shape_hash(numeric) != shape_hash(stringy)
        assert sql_shape(numeric)[0] != sql_shape(stringy)[0]
        # Whichever text is seen first must not poison the other's shape.
        assert list(sql_shape(numeric)[1]) == [0]
        assert list(sql_shape(stringy)[1]) == ["0"]


# ---------------------------------------------------------------------------
# Process stability: the hashes are pure functions of the text
# ---------------------------------------------------------------------------


class TestStableHash:
    def test_pinned_values(self):
        # These constants pin the current on-the-wire formats: the shard
        # ring places shapes by them, so an accidental drift would
        # silently re-home every shape after an upgrade.  (A deliberate
        # mask-format change — like the kind-distinct placeholders — is
        # allowed to move shape_hash, and must update the pin here.)
        assert stable_hash("select 1") == 17825029987835142814
        assert (
            shape_hash("select m.title from MOVIES m where m.year = 2005")
            == 1643519951519591251
        )

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=64))
    def test_stable_hash_is_64_bit(self, text):
        value = stable_hash(text)
        assert 0 <= value < 2**64

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=64))
    def test_stable_hash_deterministic_within_process(self, text):
        assert stable_hash(text) == stable_hash(text)
