"""Tests for the compiled execution pipeline.

Three concerns: (1) compiled expression evaluation matches the
interpreted evaluator exactly, including SQL three-valued logic and
error cases; (2) the compiled executor returns identical results to the
fully-interpreted one on the paper queries and the generated workload;
(3) every cache layer is actually used and is invalidated by DML.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import PAPER_QUERIES, generate_workload, movie_database
from repro.engine import Executor, ExpressionCompiler, ExpressionEvaluator
from repro.engine.plan import ScanNode, plan_query
from repro.errors import EvaluationError
from repro.sql.parser import parse_select
from repro.storage.row import Row


def interpreted(database) -> Executor:
    return Executor(database, compiled=False, use_caches=False, index_scans=False)


@pytest.fixture()
def db():
    return movie_database()


# ---------------------------------------------------------------------------
# Expression-level equivalence
# ---------------------------------------------------------------------------


def eval_both(sql_expr: str, row: Row):
    statement = parse_select(f"select {sql_expr}")
    expression = statement.select_items[0].expression
    compiled = ExpressionCompiler().compile(expression)
    evaluator = ExpressionEvaluator()
    return compiled(row), evaluator.evaluate(expression, row)


EXPRESSIONS = [
    "1 + 2 * 3",
    "10 / 4",
    "10 / 5",
    "9 % 4",
    "'a' || 'b'",
    "-x",
    "x + y",
    "x = 5",
    "x < y",
    "x <> 12",
    "name like 'B%'",
    "name like '_rad%'",
    "name not like 'Z%'",
    "x between 1 and 10",
    "x not between 6 and 10",
    "x in (1, 5, 9)",
    "x not in (1, 2)",
    "missing is null",
    "missing is not null",
    "x is null",
    "not (x = 5)",
    "x = 5 and y = 12",
    "x = 5 or y = 0",
    "lower(name)",
    "upper(name)",
    "length(name)",
    "abs(-7)",
    "coalesce(missing, x)",
    "case when x > 3 then 'big' else 'small' end",
    "case when x > 99 then 'big' end",
]


@pytest.mark.parametrize("expr", EXPRESSIONS)
def test_compiled_matches_interpreted_on_expressions(expr):
    row = Row({"x": 5, "y": 12, "name": "Brad", "missing": None})
    compiled_value, interpreted_value = eval_both(expr, row)
    assert compiled_value == interpreted_value
    assert (compiled_value is None) == (interpreted_value is None)


NULL_EXPRESSIONS = [
    "missing = 5",
    "missing < 5",
    "missing like 'a%'",
    "missing between 1 and 2",
    "missing in (1, 2)",
    "x in (1, missing)",
    "missing + 1",
    "not missing",
    "-missing",
    "missing and x = 5",
    "x = 5 and missing",
    "missing or x = 99",
]


@pytest.mark.parametrize("expr", NULL_EXPRESSIONS)
def test_three_valued_logic_matches(expr):
    row = Row({"x": 5, "missing": None})
    compiled_value, interpreted_value = eval_both(expr, row)
    assert compiled_value is None and interpreted_value is None


def test_compiled_column_slot_survives_shape_change():
    statement = parse_select("select title")
    expression = statement.select_items[0].expression
    fn = ExpressionCompiler().compile(expression)
    assert fn(Row({"m.title": "Troy"})) == "Troy"
    # Different shape, same unqualified reference: the cached slot must
    # not leak across shapes.
    assert fn(Row({"b.title": "Seven", "b.year": 1995})) == "Seven"
    assert fn(Row({"m.title": "Troy"})) == "Troy"


def test_compiled_ambiguous_column_raises():
    statement = parse_select("select title")
    fn = ExpressionCompiler().compile(statement.select_items[0].expression)
    with pytest.raises(EvaluationError, match="ambiguous"):
        fn(Row({"m.title": "Troy", "d.title": "Other"}))


def test_compiled_unknown_column_raises():
    statement = parse_select("select m.nope")
    fn = ExpressionCompiler().compile(statement.select_items[0].expression)
    with pytest.raises(EvaluationError, match="unknown column"):
        fn(Row({"m.title": "Troy"}))


def test_compiled_division_by_zero_raises():
    statement = parse_select("select 1 / 0")
    fn = ExpressionCompiler().compile(statement.select_items[0].expression)
    with pytest.raises(EvaluationError, match="division by zero"):
        fn(Row({}))


def test_untaken_case_branch_never_raises():
    # Unknown functions must fail at evaluation, not compilation, and only
    # when the branch is actually taken — exactly like the interpreter.
    statement = parse_select("select case when 1 = 2 then nosuchfn(1) else 7 end")
    fn = ExpressionCompiler().compile(statement.select_items[0].expression)
    assert fn(Row({})) == 7


_PROPERTY_EXPRESSIONS = [
    "x + y * 2",
    "x = y",
    "x < y or y is null",
    "x between y and 100",
    "x in (0, 1, y)",
    "case when x > y then x else y end",
    "coalesce(x, y, 0)",
    "not (x <> y)",
]


@given(
    x=st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
    y=st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
)
def test_property_compiled_matches_interpreted_on_random_rows(x, y):
    row = Row({"x": x, "y": y})
    compiler = ExpressionCompiler()
    evaluator = ExpressionEvaluator()
    for text in _PROPERTY_EXPRESSIONS:
        expression = parse_select(f"select {text}").select_items[0].expression
        compiled_value = compiler.compile(expression)(row)
        interpreted_value = evaluator.evaluate(expression, row)
        assert compiled_value == interpreted_value, text
        assert (compiled_value is None) == (interpreted_value is None), text


# ---------------------------------------------------------------------------
# Executor-level equivalence (paper queries + generated workload)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
def test_paper_queries_identical_compiled_vs_interpreted(db, name):
    fast = Executor(db)
    slow = interpreted(db)
    a = fast.execute_sql(PAPER_QUERIES[name])
    b = slow.execute_sql(PAPER_QUERIES[name])
    assert a.columns == b.columns
    assert a.rows == b.rows


def test_generated_workload_identical_compiled_vs_interpreted(db):
    fast = Executor(db)
    slow = interpreted(db)
    for query in generate_workload(queries_per_category=10, seed=42):
        a = fast.execute_sql(query.sql)
        b = slow.execute_sql(query.sql)
        assert a.columns == b.columns, query.name
        assert a.rows == b.rows, query.name


def test_repeated_execution_is_stable(db):
    executor = Executor(db)
    first = executor.execute_sql(PAPER_QUERIES["Q5"])
    second = executor.execute_sql(PAPER_QUERIES["Q5"])
    assert first.rows == second.rows


# ---------------------------------------------------------------------------
# Index-backed scans
# ---------------------------------------------------------------------------


def test_planner_pushes_equality_into_scan():
    plan = plan_query(parse_select("select m.title from MOVIES m where m.year = 2004"))

    def scans(node):
        if isinstance(node, ScanNode):
            yield node
        for child in node.children():
            yield from scans(child)

    scan = next(iter(scans(plan.root)))
    assert scan.eq_columns == ("year",)
    assert "IndexScan" in plan.explain()


def test_planner_keeps_inequality_as_filter():
    plan = plan_query(parse_select("select m.title from MOVIES m where m.year > 2004"))
    assert "Filter(m.year > 2004)" in plan.explain()
    assert "IndexScan" not in plan.explain()


def test_index_scan_creates_index_and_matches_full_scan(db):
    # Explicit index_scans: the assertion is about index creation, so it
    # must keep probing indexes under REPRO_ORACLE's flipped defaults.
    executor = Executor(db, compiled=True, use_caches=True, index_scans=True)
    sql = "select m.title from MOVIES m where m.year = 2004"
    result = executor.execute_sql(sql)
    assert executor.database.table("MOVIES").find_index(("year",)) is not None
    assert result.rows == interpreted(db).execute_sql(sql).rows


def test_equality_with_null_literal_matches_nothing(db):
    sql = "select m.title from MOVIES m where m.year = NULL"
    assert Executor(db).execute_sql(sql).rows == []
    assert interpreted(db).execute_sql(sql).rows == []


def test_correlated_equality_uses_index(db):
    sql = (
        "select m.title from MOVIES m where exists ("
        "select * from GENRE g where g.mid = m.id and g.genre = 'action')"
    )
    a = Executor(db).execute_sql(sql)
    b = interpreted(db).execute_sql(sql)
    assert a.rows == b.rows


# ---------------------------------------------------------------------------
# Caches: usage and invalidation
# ---------------------------------------------------------------------------


def test_subquery_memo_is_used(db):
    # Explicit use_caches: the assertion is about the memo itself, so it
    # must keep caching under REPRO_ORACLE's flipped defaults.
    executor = Executor(db, compiled=True, use_caches=True, index_scans=True)
    executor.execute_sql(PAPER_QUERIES["Q5"])
    assert executor.subquery_hits > 0


def test_plan_cache_hit_on_repeat(db):
    # The assertion is about the per-text parse/plan caches, so the
    # shape-shared path (which would serve the repeat without touching
    # either) is explicitly disabled.
    executor = Executor(
        db, compiled=True, use_caches=True, index_scans=True, parameterised=False
    )
    executor.execute_sql(PAPER_QUERIES["Q1"])
    executor.execute_sql(PAPER_QUERIES["Q1"])
    assert executor.cache_stats["plan"]["hits"] > 0
    assert executor.cache_stats["parse"]["hits"] > 0


def test_shape_cache_hit_on_repeat(db):
    # Explicit parameterised: the assertion is about the shape cache, so
    # it must keep sharing under REPRO_ORACLE's flipped defaults.
    executor = Executor(
        db, compiled=True, use_caches=True, index_scans=True, parameterised=True
    )
    executor.execute_sql(PAPER_QUERIES["Q1"])
    executor.execute_sql(PAPER_QUERIES["Q1"])
    stats = executor.cache_stats["shape_plans"]
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_insert_through_executor_invalidates_caches(db):
    executor = Executor(db)
    before = executor.execute_sql("select m.title from MOVIES m where m.year = 1899")
    assert before.row_count == 0
    executor.execute_sql(
        "insert into MOVIES (id, title, year) values (999, 'Cache Buster', 1899)"
    )
    after = executor.execute_sql("select m.title from MOVIES m where m.year = 1899")
    assert after.column("m.title") == ["Cache Buster"]


def test_update_through_executor_invalidates_subquery_memo(db):
    executor = Executor(db)
    sql = (
        "select g.genre from GENRE g where g.mid in "
        "(select m.id from MOVIES m where m.year = 1888)"
    )
    assert executor.execute_sql(sql).row_count == 0
    executor.execute_sql("update MOVIES set year = 1888 where id = 1")
    assert executor.execute_sql(sql).row_count == 2  # Match Point's two genres


def test_delete_through_executor_invalidates_caches(db):
    executor = Executor(db)
    before = executor.execute_sql("select c.role from CAST c").row_count
    assert before > 0
    executor.execute_sql("delete from CAST")
    assert executor.execute_sql("select c.role from CAST c").row_count == 0


def test_direct_storage_mutation_is_seen_via_data_version(db):
    executor = Executor(db)
    before = executor.execute_sql("select m.title from MOVIES m").row_count
    db.insert("MOVIES", {"id": 998, "title": "Sideloaded", "year": 2001})
    after = executor.execute_sql("select m.title from MOVIES m")
    assert after.row_count == before + 1
    assert "Sideloaded" in after.column("m.title")


def test_shadowed_alias_subquery_not_cached_as_uncorrelated(db):
    # The nested subquery reuses the outer alias `m`, which makes the
    # static correlation analysis blind to the genuinely-outer `m.id`;
    # the memo must fall back to whole-row keys, not cache the first
    # outer row's answer for every movie.
    db.insert("MOVIES", {"id": 990, "title": "Orphan Movie", "year": 2026})
    sql = (
        "select m.title from MOVIES m where exists ("
        "select * from DIRECTED d where d.mid = m.id and exists ("
        "select * from MOVIES m where m.id = d.mid))"
    )
    a = Executor(db).execute_sql(sql)
    b = interpreted(db).execute_sql(sql)
    assert sorted(a.column("m.title")) == sorted(b.column("m.title"))
    assert "Orphan Movie" not in a.column("m.title")


def test_auto_index_names_do_not_collide_across_column_sets():
    from repro.catalog.builder import SchemaBuilder
    from repro.storage.database import Database

    schema = (
        SchemaBuilder("collide")
        .relation("T")
        .column("id", "integer", primary_key=True)
        .column("a", "text")
        .column("b", "text")
        .column("a_b", "text")
        .done()
        .build(require_primary_keys=True)
    )
    database = Database(schema)
    database.insert("T", {"id": 1, "a": "x", "b": "y", "a_b": "z"})
    table = database.table("T")
    single = table.ensure_index(["a_b"])
    double = table.ensure_index(["a", "b"])
    assert single.columns == ("a_b",)
    assert double.columns == ("a", "b")
    assert table.lookup(["a", "b"], ["x", "y"])
    assert table.lookup(["a_b"], ["z"])
    executor = Executor(database)
    result = executor.execute_sql("select t.id from T t where t.a = 'x' and t.b = 'y'")
    assert result.column("t.id") == [1]


def test_nested_subquery_results_follow_dml(db):
    executor = Executor(db)
    q5 = PAPER_QUERIES["Q5"]
    before = set(executor.execute_sql(q5).column("m.title"))
    executor.execute_sql(
        "insert into MOVIES (id, title, year) values (997, 'Pitt Returns', 2020)"
    )
    actor_id = executor.execute_sql(
        "select a.id from ACTOR a where a.name = 'Brad Pitt'"
    ).scalar()
    executor.execute_sql(
        f"insert into CAST (mid, aid, role) values (997, {actor_id}, 'Lead')"
    )
    after = set(executor.execute_sql(q5).column("m.title"))
    assert after == before | {"Pitt Returns"}
