"""Shard-tier suite: protocol, routing, ordering, crashes, warm-start.

The contract under test mirrors the service suite's, one level up: any
request history through a :class:`~repro.service.ShardRouter` — including
interleaved mutations and a worker SIGKILLed mid-workload — produces
results byte-identical to the same history against a single-process
``NarrationService`` session (the retained oracle).
"""

import asyncio
import os
import pickle
import socket
import subprocess
import sys

import pytest

from repro.content.presets import movie_spec
from repro.datasets import generate_workload, movie_database
from repro.engine import Executor
from repro.oracle import oracle_enabled
from repro.query_nl.translator import QueryTranslator
from repro.service import (
    HashRing,
    NarrationService,
    ServiceClosed,
    ShardError,
    ShardRouter,
    WorkerCrashed,
)
from repro.service.sharding import WorkerHandle, default_start_method
from repro.service.sharding import protocol as shard_protocol
from repro.service.sharding.protocol import (
    FrameReader,
    encode_frame,
    unwire_translation,
    wire_translation,
)
from repro.sql.shape import shape_hash, stable_hash

DB_FACTORY = "repro.datasets.movies:movie_database"
SPEC_FACTORY = "repro.content.presets:movie_spec"

TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def corpus_sql(count=50):
    queries = [q.sql for q in generate_workload(queries_per_category=12, seed=7)]
    return queries[:count]


async def retry_crashed(call, attempts=80, delay=0.25):
    """Retry ``call`` until the respawned worker serves it."""
    for _ in range(attempts):
        try:
            return await call()
        except WorkerCrashed:
            await asyncio.sleep(delay)
    raise AssertionError("worker never came back")


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def roundtrip(self, obj):
        async def main():
            left, right = socket.socketpair()
            try:
                left.setblocking(False)
                right.setblocking(False)
                loop = asyncio.get_running_loop()
                await loop.sock_sendall(left, encode_frame(obj))
                return await FrameReader(loop, right).read()
            finally:
                left.close()
                right.close()

        return run(main())

    def test_request_tuple_roundtrip(self):
        message = (7, "translate", "select * from MOVIES", None)
        assert self.roundtrip(message) == message

    def test_mutation_frame_carries_seq(self):
        message = (9, "execute", "insert into GENRE values (1, 'x')", 4)
        assert self.roundtrip(message) == message

    def test_pickled_payloads_roundtrip(self):
        database = movie_database()
        result = Executor(database, compiled=True).execute_sql(
            "select m.title from MOVIES m where m.year = 2004"
        )
        echoed = self.roundtrip((1, "ok", result))
        assert echoed[2] == result
        assert echoed[2].rows == result.rows

    def test_frame_reader_handles_split_and_batched_frames(self):
        frames = [
            (1, "ok", {"pid": 42}),
            (2, "ok", list(range(500))),
            (3, "err", "boom"),
        ]
        blob = b"".join(encode_frame(frame) for frame in frames)

        async def main():
            left, right = socket.socketpair()
            try:
                left.setblocking(False)
                right.setblocking(False)
                loop = asyncio.get_running_loop()
                reader = FrameReader(loop, right)

                async def drip():
                    # Worst-case framing: bytes arrive seven at a time,
                    # so every header and payload is split mid-field.
                    for start in range(0, len(blob), 7):
                        await loop.sock_sendall(left, blob[start : start + 7])
                    left.close()

                feeder = loop.create_task(drip())
                received = [await reader.read() for _ in frames]
                assert await reader.read() is None  # clean EOF
                await feeder
                return received
            finally:
                right.close()

        assert run(main()) == frames

    def test_wire_translation_preserves_textual_fields(self):
        database = movie_database()
        translator = QueryTranslator(database.schema, spec=movie_spec(database.schema))
        translation = translator.translate(
            "select m.title from MOVIES m where m.year > 2000"
        )
        rebuilt = unwire_translation(
            pickle.loads(pickle.dumps(wire_translation(translation)))
        )
        assert rebuilt == translation
        assert rebuilt.text == translation.text
        assert rebuilt.notes == translation.notes


# ---------------------------------------------------------------------------
# Stable hashing and the ring
# ---------------------------------------------------------------------------


class TestStableHashing:
    def test_stable_hash_is_process_independent(self):
        # Same text, different interpreter, different PYTHONHASHSEED:
        # the routing hash must not move.
        sql = "select m.title from MOVIES m where m.year = 2004"
        expected = (stable_hash("shard-0#3"), shape_hash(sql))
        script = (
            "import sys; sys.path.insert(0, sys.argv[1]); "
            "from repro.sql.shape import shape_hash, stable_hash; "
            f"print(stable_hash('shard-0#3'), shape_hash({sql!r}))"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONHASHSEED="12345")
        output = subprocess.run(
            [sys.executable, "-c", script, src],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert (int(output[0]), int(output[1])) == expected

    def test_shape_hash_ignores_literals_only(self):
        base = "select m.title from MOVIES m where m.year = 2004"
        assert shape_hash(base) == shape_hash(
            "select m.title from MOVIES m where m.year = 1977"
        )
        assert shape_hash(base) != shape_hash(
            "select m.title from MOVIES m where m.id = 2004"
        )

    def test_ring_is_deterministic(self):
        ring_a = HashRing(range(4))
        ring_b = HashRing(range(4))
        keys = [stable_hash(f"key-{i}") for i in range(1000)]
        assert [ring_a.route(k) for k in keys] == [ring_b.route(k) for k in keys]

    def test_ring_balance(self):
        ring = HashRing(range(4), replicas=64)
        counts = {index: 0 for index in range(4)}
        for i in range(8000):
            counts[ring.route(stable_hash(f"key-{i}"))] += 1
        for owned in counts.values():
            assert owned > 8000 * 0.10  # no worker starves

    def test_ring_minimal_movement_on_removal(self):
        before = HashRing(range(4))
        after = HashRing(range(3))  # worker 3 removed
        moved = 0
        for i in range(4000):
            key = stable_hash(f"key-{i}")
            owner = before.route(key)
            if owner == 3:
                moved += 1
            else:
                # Keys not owned by the removed worker must not move.
                assert after.route(key) == owner
        assert 0 < moved < 4000


# ---------------------------------------------------------------------------
# Router end-to-end equivalence
# ---------------------------------------------------------------------------


class TestRouterEquivalence:
    def test_corpus_byte_identical_to_single_process_oracle(self):
        corpus = corpus_sql(50)
        database = movie_database()
        spec = movie_spec(database.schema)

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database, spec=spec)
                expected = {
                    "translations": [await oracle.translate(sql) for sql in corpus],
                    "results": [await oracle.execute(sql) for sql in corpus],
                    "story": await oracle.narrate_database(),
                    "relation": await oracle.narrate_relation("MOVIES"),
                    "explanation": await oracle.explain_empty(
                        "select m.title from MOVIES m where m.year = 1800"
                    ),
                }
            async with ShardRouter(
                DB_FACTORY, spec_factory=SPEC_FACTORY, workers=2
            ) as router:
                translations, results = await asyncio.gather(
                    asyncio.gather(*[router.translate(sql) for sql in corpus]),
                    asyncio.gather(*[router.execute(sql) for sql in corpus]),
                )
                story = await router.narrate_database()
                relation = await router.narrate_relation("MOVIES")
                explanation = await router.explain_empty(
                    "select m.title from MOVIES m where m.year = 1800"
                )
                stats = await router.stats()
            assert translations == expected["translations"]
            assert [t.text for t in translations] == [
                t.text for t in expected["translations"]
            ]
            for got, want in zip(results, expected["results"]):
                assert got == want
                assert got.rows == want.rows
            assert story == expected["story"]
            assert relation == expected["relation"]
            assert explanation.text == expected["explanation"].text
            return stats

        stats = run(main())
        assert stats["fleet"]["live_workers"] == 2
        assert stats["router"]["crashes"] == 0
        # Stats consistency: a fault-free run exercises none of the
        # resilience machinery.
        assert stats["router"]["retries"] == 0
        assert stats["router"]["degraded_reads"] == 0
        assert stats["router"]["deadline_expired"] == 0
        assert stats["router"]["breaker_trips"] == 0
        assert stats["router"]["worker_health"] == ["live", "live"]
        for worker in stats["workers"]:
            assert worker["breaker"]["state"] == "closed"
            assert worker["session"]["requests"]["shed"] == {
                "overload": 0,
                "deadline": 0,
                "in_queue": 0,
            }
        # The consistent hash spread the corpus over both workers.
        per_worker = [
            sum(w["session"]["requests"]["by_kind"].values())
            for w in stats["workers"]
        ]
        assert all(count > 0 for count in per_worker)

    def test_same_shape_routes_to_same_worker(self):
        ring = HashRing(range(4))
        variants = [
            "select m.title from MOVIES m where m.year = 2004",
            "select m.title from MOVIES m where m.year = 1977",
            "select m.title from MOVIES m where m.year = 1995",
        ]
        owners = {ring.route(shape_hash(sql)) for sql in variants}
        assert len(owners) == 1

    def test_pipeline_errors_cross_the_wire_typed(self):
        async def main():
            async with ShardRouter(DB_FACTORY, workers=1) as router:
                with pytest.raises(Exception) as excinfo:
                    await router.execute("select nope from NOWHERE")
                return excinfo.value

        error = run(main())
        # The worker's original exception class crossed the wire — not a
        # WorkerCrashed, not an opaque RemoteWorkerError.
        assert type(error).__name__ == "UnknownTableError"


# ---------------------------------------------------------------------------
# Mutation ordering
# ---------------------------------------------------------------------------


class TestMutationOrdering:
    def test_interleaved_mutations_match_oracle_history(self):
        reads = [
            "select g.genre from GENRE g where g.mid = 1",
            "select count(*) from GENRE",
            "select m.title from MOVIES m where m.year > 1990",
        ]
        writes = [
            "insert into GENRE values (1, 'ordering-a')",
            "insert into GENRE values (2, 'ordering-b')",
            "insert into GENRE values (3, 'ordering-c')",
        ]
        database = movie_database()

        async def history(target):
            outputs = []
            for write in writes:
                outputs.append(await target.execute(write))
                for read in reads:
                    outputs.append(await target.execute(read))
            return outputs

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database)
                expected = await history(oracle)
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                got = await history(router)
                final = await asyncio.gather(
                    *[router.execute("select count(*) from GENRE") for _ in range(8)]
                )
            return expected, got, final

        expected, got, final = run(main())
        assert got == expected
        # Every replica applied every write: all post-history counts agree.
        assert len({tuple(map(tuple, r.rows)) for r in final}) == 1

    def test_rejected_mutation_does_not_wedge_reads(self):
        # Regression: a pipeline-rejected mutation used to increment the
        # broadcast seq without any worker ever acking it, so every later
        # read deadlocked in wait_applied.  The worker processes the
        # barrier frame either way (it applies nothing), so the watermark
        # must advance and the fleet must keep serving.
        poison = "insert into NOWHERE values (1, 'x')"

        async def main():
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                await router.execute("insert into GENRE values (4, 'pre')")
                with pytest.raises(Exception) as excinfo:
                    await router.execute(poison)
                # The deterministic pipeline error crossed typed, not as
                # a crash.
                assert type(excinfo.value).__name__ == "UnknownTableError"
                # Reads on every worker complete promptly — no wedge.
                reads = await asyncio.wait_for(
                    asyncio.gather(
                        *[
                            router.execute("select count(*) from GENRE")
                            for _ in range(8)
                        ]
                    ),
                    timeout=20,
                )
                # And the write path keeps working after the rejection.
                await asyncio.wait_for(
                    router.execute("insert into GENRE values (6, 'post')"),
                    timeout=20,
                )
                post = await asyncio.wait_for(
                    router.execute(
                        "select g.genre from GENRE g where g.mid = 6"
                    ),
                    timeout=20,
                )
                stats = await router.stats()
            return reads, post, stats

        reads, post, stats = run(main())
        assert len({tuple(map(tuple, r.rows)) for r in reads}) == 1
        assert any("post" in str(row) for row in post.rows)
        assert stats["router"]["crashes"] == 0
        live = [w for w in stats["workers"] if w is not None]
        assert len(live) == 2
        # Every replica acked every seq, the rejected one included.
        assert {w["applied_seq"] for w in live} == {stats["router"]["mutations"]}

    def test_reads_after_write_see_the_write(self):
        async def main():
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                await router.execute("insert into GENRE values (10, 'barrier')")
                # Immediately-following reads (any worker) must see it.
                results = await asyncio.gather(
                    *[
                        router.execute(
                            "select g.genre from GENRE g where g.mid = 10"
                        )
                        for _ in range(6)
                    ]
                )
                return results

        results = run(main())
        for result in results:
            assert any("barrier" in str(row) for row in result.rows)


# ---------------------------------------------------------------------------
# Crash recovery and warm-start
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_killed_worker_respawns_with_mutations_replayed(self):
        corpus = corpus_sql(50)
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database)
                await oracle.execute("insert into GENRE values (5, 'pre-crash')")
                expected = [await oracle.execute(sql) for sql in corpus]
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                await router.execute("insert into GENRE values (5, 'pre-crash')")
                # Half the corpus warms the fleet, then worker 0 dies
                # mid-workload.
                for sql in corpus[:25]:
                    await router.execute(sql)
                killed_pid = router.kill_worker(0)
                assert killed_pid is not None
                results = []
                for sql in corpus:
                    results.append(
                        await retry_crashed(lambda s=sql: router.execute(s))
                    )
                stats = await router.stats()
            return expected, results, stats

        expected, results, stats = run(main())
        for got, want in zip(results, expected):
            assert got == want
            assert got.rows == want.rows
        assert stats["router"]["crashes"] >= 1
        assert stats["router"]["respawns"] >= 1
        # The respawned replica replayed the mutation log: its applied
        # watermark reached the fleet's.
        live = [w for w in stats["workers"] if w is not None]
        assert len(live) == 2
        assert len({w["applied_seq"] for w in live}) == 1

    def test_inflight_requests_fail_typed_not_hang(self):
        async def main():
            async with ShardRouter(DB_FACTORY, workers=1) as router:
                await router.execute("select count(*) from MOVIES")
                handle = router._handles[0]
                # A request stuck in flight when the worker dies must
                # fail with the typed error, promptly.
                pending = asyncio.ensure_future(
                    handle.request("execute", "select count(*) from MOVIES")
                )
                await asyncio.sleep(0)
                router.kill_worker(0)
                with pytest.raises(WorkerCrashed):
                    await asyncio.wait_for(pending, timeout=30)
                # ...and the router recovers for new traffic.
                result = await retry_crashed(
                    lambda: router.execute("select count(*) from MOVIES")
                )
                return result

        result = run(main())
        assert result.rows

    def test_mutations_during_respawn_converge_with_rejected_log_entries(self):
        # Regression twice over: (a) a respawned worker used to reopen
        # for traffic before the mutation log was replayed, so a write
        # landing mid-respawn could reach the fresh replica out of order
        # (or be missed entirely); (b) a rejected mutation left in the
        # log used to abort the replay at that entry.  Here the log holds
        # a rejected entry, the worker is SIGKILLed, and a new write
        # lands while the rebuild is in flight — the replica must still
        # converge to the oracle history.
        corpus = corpus_sql(12)
        poison = "insert into NOWHERE values (1, 'x')"
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=2) as service:
                oracle = service.session(database=database)
                await oracle.execute("insert into GENRE values (7, 'alpha')")
                with pytest.raises(Exception) as oracle_err:
                    await oracle.execute(poison)
                for sql in corpus:
                    await oracle.execute(sql)
                await oracle.execute("insert into GENRE values (8, 'beta')")
                expected_count = await oracle.execute("select count(*) from GENRE")
                expected_beta = await oracle.execute(
                    "select g.genre from GENRE g where g.mid = 8"
                )
            async with ShardRouter(DB_FACTORY, workers=2) as router:
                await router.execute("insert into GENRE values (7, 'alpha')")
                with pytest.raises(Exception) as router_err:
                    await router.execute(poison)
                for sql in corpus:
                    await router.execute(sql)
                router.kill_worker(0)
                # This write lands while worker 0 is down or rebuilding:
                # the log replay (under the mutation lock, before the
                # reopen) must deliver it in order.
                await router.execute("insert into GENRE values (8, 'beta')")
                counts = [
                    await retry_crashed(
                        lambda: router.execute("select count(*) from GENRE")
                    )
                    for _ in range(8)
                ]
                beta = await retry_crashed(
                    lambda: router.execute(
                        "select g.genre from GENRE g where g.mid = 8"
                    )
                )
                stats = await router.stats()
            return oracle_err.value, router_err.value, expected_count, expected_beta, counts, beta, stats

        oracle_error, router_error, expected_count, expected_beta, counts, beta, stats = run(main())
        assert type(router_error).__name__ == type(oracle_error).__name__
        for count in counts:
            assert count == expected_count
            assert count.rows == expected_count.rows
        assert beta == expected_beta
        assert stats["router"]["respawns"] >= 1
        live = [w for w in stats["workers"] if w is not None]
        assert len(live) == 2
        # The rebuilt replica replayed the full log, rejected entry and
        # all: both watermarks sit at the fleet's seq.
        assert {w["applied_seq"] for w in live} == {stats["router"]["mutations"]}

    def test_undecodable_response_frame_is_treated_as_worker_death(self):
        # Regression: a response frame the router cannot decode (unknown
        # codec, an exception class that fails to unpickle router-side)
        # used to kill the reader task silently — pending futures hung
        # forever and no respawn ever fired.
        async def main():
            loop = asyncio.get_running_loop()
            handle = WorkerHandle(0, {}, default_start_method())
            left, right = socket.socketpair()
            left.setblocking(False)
            right.setblocking(False)
            try:
                handle._sock = left
                crashes = []
                handle.set_crash_callback(crashes.append)
                handle.ready.set()
                handle._reader_task = loop.create_task(handle._read_responses())
                pending = asyncio.ensure_future(
                    handle.request("execute", "select count(*) from MOVIES")
                )
                # Play the worker: swallow the request, answer garbage.
                await FrameReader(loop, right).read()
                await loop.sock_sendall(right, shard_protocol._HEADER.pack(7, 0))
                with pytest.raises(WorkerCrashed):
                    await asyncio.wait_for(pending, timeout=10)
                await asyncio.sleep(0)
                assert crashes == [handle]  # supervision was notified
                assert not handle.ready.is_set()
                handle._reader_task.cancel()
            finally:
                for sock in (left, right):
                    try:
                        sock.close()
                    except OSError:
                        pass

        run(main())

    def test_exhausted_respawns_fail_fast_and_typed(self):
        # Regression: once max_respawns ran out, requests to the dead
        # worker used to stall the full 60s ready timeout and surface an
        # untyped asyncio.TimeoutError; now the handle is marked
        # permanently dead and fails fast with the typed ShardError.
        async def main():
            async with ShardRouter(DB_FACTORY, workers=1, max_respawns=0) as router:
                await router.execute("select count(*) from MOVIES")
                router.kill_worker(0)
                for _ in range(int(TIMEOUT / 0.05)):
                    if router._handles[0].gave_up:
                        break
                    await asyncio.sleep(0.05)
                assert router._handles[0].gave_up
                with pytest.raises(ShardError):
                    await asyncio.wait_for(
                        router.execute("select count(*) from MOVIES"), timeout=5
                    )
                with pytest.raises(ShardError):
                    await asyncio.wait_for(
                        router.execute("insert into GENRE values (3, 'x')"),
                        timeout=5,
                    )
                stats = await router.stats()
            return stats

        stats = run(main())
        assert stats["router"]["dead_workers"] == [0]
        assert stats["router"]["worker_health"] == ["dead"]
        assert stats["workers"][0]["health"] == "dead"
        assert stats["workers"][0]["session"] is None
        assert stats["fleet"]["live_workers"] == 0

    def test_respawn_is_warm_started_from_captured_shapes(self):
        corpus = corpus_sql(20)

        async def main():
            async with ShardRouter(
                DB_FACTORY, workers=1, phrase_plans=True
            ) as router:
                for sql in corpus:
                    await router.translate(sql)
                    await router.execute(sql)
                router.kill_worker(0)
                await retry_crashed(
                    lambda: router.execute("select count(*) from MOVIES")
                )
                return await router.stats()

        stats = run(main())
        worker = stats["workers"][0]
        assert worker["respawns"] == 1
        # The respawned process compiled plans before serving real
        # traffic: its plan store is populated although this incarnation
        # only ever saw one live query.
        plan_store = worker["session"]["translator"]["plan_store"]
        assert plan_store is not None and plan_store["size"] > 0
        if not oracle_enabled():
            # Oracle mode runs the per-text executor path (no shape
            # plans), so there is nothing to capture on the execute side.
            executor = worker["session"].get("executor")
            assert executor is not None
            assert executor["shape_plans"]["entries"] > 0


# ---------------------------------------------------------------------------
# Graceful shutdown (satellite: service drain must not leak futures)
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_router_shutdown_is_clean(self):
        async def main():
            router = ShardRouter(DB_FACTORY, workers=2)
            await router.start()
            await router.execute("select count(*) from MOVIES")
            pids = [handle.pid for handle in router._handles]
            await router.aclose()
            return router, pids

        router, pids = run(main())
        for handle in router._handles:
            assert handle.process is not None
            assert handle.process.exitcode is not None  # actually exited
        with pytest.raises(ServiceClosed):
            run(router.execute("select 1 from MOVIES"))

    def test_service_aclose_settles_every_pending_future(self):
        # Regression test for the drain leak: producers parked in
        # ``queue.put`` on a full queue used to never settle when the
        # drain task died first.
        database = movie_database()

        async def main():
            service = NarrationService(max_workers=1, max_queue=2)
            session = service.session(database=database)
            requests = [
                asyncio.ensure_future(
                    session.execute("select count(*) from MOVIES")
                )
                for _ in range(32)
            ]
            await asyncio.sleep(0)  # let producers hit the queue
            await service.aclose()
            outcomes = await asyncio.gather(*requests, return_exceptions=True)
            return outcomes

        outcomes = run(main())
        assert len(outcomes) == 32
        for outcome in outcomes:
            assert isinstance(outcome, ServiceClosed) or hasattr(outcome, "rows")


# ---------------------------------------------------------------------------
# Warm-start capture API (satellite: usable outside the shard tier)
# ---------------------------------------------------------------------------


class TestWarmStartCapture:
    def test_translator_capture_and_replay(self):
        corpus = corpus_sql(15)
        database = movie_database()
        spec = movie_spec(database.schema)
        source = QueryTranslator(database.schema, spec=spec, phrase_plans=True)
        for sql in corpus:
            source.translate(sql)
        captured = source.captured_shapes()
        assert captured
        fresh = QueryTranslator(
            movie_database().schema, spec=spec, phrase_plans=True
        )
        replayed = fresh.precompile(captured)
        assert replayed == len(captured)
        before = fresh.stats()["plan_store"]["hits"]
        for sql in corpus:
            fresh.translate(sql)
        assert fresh.stats()["plan_store"]["hits"] > before

    def test_executor_capture_skips_mutations(self):
        database = movie_database()
        executor = Executor(
            database, compiled=True, use_caches=True, parameterised=True
        )
        executor.execute_sql("select m.title from MOVIES m where m.year = 2004")
        executor.execute_sql("insert into GENRE values (8, 'capture')")
        captured = executor.captured_shapes()
        assert any("select" in sql.lower() for sql in captured)
        fresh = Executor(
            movie_database(), compiled=True, use_caches=True, parameterised=True
        )
        replayed = fresh.precompile(
            captured + ["insert into GENRE values (9, 'never')"]
        )
        assert replayed == len(captured)  # the mutation was refused
        refused = fresh.execute_sql("select g.genre from GENRE g where g.mid = 9")
        assert not refused.rows

    def test_session_capture_round_trips_through_service(self):
        corpus = corpus_sql(10)
        database = movie_database()

        async def main():
            async with NarrationService(max_workers=2) as service:
                session = service.session(database=database, phrase_plans=True)
                for sql in corpus:
                    await session.translate(sql)
                    await session.execute(sql)
                captured = session.captured_shapes()
            async with NarrationService(max_workers=2) as fresh_service:
                fresh = fresh_service.session(
                    database=movie_database(), phrase_plans=True
                )
                counts = await fresh.precompile(captured)
                stats = fresh.stats()
            return captured, counts, stats

        captured, counts, stats = run(main())
        assert set(captured) == {"translate", "execute"}
        assert captured["translate"]
        if not oracle_enabled():  # no shape plans on the oracle executor
            assert captured["execute"]
        assert counts["translate"] == len(captured["translate"])
        plan_store = stats["translator"]["plan_store"]
        assert plan_store is not None and plan_store["size"] > 0
