"""Property-based tests (hypothesis) for core invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import GeneratorConfig, generate_movie_records, movie_schema
from repro.lexicon.morphology import capitalize_first, join_list, pluralize, strip_extra_spaces
from repro.nlg import Clause, merge_clauses
from repro.nlg.realize import realize_sentence, word_count
from repro.sql import ast, parse_select, to_sql
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType
from repro.storage.row import Row
from repro.templates.spec import ListTemplate, slot, template

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
safe_text = st.text(
    alphabet=string.ascii_letters + string.digits + " ',.-", min_size=0, max_size=30
)
scalar_values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(alphabet=string.ascii_letters + " ", min_size=0, max_size=12),
    st.none(),
)


# A compositional strategy for small, well-formed SELECT statements over the
# movie schema; used for parse/print round-trip properties.
_columns = st.sampled_from(["m.id", "m.title", "m.year"])
_literals = st.one_of(
    st.integers(min_value=0, max_value=3000),
    st.sampled_from(["'Troy'", "'Match Point'", "'action'"]),
)
_comparisons = st.builds(
    lambda column, op, literal: f"{column} {op} {literal}",
    _columns,
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    _literals,
)
_where = st.lists(_comparisons, min_size=1, max_size=3).map(" and ".join)
simple_selects = st.builds(
    lambda cols, where, distinct: (
        "select "
        + ("distinct " if distinct else "")
        + ", ".join(sorted(set(cols)))
        + " from MOVIES m where "
        + where
    ),
    st.lists(_columns, min_size=1, max_size=3),
    _where,
    st.booleans(),
)


class TestSqlRoundTripProperties:
    @given(sql=simple_selects)
    @settings(max_examples=60, deadline=None)
    def test_parse_print_parse_fixpoint(self, sql):
        first = parse_select(sql)
        printed = to_sql(first)
        second = parse_select(printed)
        assert first == second
        assert to_sql(second) == printed

    @given(sql=simple_selects)
    @settings(max_examples=40, deadline=None)
    def test_lexer_never_drops_string_literals(self, sql):
        literals = [t for t in tokenize(sql) if t.type is TokenType.STRING]
        for token in literals:
            assert token.value in sql

    @given(value=safe_text)
    @settings(max_examples=60, deadline=None)
    def test_string_literal_round_trip(self, value):
        rendered = str(ast.Literal(value))
        parsed = parse_select(f"select * from MOVIES m where m.title = {rendered}")
        conjunct = parsed.where
        assert isinstance(conjunct.right, ast.Literal)
        assert conjunct.right.value == value


class TestRowProperties:
    @given(values=st.dictionaries(identifiers, scalar_values, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_prefix_then_unqualified_lookup_recovers_values(self, values):
        row = Row(values).prefixed("t")
        for key, value in values.items():
            assert row[f"t.{key}"] == value

    @given(
        first=st.dictionaries(identifiers, scalar_values, max_size=4),
        second=st.dictionaries(identifiers, scalar_values, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_right_biased_and_total(self, first, second):
        merged = Row(first).merged(Row(second))
        assert set(merged.keys()) == set(first) | set(second)
        for key, value in second.items():
            assert merged[key] == value


class TestMorphologyProperties:
    @given(noun=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_pluralize_count_one_is_identity(self, noun):
        assert pluralize(noun, count=1) == noun

    @given(noun=st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_pluralize_never_returns_empty(self, noun):
        assert pluralize(noun)

    @given(items=st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_join_list_contains_every_item(self, items):
        joined = join_list(items)
        for item in items:
            assert item in joined

    @given(text=safe_text)
    @settings(max_examples=60, deadline=None)
    def test_capitalize_first_is_idempotent(self, text):
        once = capitalize_first(text)
        assert capitalize_first(once) == once

    @given(text=safe_text)
    @settings(max_examples=60, deadline=None)
    def test_strip_extra_spaces_is_idempotent(self, text):
        once = strip_extra_spaces(text)
        assert strip_extra_spaces(once) == once


class TestNlgProperties:
    clause_strategy = st.builds(
        Clause,
        subject=st.sampled_from(["Woody Allen", "Brad Pitt", "the movie Troy"]),
        verb=st.sampled_from(["was born", "directed", "plays in", ""]),
        complements=st.tuples(st.sampled_from(["in Brooklyn", "on Monday", "Troy"])),
    )

    @given(clauses=st.lists(clause_strategy, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_merge_clauses_is_idempotent(self, clauses):
        once = merge_clauses(clauses)
        assert merge_clauses(once) == once

    @given(clauses=st.lists(clause_strategy, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_merge_never_increases_clause_count(self, clauses):
        assert len(merge_clauses(clauses)) <= len(clauses)

    @given(text=safe_text.filter(lambda s: any(c.isalnum() for c in s)))
    @settings(max_examples=60, deadline=None)
    def test_realize_sentence_terminates_with_punctuation(self, text):
        sentence = realize_sentence(text)
        assert sentence[-1] in ".!?"

    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {"title": st.sampled_from(["A", "B", "C"]), "year": st.integers(1900, 2020)}
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_list_template_mentions_every_row(self, rows):
        item = template(slot("title"), " (", slot("year"), ")")
        movie_list = ListTemplate(
            name="L", item=item, last_item=item, separator=", ", last_separator=", and "
        )
        rendered = movie_list.instantiate(rows)
        for row in rows:
            assert str(row["year"]) in rendered


class TestGeneratorProperties:
    @given(
        movies=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_foreign_keys_always_resolve(self, movies, seed):
        config = GeneratorConfig(movies=movies, directors=3, actors=6, seed=seed)
        records = generate_movie_records(config)
        movie_ids = {m["id"] for m in records["MOVIES"]}
        director_ids = {d["id"] for d in records["DIRECTOR"]}
        actor_ids = {a["id"] for a in records["ACTOR"]}
        assert all(r["mid"] in movie_ids and r["did"] in director_ids for r in records["DIRECTED"])
        assert all(c["mid"] in movie_ids and c["aid"] in actor_ids for c in records["CAST"])
        assert all(g["mid"] in movie_ids for g in records["GENRE"])

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_generator_is_pure_function_of_config(self, seed):
        config = GeneratorConfig(movies=8, directors=2, actors=4, seed=seed)
        assert generate_movie_records(config) == generate_movie_records(config)


class TestTranslationProperties:
    @given(
        actor=st.sampled_from(["Brad Pitt", "Mark Hamill", "Morgan Freeman"]),
        year=st.integers(min_value=1950, max_value=2008),
    )
    @settings(max_examples=30, deadline=None)
    def test_path_query_translation_always_mentions_constant(self, actor, year):
        from repro.content import movie_spec
        from repro.query_nl import QueryTranslator

        schema = movie_schema()
        translator = QueryTranslator(schema, spec=movie_spec(schema))
        sql = (
            "select m.title from MOVIES m, CAST c, ACTOR a"
            " where m.id = c.mid and c.aid = a.id"
            f" and a.name = '{actor}' and m.year > {year}"
        )
        text = translator.translate(sql).text
        assert actor in text
        assert str(year) in text
        assert word_count(text) < 40
