"""ABL-COMPACT — compact vs procedural synthesis (Section 2.2 discussion).

The paper: the compact text "is more compact, does not have any overlaps,
is declarative, and resembles genuine natural language.  On the other
hand, its creation is more complex ... The second piece of text is
constructed in a procedural manner ... simpler to create and can be used
to describe more complex database schema graphs."

The ablation quantifies that trade-off: the compact mode produces fewer
words (better effectiveness) at a higher generation cost per narrative.
"""

import pytest
from conftest import report

from repro.content import ContentNarrator, SynthesisMode, movie_spec
from repro.datasets import GeneratorConfig, generate_movie_database
from repro.evaluation import TextMetrics, compression_ratio, redundancy_ratio


@pytest.fixture(scope="module")
def scaled_narrator():
    database = generate_movie_database(GeneratorConfig(movies=60, directors=10, actors=25))
    return ContentNarrator(database, spec=movie_spec(database.schema))


def _directors_with_movies(narrator, limit=10):
    rows = list(narrator.database.table("DIRECTOR").rows())[:limit]
    return [row["name"] for row in rows]


def test_compact_mode_over_many_directors(benchmark, scaled_narrator):
    names = _directors_with_movies(scaled_narrator)

    def narrate_all():
        return [
            scaled_narrator.narrate_entity("DIRECTOR", name, "MOVIES", mode=SynthesisMode.COMPACT)
            for name in names
        ]

    texts = benchmark(narrate_all)
    assert len(texts) == len(names)


def test_procedural_mode_over_many_directors(benchmark, scaled_narrator):
    names = _directors_with_movies(scaled_narrator)

    def narrate_all():
        return [
            scaled_narrator.narrate_entity(
                "DIRECTOR", name, "MOVIES", mode=SynthesisMode.PROCEDURAL
            )
            for name in names
        ]

    texts = benchmark(narrate_all)
    assert len(texts) == len(names)


def test_compact_is_more_effective_than_procedural(benchmark, scaled_narrator):
    names = _directors_with_movies(scaled_narrator)

    def compare():
        ratios = []
        redundancy = []
        for name in names:
            compact = scaled_narrator.narrate_entity(
                "DIRECTOR", name, "MOVIES", mode=SynthesisMode.COMPACT
            )
            procedural = scaled_narrator.narrate_entity(
                "DIRECTOR", name, "MOVIES", mode=SynthesisMode.PROCEDURAL
            )
            ratios.append(compression_ratio(compact, procedural))
            redundancy.append((redundancy_ratio(compact), redundancy_ratio(procedural)))
        return ratios, redundancy

    ratios, redundancy = benchmark(compare)
    mean_ratio = sum(ratios) / len(ratios)
    assert mean_ratio <= 1.0
    compact_redundancy = sum(r[0] for r in redundancy) / len(redundancy)
    procedural_redundancy = sum(r[1] for r in redundancy) / len(redundancy)
    assert compact_redundancy <= procedural_redundancy + 1e-9
    report(
        "ABL-COMPACT: compact vs procedural synthesis",
        paper="compact text is shorter and avoids overlaps; procedural repeats the subject",
        mean_compact_to_procedural_word_ratio=round(mean_ratio, 3),
        mean_redundancy_compact=round(compact_redundancy, 3),
        mean_redundancy_procedural=round(procedural_redundancy, 3),
    )


def test_paper_example_metrics(benchmark, movie_narrator):
    def measure():
        compact = movie_narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.COMPACT
        )
        procedural = movie_narrator.narrate_entity(
            "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.PROCEDURAL
        )
        return TextMetrics.of(compact), TextMetrics.of(procedural)

    compact_metrics, procedural_metrics = benchmark(measure)
    assert compact_metrics.words < procedural_metrics.words
    assert compact_metrics.sentences < procedural_metrics.sentences
    report(
        "ABL-COMPACT on the Woody Allen example",
        compact=compact_metrics,
        procedural=procedural_metrics,
    )
