"""Resilience-layer overhead benchmark: the policies must be ~free at rest.

PR 7 threads a :class:`~repro.service.resilience.Deadline` and an
:class:`~repro.service.resilience.AdmissionController` through every
service request, and a retry/breaker/degradation loop through every
shard-tier read.  The contract is that a *healthy* system pays almost
nothing for this: every default is "off" (unbounded deadline, no depth
threshold, closed breakers), so the hooks reduce to a singleton fetch
and a couple of integer comparisons.

This benchmark quantifies that claim three ways:

* ``fast_path`` — warm direct-await translates (LRU hit, served inline
  on the event loop) through a default session versus one whose
  resilience hooks are stubbed out entirely;
* ``queued_execute`` — warm single-shape executes through the full
  queue → drain → worker-pool path, default versus stubbed (this is the
  path that actually runs the admission check and deadline construction
  per request);
* ``micro_ns`` — the isolated per-call cost of each policy primitive.

The acceptance budget is a warm fast-path p50 regression under 5% at
defaults; measurements are interleaved (default / bypassed / default /
bypassed ...) so clock drift and thermal state cancel instead of biasing
one side.
"""

from __future__ import annotations

import asyncio
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import movie_database  # noqa: E402
from repro.service import NarrationService  # noqa: E402
from repro.service.resilience import (  # noqa: E402
    AdmissionController,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)

__all__ = ["bench_resilience"]

_SQL = "select m.title from MOVIES m where m.year = 2004"


class _BypassAdmission(AdmissionController):
    """Admission with the shed checks compiled out (the old edge)."""

    def admit(self, depth, deadline=Deadline.NONE):  # noqa: D102
        return None


def _bypass_resilience(session) -> None:
    """Stub the session's resilience hooks: the pre-PR 7 request path."""
    session._admission = _BypassAdmission()
    session._deadline = lambda timeout: Deadline.NONE


async def _measure_path(session, kind: str, batches: int, calls: int):
    """Per-call latencies (seconds) over ``batches`` timed batches."""
    request = session.translate if kind == "translate" else session.execute
    for _ in range(5):  # warm the caches and the queue machinery
        await request(_SQL)
    samples = []
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(calls):
            await request(_SQL)
        samples.append((time.perf_counter() - start) / calls)
    return samples


async def _compare(kind: str, batches: int, calls: int):
    """Interleaved default-vs-bypassed p50s for one request path."""
    default_service = NarrationService(max_workers=2)
    bypassed_service = NarrationService(max_workers=2)
    try:
        default_session = default_service.session(database=movie_database())
        bypassed_session = bypassed_service.session(database=movie_database())
        _bypass_resilience(bypassed_session)
        default_samples, bypassed_samples = [], []
        for _ in range(batches):
            default_samples.extend(
                await _measure_path(default_session, kind, 1, calls)
            )
            bypassed_samples.extend(
                await _measure_path(bypassed_session, kind, 1, calls)
            )
        return (
            statistics.median(default_samples),
            statistics.median(bypassed_samples),
        )
    finally:
        await default_service.aclose()
        await bypassed_service.aclose()


def _micro(fn, iterations: int) -> float:
    """Per-call cost in nanoseconds (median of 5 timed rounds)."""
    rounds = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        rounds.append((time.perf_counter() - start) / iterations)
    return statistics.median(rounds) * 1e9


def _regression_pct(default_s: float, bypassed_s: float) -> float:
    return round((default_s - bypassed_s) / max(bypassed_s, 1e-12) * 100.0, 2)


def bench_resilience(quick: bool = False) -> dict:
    batches = 10 if quick else 20
    calls = 100 if quick else 200
    iterations = 20_000 if quick else 100_000

    fast_default, fast_bypassed = asyncio.run(_compare("translate", batches, calls))
    queued_default, queued_bypassed = asyncio.run(_compare("execute", batches, calls))

    admission = AdmissionController()
    breaker = CircuitBreaker()
    policy = RetryPolicy()
    deadline = Deadline.after(60.0)
    micro = {
        "deadline_after_none": _micro(lambda: Deadline.after(None), iterations),
        "deadline_after_60s": _micro(lambda: Deadline.after(60.0), iterations),
        "deadline_remaining": _micro(deadline.remaining, iterations),
        "admission_admit": _micro(lambda: admission.admit(0), iterations),
        "breaker_allow": _micro(breaker.allow, iterations),
        "retry_delay": _micro(lambda: policy.delay(2, "execute:42"), iterations // 10),
    }

    fast_regression = _regression_pct(fast_default, fast_bypassed)
    result = {
        "note": (
            "default resilience (unbounded deadline, no shed threshold,"
            " closed breakers) vs the same session with the hooks stubbed"
            " out; interleaved medians, per-call"
        ),
        "fast_path": {
            "p50_default_us": round(fast_default * 1e6, 3),
            "p50_bypassed_us": round(fast_bypassed * 1e6, 3),
            "regression_pct": fast_regression,
        },
        "queued_execute": {
            "p50_default_us": round(queued_default * 1e6, 3),
            "p50_bypassed_us": round(queued_bypassed * 1e6, 3),
            "regression_pct": _regression_pct(queued_default, queued_bypassed),
        },
        "micro_ns": {key: round(value, 1) for key, value in micro.items()},
        "budget": "warm fast-path p50 regression < 5% at defaults",
        "passes_budget": fast_regression < 5.0,
    }
    return result


if __name__ == "__main__":
    import json

    print(json.dumps(bench_resilience(quick="--quick" in sys.argv), indent=2))
