"""PERF — the compiled narration front end vs. the interpreted one.

Covers the language-side compile-once-run-many pipeline of the narration
stack: the precompiled-regex lexer vs. the character-by-character oracle,
cold/warm query translation over the 50-query generated workload, and
streaming vs. eager database narration under a fixed length budget —
asserting byte equivalence wherever both paths run.
"""

import pytest
from conftest import report

from repro.content.narrator import ContentNarrator
from repro.content.presets import movie_spec
from repro.datasets import (
    GeneratorConfig,
    PAPER_QUERIES,
    generate_movie_database,
    generate_workload,
    movie_schema,
)
from repro.nlg.document import LengthBudget
from repro.query_nl.translator import QueryTranslator
from repro.sql.lexer import tokenize, tokenize_reference


@pytest.fixture(scope="module")
def workload_sql():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


@pytest.fixture(scope="module")
def db200():
    return generate_movie_database(GeneratorConfig(movies=200, directors=20, actors=50))


def test_regex_lexer_workload(benchmark, workload_sql):
    results = benchmark(lambda: [tokenize(sql) for sql in workload_sql])
    assert len(results) == 50


def test_char_lexer_workload_baseline(benchmark, workload_sql):
    results = benchmark(lambda: [tokenize_reference(sql) for sql in workload_sql])
    assert len(results) == 50


def test_lexers_token_identical(workload_sql):
    for sql in list(PAPER_QUERIES.values()) + workload_sql:
        fast = tokenize(sql)
        slow = tokenize_reference(sql)
        assert [(t.type, t.value, t.line, t.column) for t in fast] == [
            (t.type, t.value, t.line, t.column) for t in slow
        ]


def test_cold_translate_workload(benchmark, workload_sql):
    schema = movie_schema()

    def cold():
        translator = QueryTranslator(schema)
        return [translator.translate(sql) for sql in workload_sql]

    results = benchmark(cold)
    assert len(results) == 50


def test_warm_translate_workload(benchmark, workload_sql):
    schema = movie_schema()
    translator = QueryTranslator(schema)
    for sql in workload_sql:
        translator.translate(sql)
    results = benchmark(lambda: [translator.translate(sql) for sql in workload_sql])
    assert len(results) == 50
    report(
        "PERF: warm translate serves the workload from the translation LRU",
        cache=translator._cache.stats,
    )


def test_narrate_database_streaming(benchmark, db200):
    spec = movie_spec(db200.schema)
    budget = LengthBudget(max_sentences=12)
    text = benchmark(
        lambda: ContentNarrator(db200, spec=spec).narrate_database(budget=budget)
    )
    assert text.count(".") >= 10


def test_narrate_database_eager_baseline(benchmark, db200):
    spec = movie_spec(db200.schema)
    budget = LengthBudget(max_sentences=12)
    text = benchmark(
        lambda: ContentNarrator(db200, spec=spec).narrate_database(
            budget=budget, streaming=False
        )
    )
    assert text.count(".") >= 10


def test_streaming_matches_eager_byte_for_byte(db200):
    spec = movie_spec(db200.schema)
    narrator = ContentNarrator(db200, spec=spec)
    for budget in (
        LengthBudget(max_sentences=5),
        LengthBudget(max_sentences=12),
        LengthBudget(max_words=60),
        None,
    ):
        assert narrator.narrate_database(budget=budget) == narrator.narrate_database(
            budget=budget, streaming=False
        )
        assert narrator.narrate_relation(
            "MOVIES", budget=budget
        ) == narrator.narrate_relation("MOVIES", budget=budget, streaming=False)


def test_compiled_templates_match_interpreted_narration(db200):
    compiled_spec = movie_spec(db200.schema)
    interpreted_spec = movie_spec(db200.schema)
    interpreted_spec.registry.compile_templates = False
    budget = LengthBudget(max_sentences=12)
    fast = ContentNarrator(db200, spec=compiled_spec).narrate_database(budget=budget)
    slow = ContentNarrator(db200, spec=interpreted_spec).narrate_database(budget=budget)
    assert fast == slow
