"""PERF — end-to-end pipeline performance and scaling.

Not a paper figure: these benchmarks record the cost of each pipeline
stage (parse, validate+graph, classify, translate, execute) so regressions
in the reproduction are visible, and they demonstrate that translation
cost depends on query complexity, not on database size.
"""

import pytest
from conftest import report

from repro.datasets import (
    GeneratorConfig,
    PAPER_QUERIES,
    generate_movie_database,
    generate_workload,
)
from repro.engine import Executor
from repro.query_nl import QueryTranslator
from repro.content import movie_spec
from repro.querygraph import build_query_graph, classify_query
from repro.sql import parse_select

ALL_QUERIES = list(PAPER_QUERIES.values())


def test_parse_all_paper_queries(benchmark):
    results = benchmark(lambda: [parse_select(sql) for sql in ALL_QUERIES])
    assert len(results) == 9


def test_build_query_graphs(benchmark, movie_db):
    results = benchmark(
        lambda: [build_query_graph(movie_db.schema, sql) for sql in ALL_QUERIES]
    )
    assert len(results) == 9


def test_classify_all_paper_queries(benchmark, movie_db):
    results = benchmark(
        lambda: [classify_query(movie_db.schema, sql) for sql in ALL_QUERIES]
    )
    assert len(results) == 9


def test_translate_all_paper_queries(benchmark, movie_translator):
    results = benchmark(
        lambda: [movie_translator.translate(sql) for sql in ALL_QUERIES]
    )
    assert all(t.text for t in results)


def test_translate_generated_workload(benchmark, movie_translator):
    workload = generate_workload(queries_per_category=10, seed=42)
    results = benchmark(lambda: [movie_translator.translate(q.sql) for q in workload])
    assert len(results) == 50
    report(
        "PERF: translating a 50-query workload",
        queries=len(results),
        all_start_with_find=all(t.text.startswith("Find") for t in results),
    )


@pytest.mark.parametrize("movies", [50, 200])
def test_execution_scales_with_database_size(benchmark, movies):
    database = generate_movie_database(
        GeneratorConfig(movies=movies, directors=max(4, movies // 10), actors=max(10, movies // 4))
    )
    executor = Executor(database)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q2"])
    assert result.row_count >= 2
    report(
        f"PERF: Q2 execution over {movies} synthetic movies",
        total_rows=database.total_rows,
        answer_rows=result.row_count,
    )


def test_translation_cost_independent_of_database_size(benchmark):
    database = generate_movie_database(GeneratorConfig(movies=400, directors=40, actors=100))
    translator = QueryTranslator(database.schema, spec=movie_spec(database.schema))
    translation = benchmark(translator.translate, PAPER_QUERIES["Q2"])
    assert translation.text.startswith("Find")
