"""Multi-domain workload benchmark: the full pipeline per domain.

For every registered domain (``repro.datasets.domains``), run the whole
labelled corpus through translate + execute + narrate and report
per-query latency for the compiled pipeline against the interpreted
oracle — the same two arms the validation harness differences.  The
correctness guard is in-run: before timing, every domain's corpus is
byte-diffed across both arms with :class:`ValidationHarness`, so a
number is only ever printed for workloads the harness holds equivalent.

Standalone by design (not part of ``run_benchmarks.py``'s regression
sections): the domain corpora are a coverage artefact, not a committed
performance budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_domains.py
    PYTHONPATH=src python benchmarks/bench_domains.py --domain twitter --repeats 5
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.catalog import Schema  # noqa: E402
from repro.content.narrator import ContentNarrator  # noqa: E402
from repro.content.presets import NarrationSpec, TemplateRegistry  # noqa: E402
from repro.datasets.domains import DOMAIN_NAMES, Domain, get_domain  # noqa: E402
from repro.engine.executor import Executor  # noqa: E402
from repro.lexicon.lexicon import default_lexicon  # noqa: E402
from repro.query_nl.translator import QueryTranslator  # noqa: E402
from repro.validation import BASELINE_MODE, Mode, ValidationHarness  # noqa: E402

__all__ = ["bench_domains"]


def _pipeline(domain: Domain, compiled: bool):
    """(translate+execute+narrate) closure for one arm over one domain."""
    schema: Schema = domain.schema()
    database = domain.database()
    lexicon = domain.lexicon() or default_lexicon(schema)
    if compiled:
        translator = QueryTranslator(schema, lexicon=lexicon)
        executor = Executor(database)
    else:
        translator = QueryTranslator(
            schema, lexicon=lexicon, phrase_plans=False, cache_size=None
        )
        executor = Executor(
            database,
            compiled=False,
            use_caches=False,
            index_scans=False,
            parameterised=False,
        )
    spec = NarrationSpec(
        schema=schema,
        registry=TemplateRegistry(schema, compile_templates=compiled),
        lexicon=lexicon,
    )
    narrator = ContentNarrator(database, spec=spec)

    def run(sql: str) -> None:
        translator.translate(sql)
        try:
            result = executor.execute_sql(sql)
        except Exception:
            return  # impossible-category queries may raise; both arms agree
        narrator.narrate_query_answer(result, subject=sql)

    return run


def _time_corpus(domain: Domain, compiled: bool, repeats: int) -> float:
    """Median per-query latency (ms) over ``repeats`` full-corpus passes."""
    run = _pipeline(domain, compiled)
    corpus = domain.corpus()
    run(corpus[0].sql)  # warm caches, plans, templates
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for query in corpus:
            run(query.sql)
        samples.append((time.perf_counter() - start) / len(corpus))
    return statistics.median(samples) * 1000.0


def bench_domains(names, repeats: int) -> int:
    domains = [get_domain(name) for name in names]
    print("verifying equivalence (compiled vs oracle, rows engine) ...")
    report = ValidationHarness(
        domains=domains, modes=(BASELINE_MODE, Mode("oracle", "rows"))
    ).run()
    if not report.ok:
        print(report.render())
        return 1
    print(f"  ok: {report.total_comparisons} comparisons clean\n")

    width = max(len(name) for name in names)
    header = f"{'domain':<{width}}  queries  compiled ms/q  oracle ms/q  speedup"
    print(header)
    print("-" * len(header))
    for domain in domains:
        compiled_ms = _time_corpus(domain, compiled=True, repeats=repeats)
        oracle_ms = _time_corpus(domain, compiled=False, repeats=repeats)
        print(
            f"{domain.name:<{width}}  {len(domain.corpus()):>7}  "
            f"{compiled_ms:>13.3f}  {oracle_ms:>11.3f}  "
            f"{oracle_ms / compiled_ms:>6.1f}x"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--domain",
        action="append",
        choices=DOMAIN_NAMES,
        help="restrict to one domain (repeatable; default: all)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="corpus passes per arm")
    args = parser.parse_args(argv)
    return bench_domains(tuple(args.domain or DOMAIN_NAMES), args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
