"""FIG7 / Q7 — the aggregate query of Figure 7."""

from conftest import report

from repro.datasets import PAPER_NARRATIVES, PAPER_QUERIES
from repro.engine import Executor
from repro.querygraph import QueryCategory, build_query_graph, classify_query


def test_fig7_q7_query_graph_with_nested_block(benchmark, movie_db):
    graph = benchmark(build_query_graph, movie_db.schema, PAPER_QUERIES["Q7"])
    assert graph.has_aggregates()
    assert len(graph.nesting_edges) == 1
    assert graph.nesting_edges[0].in_having
    report(
        "FIG7 query graph of Q7 (aggregate query with nested HAVING block NQ1)",
        paper="MOVIES-CAST join, GROUP BY m.id/m.title, nested count over GENRE in HAVING",
        measured=graph.summary(),
    )


def test_fig7_q7_classification(benchmark, movie_db):
    classification = benchmark(classify_query, movie_db.schema, PAPER_QUERIES["Q7"])
    assert classification.category is QueryCategory.AGGREGATE


def test_fig7_q7_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q7"])
    assert translation.text == PAPER_NARRATIVES["Q7"]
    report(
        "Q7 narrative",
        paper=PAPER_NARRATIVES["Q7"],
        generated=translation.text,
        exact_match=True,
    )


def test_fig7_q7_execution(benchmark, movie_db):
    executor = Executor(movie_db)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q7"])
    titles = {row.get("m.title") for row in result.rows}
    assert titles == {"Match Point", "Melinda and Melinda", "Ocean Heist"}
