"""FIG5 / Q3 — the multi-instance graph query of Figure 5."""

from conftest import report

from repro.datasets import PAPER_NARRATIVES, PAPER_QUERIES
from repro.engine import Executor
from repro.querygraph import QueryCategory, build_query_graph, classify_query


def test_fig5_q3_query_graph(benchmark, movie_db):
    graph = benchmark(build_query_graph, movie_db.schema, PAPER_QUERIES["Q3"])
    assert graph.has_multiple_instances()
    assert len(graph.classes_of_relation("CAST")) == 2
    assert len(graph.classes_of_relation("ACTOR")) == 2
    report(
        "FIG5 query graph of Q3 (multi-instance query)",
        paper="two copies of CAST and ACTOR joined to the same MOVIES node",
        measured=graph.summary(),
    )


def test_fig5_q3_classification(benchmark, movie_db):
    classification = benchmark(classify_query, movie_db.schema, PAPER_QUERIES["Q3"])
    assert classification.category is QueryCategory.GRAPH


def test_fig5_q3_translation_uses_non_local_phrase(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q3"])
    assert translation.text.startswith("Find pairs of actors")
    assert translation.text.endswith("the same movie")
    report(
        "Q3 narrative (non-local 'pairs of' phrase)",
        paper=PAPER_NARRATIVES["Q3"],
        generated=translation.text,
        shape_match=True,
    )


def test_fig5_q3_execution(benchmark, movie_db):
    executor = Executor(movie_db)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q3"])
    assert result.row_count == 4
