"""Durability cost benchmark: what the WAL + fsync actually charge.

The durability layer's claim (``docs/performance.md``) is that
log-before-apply is affordable at the default group-commit policy: the
per-mutation cost is one pickle + crc32 + unbuffered ``write`` (a few
microseconds) plus an fsync *amortised over the batch*, which a real
mutation — parse, plan, execute, index maintenance — hides almost
entirely.  ``fsync="always"`` is the honest worst case: one disk sync
per mutation, priced so callers choose it knowingly.

Four measurements:

* ``embedded`` — raw :class:`~repro.storage.Database` insert throughput
  with no durability, then under ``never``/``batch``/``always``.  This
  is the microscope: a plain insert is ~10us, so every microsecond of
  WAL overhead is visible as slowdown.
* ``service`` — the same comparison through a ``NarrationSession``
  executing INSERT statements, i.e. what callers actually observe.  The
  **budget** lives here: ``fsync="batch"`` must stay within 2x of
  non-durable throughput, asserted in-run.
* ``group_commit`` — appends/second when 1 / 8 / 64 clients share each
  fsync (``batch_every``), showing the amortisation curve; the
  64-vs-1 ratio is a guarded speedup.
* ``recovery`` — ``Database.recover`` wall time against WAL length:
  recovery is a linear replay, and the numbers say what a
  ``checkpoint_every`` choice buys.
"""

from __future__ import annotations

import asyncio
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import movie_database  # noqa: E402
from repro.service import NarrationService  # noqa: E402
from repro.storage import (  # noqa: E402
    Database,
    DurabilityConfig,
    DurabilityManager,
    WriteAheadLog,
)

__all__ = ["bench_durability"]

#: The acceptance budget: group-commit durability within 2x of in-memory.
BUDGET_MAX_SLOWDOWN = 2.0

FSYNC_POLICIES = ("never", "batch", "always")


def _row(index):
    return {"id": 20_000 + index, "title": f"Bench {index}", "year": 1980 + index % 40}


def _sql(index):
    return (
        f"insert into MOVIES values ({20_000 + index},"
        f" 'Bench {index}', {1980 + index % 40})"
    )


def _fresh_dir(scratch, label):
    directory = Path(scratch) / label
    if directory.exists():  # pragma: no cover - repeats reuse labels
        shutil.rmtree(directory)
    return directory


def _embedded_run(count, config=None):
    database = movie_database()
    manager = None
    if config is not None:
        manager = DurabilityManager(config)
        database = manager.attach(database)
    start = time.perf_counter()
    for index in range(count):
        database.insert("MOVIES", _row(index))
    if manager is not None:
        manager.commit()
    elapsed = time.perf_counter() - start
    if manager is not None:
        manager.close()
    return elapsed


def _service_run(count, durability=None):
    async def main():
        async with NarrationService(max_workers=2) as service:
            session = service.session(
                database=movie_database(), durability=durability
            )
            start = time.perf_counter()
            for index in range(count):
                await session.execute(_sql(index))
            return time.perf_counter() - start

    return asyncio.run(main())


def _median_over(repeats, run):
    return statistics.median(run() for _ in range(repeats))


def bench_durability(quick: bool = False) -> dict:
    repeats = 2 if quick else 3
    embedded_n = 500 if quick else 2000
    service_n = 150 if quick else 400
    group_n = 512 if quick else 2048
    recovery_lengths = (100, 500) if quick else (200, 1000, 4000)

    scratch = Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        # Embedded: the raw per-mutation cost under the microscope.
        embedded = {}
        plain = _median_over(repeats, lambda: _embedded_run(embedded_n))
        embedded["plain_ops_s"] = round(embedded_n / plain, 1)
        for policy in FSYNC_POLICIES:
            durable = _median_over(
                repeats,
                lambda policy=policy: _embedded_run(
                    embedded_n,
                    DurabilityConfig(
                        directory=_fresh_dir(scratch, f"embedded-{policy}"),
                        fsync=policy,
                        checkpoint_every=0,
                    ),
                ),
            )
            embedded[f"{policy}_ops_s"] = round(embedded_n / durable, 1)
            embedded[f"{policy}_slowdown"] = round(durable / plain, 3)

        # Service: what a caller issuing INSERT statements observes —
        # and where the acceptance budget is enforced.
        service = {"budget_max_slowdown": BUDGET_MAX_SLOWDOWN}
        plain = _median_over(repeats, lambda: _service_run(service_n))
        service["plain_ops_s"] = round(service_n / plain, 1)
        for policy in FSYNC_POLICIES:
            durable = _median_over(
                repeats,
                lambda policy=policy: _service_run(
                    service_n,
                    DurabilityConfig(
                        directory=_fresh_dir(scratch, f"service-{policy}"),
                        fsync=policy,
                        checkpoint_every=0,
                    ),
                ),
            )
            service[f"{policy}_ops_s"] = round(service_n / durable, 1)
            service[f"{policy}_slowdown"] = round(durable / plain, 3)
        service["speedup_batch_vs_always"] = round(
            service["batch_ops_s"] / service["always_ops_s"], 1
        )
        service["passes_budget"] = service["batch_slowdown"] <= BUDGET_MAX_SLOWDOWN
        # The in-run guard: group-commit durability must stay affordable.
        assert service["passes_budget"], (
            f"durable fsync=batch throughput is {service['batch_slowdown']:.2f}x"
            f" the non-durable baseline (budget {BUDGET_MAX_SLOWDOWN}x)"
        )

        # Group commit: clients sharing one fsync per batch.
        group_commit = {}
        payload = ("insert", "MOVIES", _row(0), True)
        for clients in (1, 8, 64):
            def run(clients=clients):
                path = _fresh_dir(scratch, f"group-{clients}") / "wal.log"
                wal = WriteAheadLog(
                    path,
                    fsync="batch" if clients > 1 else "always",
                    batch_every=max(clients, 1),
                )
                start = time.perf_counter()
                for _ in range(group_n):
                    wal.append(payload)
                wal.commit()
                elapsed = time.perf_counter() - start
                wal.close()
                return elapsed

            elapsed = _median_over(repeats, run)
            group_commit[f"clients_{clients}_appends_s"] = round(
                group_n / elapsed, 1
            )
        # Informational, not a guarded speedup: the ratio is fsync-speed
        # vs CPU-speed and swings wildly across filesystems (a tmpfs CI
        # runner collapses it without anything having regressed).
        group_commit["amortisation_group64_vs_group1"] = round(
            group_commit["clients_64_appends_s"]
            / group_commit["clients_1_appends_s"],
            1,
        )

        # Recovery: linear replay priced per log length.
        recovery = {}
        for length in recovery_lengths:
            directory = _fresh_dir(scratch, f"recovery-{length}")
            manager = DurabilityManager(
                DurabilityConfig(
                    directory=directory, fsync="never", checkpoint_every=0
                )
            )
            database = manager.attach(movie_database())
            for index in range(length):
                database.insert("MOVIES", _row(index))
            manager.close()

            def run(directory=directory):
                start = time.perf_counter()
                Database.recover(directory)
                return time.perf_counter() - start

            elapsed = _median_over(repeats, run)
            recovery[str(length)] = {
                "seconds": round(elapsed, 4),
                "records_per_s": round(length / elapsed, 1),
            }

        return {
            "embedded": embedded,
            "service": service,
            "group_commit": group_commit,
            "recovery": recovery,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    import json

    print(json.dumps(bench_durability(quick="--quick" in sys.argv), indent=2))
