"""FIG1 — Figure 1: the movie database schema graph.

Regenerates the schema graph (relation/attribute nodes, projection and
join edges), reports its shape and times graph construction plus the
DFS traversal the content translator performs.
"""

from conftest import report

from repro.graph import SchemaGraph, dfs_traversal


def test_fig1_schema_graph_construction(benchmark, movie_db):
    graph = benchmark(SchemaGraph, movie_db.schema)
    assert len(graph.relation_nodes) == 6
    assert len(graph.join_edges) == 5
    assert len(graph.projection_edges) == 16
    report(
        "FIG1 schema graph (paper Figure 1)",
        paper="6 relations (MOVIES, DIRECTOR, DIRECTED, ACTOR, CAST, GENRE), 5 FK join edges",
        measured=graph.summary(),
    )


def test_fig1_dfs_traversal_and_patterns(benchmark, movie_db):
    graph = SchemaGraph(movie_db.schema)
    traversal = benchmark(dfs_traversal, graph, "MOVIES")
    assert traversal.order[0] == "MOVIES"
    assert set(traversal.order) == set(movie_db.schema.relation_names)
    report(
        "FIG1 traversal from the central relation",
        order=" -> ".join(traversal.order),
        patterns=", ".join(str(p) for p in traversal.patterns),
    )


def test_fig1_dot_rendering(benchmark, movie_db):
    graph = SchemaGraph(movie_db.schema)
    dot = benchmark(graph.to_dot)
    assert dot.startswith("digraph")
    assert '"MOVIES"' in dot
