#!/usr/bin/env python
"""Benchmark regression guard: diff a smoke run against the committed reference.

CI runs ``run_benchmarks.py --quick`` on every push, but until now only
the *in-run* translate guard (plan path vs full pipeline) could fail the
build — a regression in any other recorded speedup would land silently.
This script diffs the smoke run's recorded ratios against the committed
``BENCH_perf.json`` and fails when any guarded ratio drops below a
tolerance of its committed value.

Two classes of ratio are guarded differently:

* **machine-relative** ratios compare two measurements from the *same*
  run (interpreted vs compiled executor, naive vs batched service, plan
  path vs full pipeline, char vs regex lexer).  They are largely
  independent of how fast the runner is, but their denominators are
  often sub-millisecond warm medians that jitter up to ~2x on shared CI
  runners, so the floor is ``0.5x`` of the committed ratio — tight
  enough to catch any real compiled-path regression (those show up as
  5-100x collapses), loose enough not to flake.
* **frozen-reference** speedups compare a live measurement against a
  constant measured once on the reference container (the
  ``translation_reference``/``frontend_reference`` blocks).  A slower CI
  runner shrinks them all proportionally, so their floor is loose
  (``0.35x``) — they catch collapses, not drift.

Ratios whose committed value is below ``2.0`` are reported but never
fail the run: sub-2x numbers sit inside measurement noise, and the guard
exists for the order-of-magnitude compiled-path wins.

Usage::

    python benchmarks/check_regression.py bench_smoke.json BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

MACHINE_RELATIVE_TOLERANCE = 0.5
FROZEN_REFERENCE_TOLERANCE = 0.35
MIN_GUARDED_RATIO = 2.0

#: Ratio-valued keys that are not named ``speedup*``.
_EXTRA_RATIO_KEYS = {"plan_vs_full_ratio", "tokenize_speedup_vs_char"}

#: Sections whose ``speedup_*`` entries compare against frozen constants
#: measured on the reference container rather than against the same run.
_FROZEN_SECTIONS = {"translation_core", "narration_frontend"}


def _collect(node, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], float]]:
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if key == "speedup" or key.startswith("speedup_") or key in _EXTRA_RATIO_KEYS:
                    yield path + (key,), float(value)
            else:
                yield from _collect(value, path + (key,))


def _is_frozen_reference(path: Tuple[str, ...]) -> bool:
    return (
        path[0] in _FROZEN_SECTIONS
        and path[-1].startswith("speedup_")
        and path[-1] != "tokenize_speedup_vs_char"
    )


def check(smoke: dict, reference: dict) -> int:
    smoke_ratios: Dict[Tuple[str, ...], float] = dict(_collect(smoke))
    failures = []
    compared = 0
    for path, committed in _collect(reference):
        measured = smoke_ratios.get(path)
        if measured is None:
            continue  # quick mode measures a subset; only the overlap counts
        compared += 1
        frozen = _is_frozen_reference(path)
        tolerance = FROZEN_REFERENCE_TOLERANCE if frozen else MACHINE_RELATIVE_TOLERANCE
        floor = committed * tolerance
        label = ".".join(path)
        guarded = committed >= MIN_GUARDED_RATIO
        status = "ok"
        if measured < floor:
            if guarded:
                status = "FAIL"
                failures.append((label, measured, committed, floor))
            else:
                status = "below floor (unguarded: committed < 2x)"
        print(
            f"  {label}: {measured:.1f}x vs committed {committed:.1f}x"
            f" (floor {floor:.1f}x, {'frozen' if frozen else 'relative'}) {status}"
        )
    print(f"{compared} ratios compared, {len(failures)} regression(s)")
    for label, measured, committed, floor in failures:
        print(
            f"::error::benchmark regression: {label} measured {measured:.2f}x,"
            f" below {floor:.2f}x (50%/35% of committed {committed:.2f}x)"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("smoke", help="fresh bench_smoke.json from this run")
    parser.add_argument("reference", help="committed BENCH_perf.json")
    args = parser.parse_args(argv)
    smoke = json.loads(Path(args.smoke).read_text())
    reference = json.loads(Path(args.reference).read_text())
    return check(smoke, reference)


if __name__ == "__main__":
    sys.exit(main())
