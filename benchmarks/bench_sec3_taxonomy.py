"""TAXONOMY — Section 3.3's categorisation applied to a generated workload.

The paper's evaluation is the taxonomy itself: which queries are easy
(path/subgraph), which need non-local phrases (graph), which need
rewrites or idioms (nested/aggregate/impossible).  This benchmark
classifies the paper's nine queries plus a generated workload and checks
that the distribution matches the workload's labels.
"""

from collections import Counter

from conftest import report

from repro.datasets import generate_workload, paper_workload
from repro.querygraph import classify_query


def test_paper_query_taxonomy(benchmark, movie_db):
    workload = paper_workload()

    def classify_all():
        return [classify_query(movie_db.schema, q.sql).category.value for q in workload]

    categories = benchmark(classify_all)
    expected = [q.expected_category for q in workload]
    assert categories == expected
    report(
        "TAXONOMY of the paper's queries Q1-Q9",
        paper=dict(Counter(expected)),
        measured=dict(Counter(categories)),
    )


def test_generated_workload_taxonomy(benchmark, movie_db):
    workload = generate_workload(queries_per_category=10, seed=42)

    def classify_all():
        return [classify_query(movie_db.schema, q.sql).category.value for q in workload]

    categories = benchmark(classify_all)
    mismatches = [
        (q.name, got)
        for q, got in zip(workload, categories)
        if got != q.expected_category
    ]
    assert not mismatches
    report(
        "TAXONOMY of a 50-query generated workload",
        distribution=dict(Counter(categories)),
        mismatches=len(mismatches),
    )


def test_classification_difficulty_ordering(benchmark, movie_db):
    workload = paper_workload()
    difficulties = benchmark(
        lambda: {
            q.name: classify_query(movie_db.schema, q.sql).category.difficulty
            for q in workload
        }
    )
    assert difficulties["Q1"] < difficulties["Q2"] < difficulties["Q3"]
    assert difficulties["Q9"] == 6
    report("Difficulty ordinals (paper's escalation of difficulty)", **difficulties)
