#!/usr/bin/env python
"""Throughput benchmark for the concurrent narration service.

Measures requests/second for SQL→NL translation served by
:class:`repro.service.NarrationService` at 1, 8 and 64 concurrent
clients, against a *naive one-thread-per-request baseline*: N concurrent
client threads, each of whose requests is handled by a freshly spawned
thread running the full uncached pipeline (fresh translator, no
exact-text LRU, no phrase plans) — what a stateless per-request server
would do.

Two service streams are measured warm:

* ``repeated_text`` — clients replay the 50-query workload verbatim, so
  requests are served by the exact-text LRU and the direct-await fast
  path (the steady state of real "talk back" traffic);
* ``literal_variants`` — every request rotates the literal values, so
  the exact-text LRU never hits and every request exercises the
  shape-keyed phrase-plan path through the batching queue.

The in-run equivalence check asserts concurrent output is byte-identical
to sequential synchronous translation before any number is recorded, and
the run fails if warm batched throughput at 64 clients drops below 5x
the naive baseline (the service's reason to exist).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]

``benchmarks/run_benchmarks.py`` imports :func:`bench_service_throughput`
and records the result under ``service_throughput`` in ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import generate_workload, movie_database, movie_schema  # noqa: E402
from repro.query_nl.translator import QueryTranslator  # noqa: E402
from repro.service import NarrationService, ShardRouter, WorkerCrashed  # noqa: E402

CLIENT_COUNTS = (1, 8, 64)
WORKER_COUNTS = (1, 2, 4)

_DB_FACTORY = "repro.datasets.movies:movie_database"
_BENCH_DB_FACTORY = "repro.datasets.generator:bench_movie_database"
_SPEC_FACTORY = "repro.content.presets:movie_spec"

_NAMES = [
    "Brad Pitt", "Scarlett Johansson", "Mark Hamill",
    "Morgan Freeman", "Woody Allen", "G. Loucas",
]


def _workload():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


def _variant_batches(workload, rounds):
    """Literal-rotated copies of the workload (never the same text twice)."""
    return [
        [sql.replace("Brad Pitt", _NAMES[(r + i) % len(_NAMES)])
         for i, sql in enumerate(workload)]
        for r in range(rounds)
    ]


# ---------------------------------------------------------------------------
# The two servers under measurement
# ---------------------------------------------------------------------------


def _service_rps(
    schema, warm_batches, measure_batches, clients, max_workers, cache_size=512
) -> tuple:
    """Warm requests/second through one NarrationService session.

    ``warm_batches`` are translated once untimed (compiling every shape's
    phrase plan); every client then replays ``measure_batches``.  When the
    measured texts equal the warm ones the steady state is the exact-text
    LRU + direct-await path; when they only share *shapes* every request
    is a phrase-plan render through the batching queue.
    """

    async def client(session, batches):
        for batch in batches:
            for sql in batch:
                await session.translate(sql)

    async def main():
        async with NarrationService(max_workers=max_workers) as service:
            session = service.session(schema=schema, cache_size=cache_size)
            for batch in warm_batches:
                for sql in batch:
                    await session.translate(sql)
            requests = clients * sum(len(b) for b in measure_batches)
            start = time.perf_counter()
            await asyncio.gather(
                *[client(session, measure_batches) for _ in range(clients)]
            )
            elapsed = time.perf_counter() - start
            return requests / elapsed, session.stats()

    return asyncio.run(main())


def _naive_rps(schema, workload, clients) -> float:
    """The one-thread-per-request baseline's requests/second.

    Each of ``clients`` concurrent client threads issues the workload
    sequentially; every single request spawns a fresh handler thread
    running the full pipeline with no shared translator state.
    """

    def handle(sql):
        QueryTranslator(schema, cache_size=None, phrase_plans=False).translate(sql)

    def client():
        for sql in workload:
            handler = threading.Thread(target=handle, args=(sql,))
            handler.start()
            handler.join()

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return clients * len(workload) / elapsed


# ---------------------------------------------------------------------------
# Equivalence (checked before any number is recorded)
# ---------------------------------------------------------------------------


def verify_service_equivalence(schema, workload, clients: int = 64) -> str:
    """Concurrent results must equal sequential synchronous translation."""
    sync = QueryTranslator(schema, cache_size=None, phrase_plans=True)
    expected = [sync.translate(sql) for sql in workload]

    async def replay(session):
        return await asyncio.gather(*[session.translate(sql) for sql in workload])

    async def main():
        async with NarrationService(max_workers=4) as service:
            session = service.session(schema=schema)
            return await asyncio.gather(*[replay(session) for _ in range(clients)])

    for results in asyncio.run(main()):
        for fast, slow in zip(results, expected):
            if fast != slow:  # compares every textual field
                raise AssertionError(
                    f"concurrent translation diverged from sync on {slow.sql!r}"
                )
    return (
        f"byte-identical to the synchronous pipeline"
        f" ({clients} clients x {len(workload)} queries)"
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def bench_service_throughput(quick: bool = False, max_workers: int = 4) -> dict:
    schema = movie_schema()
    workload = _workload()
    rounds = 1 if quick else 4
    results: dict = {
        "workload_queries": len(workload),
        "max_workers": max_workers,
        "baseline": (
            "one thread per request, each running the full uncached pipeline"
            " (fresh translator, no LRU, no phrase plans)"
        ),
        "equivalence": verify_service_equivalence(schema, workload),
        "clients": {},
    }
    variant_batches = _variant_batches(workload, 1 + max(2, rounds))
    for clients in CLIENT_COUNTS:
        repeated_rps, stats = _service_rps(
            schema, [workload], [workload] * rounds, clients, max_workers
        )
        naive = _naive_rps(schema, workload, clients)
        results["clients"][str(clients)] = {
            "service_rps": round(repeated_rps, 1),
            "naive_rps": round(naive, 1),
            "speedup": round(repeated_rps / max(naive, 1e-9), 1),
        }
        if clients == CLIENT_COUNTS[-1]:
            results["batching_stats"] = stats["requests"]
    # Fresh texts over warm *plans*, with the exact-text LRU disabled: every
    # request is a shape-keyed plan render through the batching queue.
    variants_rps, variant_stats = _service_rps(
        schema,
        variant_batches[:1],
        variant_batches[1:],
        CLIENT_COUNTS[-1],
        max_workers,
        cache_size=None,
    )
    results["literal_variants_rps_64"] = round(variants_rps, 1)
    results["literal_variants_plan_store"] = variant_stats["translator"]["plan_store"]

    top = results["clients"][str(CLIENT_COUNTS[-1])]
    if top["speedup"] < 5:
        raise AssertionError(
            "service-bench regression: warm batched throughput at"
            f" {CLIENT_COUNTS[-1]} clients is only {top['speedup']}x the naive"
            " one-thread-per-request baseline (expected >= 5x)"
        )
    return results


# ---------------------------------------------------------------------------
# The shard tier
# ---------------------------------------------------------------------------


def _percentile(sorted_seconds, fraction: float) -> float:
    if not sorted_seconds:
        return 0.0
    index = min(len(sorted_seconds) - 1, int(fraction * (len(sorted_seconds) - 1)))
    return sorted_seconds[index]


def _client_batches(workload, clients: int, rounds: int):
    """Per-client literal-variant batches: no two clients share a text.

    Each client rendering its *own* variants is what makes the stream a
    real per-request workload — were every client to replay identical
    texts, the session's shape-batching would coalesce them into shared
    renders and the benchmark would measure queueing, not translation.
    """
    batches = _variant_batches(workload, clients * rounds)
    return [batches[index * rounds : (index + 1) * rounds] for index in range(clients)]


def _router_rps(workers: int, clients: int, warm_batch, client_batches) -> tuple:
    """Requests/second and sorted latencies through a ``ShardRouter`` fleet.

    The measured stream is warm SQL *execution* on the 200-movie shared
    benchmark database — ~2.6ms of real engine work per request, the
    regime the shard tier exists for.  (A translate-only cache-hit stream
    is a dict lookup in-process and can only lose to the IPC round-trip;
    that overhead is recorded separately as ``ipc_round_trip_p50_ms``.)
    Each client executes its own literal variants, so nothing coalesces
    across clients and every request costs a real execution on its
    shape's worker.
    """

    async def client(router, batches, latencies):
        for batch in batches:
            for sql in batch:
                start = time.perf_counter()
                await router.execute(sql)
                latencies.append(time.perf_counter() - start)

    async def main():
        async with ShardRouter(
            _BENCH_DB_FACTORY, spec_factory=_SPEC_FACTORY, workers=workers
        ) as router:
            for sql in warm_batch:  # compiles every shape's plan, untimed
                await router.execute(sql)
            latencies: list = []
            start = time.perf_counter()
            await asyncio.gather(
                *[
                    client(router, client_batches[index], latencies)
                    for index in range(clients)
                ]
            )
            elapsed = time.perf_counter() - start
            return len(latencies) / elapsed, sorted(latencies)

    return asyncio.run(main())


def _single_rps(clients: int, warm_batch, client_batches) -> float:
    """One in-process session's requests/second on the identical stream."""
    from repro.datasets.generator import bench_movie_database

    database = bench_movie_database()

    async def client(session, batches):
        for batch in batches:
            for sql in batch:
                await session.execute(sql)

    async def main():
        async with NarrationService(max_workers=4) as service:
            session = service.session(database=database)
            for sql in warm_batch:
                await session.execute(sql)
            requests = sum(
                len(batch) for batches in client_batches for batch in batches
            )
            start = time.perf_counter()
            await asyncio.gather(
                *[
                    client(session, client_batches[index])
                    for index in range(clients)
                ]
            )
            return requests / (time.perf_counter() - start)

    return asyncio.run(main())


def _ipc_round_trip_p50_ms(workload) -> float:
    """Median one-worker one-client latency on a pure cache-hit stream.

    Every request is an exact-text LRU hit on the worker (small seed
    database, translate only), so the number is the shard tier's own
    per-request overhead: one pickle round-trip plus dispatch.
    """

    async def main():
        async with ShardRouter(
            _DB_FACTORY, spec_factory=_SPEC_FACTORY, workers=1
        ) as router:
            for sql in workload:
                await router.translate(sql)
            latencies = []
            for sql in workload * 2:
                start = time.perf_counter()
                await router.translate(sql)
                latencies.append(time.perf_counter() - start)
            return sorted(latencies)

    return round(_percentile(asyncio.run(main()), 0.50) * 1e3, 3)


def verify_shard_equivalence(workload) -> str:
    """Shard-tier output must be byte-identical to the single-process oracle.

    The checked history is deliberately hostile: the corpus runs with a
    mutation broadcast in the middle, and one worker is SIGKILLed
    mid-workload — the surviving results, the respawned worker's results
    and the post-mutation reads must all equal the oracle's.
    """
    mutation = "insert into GENRE values (4, 'shard-bench')"
    probe = "select g.genre from GENRE g where g.mid = 4"
    database = movie_database()

    async def retry(call):
        for _ in range(120):
            try:
                return await call()
            except WorkerCrashed:
                await asyncio.sleep(0.25)
        raise AssertionError("worker never respawned")

    async def history(target, kill=None):
        outputs = []
        for index, sql in enumerate(workload):
            if index == len(workload) // 3:
                outputs.append(await retry(lambda: target.execute(mutation)))
                outputs.append(await retry(lambda: target.execute(probe)))
            if kill is not None and index == len(workload) // 2:
                kill()
            outputs.append(await retry(lambda s=sql: target.translate(s)))
            outputs.append(await retry(lambda s=sql: target.execute(s)))
        return outputs

    async def main():
        async with NarrationService(max_workers=2) as service:
            oracle = service.session(database=database)
            expected = await history(oracle)
        async with ShardRouter(_DB_FACTORY, workers=2) as router:
            got = await history(router, kill=lambda: router.kill_worker(0))
            stats = await router.stats()
        if got != expected:
            for index, (a, b) in enumerate(zip(got, expected)):
                if a != b:
                    raise AssertionError(
                        f"shard tier diverged from the oracle at step {index}"
                    )
        if stats["router"]["respawns"] < 1:
            raise AssertionError("the crash drill did not exercise a respawn")
        return (
            f"byte-identical to the single-process oracle"
            f" ({len(workload)} queries, interleaved mutation,"
            f" 1 worker SIGKILLed and respawned mid-workload)"
        )

    return asyncio.run(main())


def bench_shard_tier(quick: bool = False, worker_counts=WORKER_COUNTS) -> dict:
    """Requests/second and latency for 1/2/4-worker fleets at 1/8/64 clients.

    ``speedup_vs_single_process`` compares each fleet's 64-client
    throughput against one in-process session on the identical stream.
    The >=3x scaling expectation at 4 workers is only *asserted* when the
    machine actually has 4 cores — on smaller runners the recorded number
    is honest but the guard is informational (``cpu_count`` is recorded
    so readers can tell which regime produced the artifact).
    """
    workload = _workload()
    rounds = 1 if quick else 2
    cpus = os.cpu_count() or 1
    warm_batch = workload
    streams = {
        clients: _client_batches(workload, clients, rounds)
        for clients in CLIENT_COUNTS
    }
    results: dict = {
        "workload_queries": len(workload),
        "cpu_count": cpus,
        "stream": (
            "warm SQL execution of per-client literal variants on the"
            " 200-movie shared benchmark database (~2.6ms engine work per"
            " request)"
        ),
        "baseline": (
            "one in-process NarrationService session serving the identical"
            " execution stream"
        ),
        "equivalence": verify_shard_equivalence(workload),
        "ipc_round_trip_p50_ms": _ipc_round_trip_p50_ms(workload),
        "workers": {},
    }
    single = {
        clients: _single_rps(clients, warm_batch, streams[clients])
        for clients in CLIENT_COUNTS
    }
    results["single_process_rps"] = {
        str(clients): round(rps, 1) for clients, rps in single.items()
    }
    top_clients = CLIENT_COUNTS[-1]
    for workers in worker_counts:
        per_clients = {}
        for clients in CLIENT_COUNTS:
            rps, latencies = _router_rps(
                workers, clients, warm_batch, streams[clients]
            )
            per_clients[str(clients)] = {
                "rps": round(rps, 1),
                "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
                "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
            }
        entry = {
            "clients": per_clients,
            "speedup_vs_single_process": round(
                per_clients[str(top_clients)]["rps"] / max(single[top_clients], 1e-9),
                2,
            ),
        }
        results["workers"][str(workers)] = entry
    top_workers = worker_counts[-1]
    scaling = results["workers"][str(top_workers)]["speedup_vs_single_process"]
    if top_workers >= 4 and cpus >= top_workers and scaling < 3:
        raise AssertionError(
            f"shard-bench regression: {top_workers} workers reach only"
            f" {scaling}x single-process throughput on a {cpus}-core machine"
            " (expected >= 3x)"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single warm round")
    parser.add_argument("--max-workers", type=int, default=4)
    parser.add_argument(
        "--shard-tier",
        action="store_true",
        help="also run the multi-process shard-tier benchmark",
    )
    parser.add_argument(
        "--shard-only",
        action="store_true",
        help="run only the shard-tier benchmark (CI smoke job)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        nargs="+",
        default=list(WORKER_COUNTS),
        help="fleet sizes to measure (the CI smoke job passes just 2)",
    )
    args = parser.parse_args(argv)
    if not args.shard_only:
        results = bench_service_throughput(
            quick=args.quick, max_workers=args.max_workers
        )
        print(f"equivalence: {results['equivalence']}")
        for clients, entry in results["clients"].items():
            print(
                f"  {clients:>2} clients: service {entry['service_rps']:>9.1f} req/s,"
                f" naive {entry['naive_rps']:>7.1f} req/s ({entry['speedup']}x)"
            )
        print(
            f"  64 clients, literal variants: {results['literal_variants_rps_64']:.1f} req/s"
        )
    if args.shard_tier or args.shard_only:
        shard = bench_shard_tier(
            quick=args.quick, worker_counts=tuple(args.shard_workers)
        )
        print(f"shard tier ({shard['cpu_count']} cores): {shard['equivalence']}")
        for workers, entry in shard["workers"].items():
            top = entry["clients"][str(CLIENT_COUNTS[-1])]
            print(
                f"  {workers} worker(s), {CLIENT_COUNTS[-1]} clients:"
                f" {top['rps']:>8.1f} req/s"
                f" (p50 {top['p50_ms']:.2f}ms, p95 {top['p95_ms']:.2f}ms,"
                f" {entry['speedup_vs_single_process']}x single-process)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
