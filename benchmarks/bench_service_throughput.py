#!/usr/bin/env python
"""Throughput benchmark for the concurrent narration service.

Measures requests/second for SQL→NL translation served by
:class:`repro.service.NarrationService` at 1, 8 and 64 concurrent
clients, against a *naive one-thread-per-request baseline*: N concurrent
client threads, each of whose requests is handled by a freshly spawned
thread running the full uncached pipeline (fresh translator, no
exact-text LRU, no phrase plans) — what a stateless per-request server
would do.

Two service streams are measured warm:

* ``repeated_text`` — clients replay the 50-query workload verbatim, so
  requests are served by the exact-text LRU and the direct-await fast
  path (the steady state of real "talk back" traffic);
* ``literal_variants`` — every request rotates the literal values, so
  the exact-text LRU never hits and every request exercises the
  shape-keyed phrase-plan path through the batching queue.

The in-run equivalence check asserts concurrent output is byte-identical
to sequential synchronous translation before any number is recorded, and
the run fails if warm batched throughput at 64 clients drops below 5x
the naive baseline (the service's reason to exist).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]

``benchmarks/run_benchmarks.py`` imports :func:`bench_service_throughput`
and records the result under ``service_throughput`` in ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import generate_workload, movie_schema  # noqa: E402
from repro.query_nl.translator import QueryTranslator  # noqa: E402
from repro.service import NarrationService  # noqa: E402

CLIENT_COUNTS = (1, 8, 64)

_NAMES = [
    "Brad Pitt", "Scarlett Johansson", "Mark Hamill",
    "Morgan Freeman", "Woody Allen", "G. Loucas",
]


def _workload():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


def _variant_batches(workload, rounds):
    """Literal-rotated copies of the workload (never the same text twice)."""
    return [
        [sql.replace("Brad Pitt", _NAMES[(r + i) % len(_NAMES)])
         for i, sql in enumerate(workload)]
        for r in range(rounds)
    ]


# ---------------------------------------------------------------------------
# The two servers under measurement
# ---------------------------------------------------------------------------


def _service_rps(
    schema, warm_batches, measure_batches, clients, max_workers, cache_size=512
) -> tuple:
    """Warm requests/second through one NarrationService session.

    ``warm_batches`` are translated once untimed (compiling every shape's
    phrase plan); every client then replays ``measure_batches``.  When the
    measured texts equal the warm ones the steady state is the exact-text
    LRU + direct-await path; when they only share *shapes* every request
    is a phrase-plan render through the batching queue.
    """

    async def client(session, batches):
        for batch in batches:
            for sql in batch:
                await session.translate(sql)

    async def main():
        async with NarrationService(max_workers=max_workers) as service:
            session = service.session(schema=schema, cache_size=cache_size)
            for batch in warm_batches:
                for sql in batch:
                    await session.translate(sql)
            requests = clients * sum(len(b) for b in measure_batches)
            start = time.perf_counter()
            await asyncio.gather(
                *[client(session, measure_batches) for _ in range(clients)]
            )
            elapsed = time.perf_counter() - start
            return requests / elapsed, session.stats()

    return asyncio.run(main())


def _naive_rps(schema, workload, clients) -> float:
    """The one-thread-per-request baseline's requests/second.

    Each of ``clients`` concurrent client threads issues the workload
    sequentially; every single request spawns a fresh handler thread
    running the full pipeline with no shared translator state.
    """

    def handle(sql):
        QueryTranslator(schema, cache_size=None, phrase_plans=False).translate(sql)

    def client():
        for sql in workload:
            handler = threading.Thread(target=handle, args=(sql,))
            handler.start()
            handler.join()

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return clients * len(workload) / elapsed


# ---------------------------------------------------------------------------
# Equivalence (checked before any number is recorded)
# ---------------------------------------------------------------------------


def verify_service_equivalence(schema, workload, clients: int = 64) -> str:
    """Concurrent results must equal sequential synchronous translation."""
    sync = QueryTranslator(schema, cache_size=None, phrase_plans=True)
    expected = [sync.translate(sql) for sql in workload]

    async def replay(session):
        return await asyncio.gather(*[session.translate(sql) for sql in workload])

    async def main():
        async with NarrationService(max_workers=4) as service:
            session = service.session(schema=schema)
            return await asyncio.gather(*[replay(session) for _ in range(clients)])

    for results in asyncio.run(main()):
        for fast, slow in zip(results, expected):
            if fast != slow:  # compares every textual field
                raise AssertionError(
                    f"concurrent translation diverged from sync on {slow.sql!r}"
                )
    return (
        f"byte-identical to the synchronous pipeline"
        f" ({clients} clients x {len(workload)} queries)"
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def bench_service_throughput(quick: bool = False, max_workers: int = 4) -> dict:
    schema = movie_schema()
    workload = _workload()
    rounds = 1 if quick else 4
    results: dict = {
        "workload_queries": len(workload),
        "max_workers": max_workers,
        "baseline": (
            "one thread per request, each running the full uncached pipeline"
            " (fresh translator, no LRU, no phrase plans)"
        ),
        "equivalence": verify_service_equivalence(schema, workload),
        "clients": {},
    }
    variant_batches = _variant_batches(workload, 1 + max(2, rounds))
    for clients in CLIENT_COUNTS:
        repeated_rps, stats = _service_rps(
            schema, [workload], [workload] * rounds, clients, max_workers
        )
        naive = _naive_rps(schema, workload, clients)
        results["clients"][str(clients)] = {
            "service_rps": round(repeated_rps, 1),
            "naive_rps": round(naive, 1),
            "speedup": round(repeated_rps / max(naive, 1e-9), 1),
        }
        if clients == CLIENT_COUNTS[-1]:
            results["batching_stats"] = stats["requests"]
    # Fresh texts over warm *plans*, with the exact-text LRU disabled: every
    # request is a shape-keyed plan render through the batching queue.
    variants_rps, variant_stats = _service_rps(
        schema,
        variant_batches[:1],
        variant_batches[1:],
        CLIENT_COUNTS[-1],
        max_workers,
        cache_size=None,
    )
    results["literal_variants_rps_64"] = round(variants_rps, 1)
    results["literal_variants_plan_store"] = variant_stats["translator"]["plan_store"]

    top = results["clients"][str(CLIENT_COUNTS[-1])]
    if top["speedup"] < 5:
        raise AssertionError(
            "service-bench regression: warm batched throughput at"
            f" {CLIENT_COUNTS[-1]} clients is only {top['speedup']}x the naive"
            " one-thread-per-request baseline (expected >= 5x)"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single warm round")
    parser.add_argument("--max-workers", type=int, default=4)
    args = parser.parse_args(argv)
    results = bench_service_throughput(quick=args.quick, max_workers=args.max_workers)
    print(f"equivalence: {results['equivalence']}")
    for clients, entry in results["clients"].items():
        print(
            f"  {clients:>2} clients: service {entry['service_rps']:>9.1f} req/s,"
            f" naive {entry['naive_rps']:>7.1f} req/s ({entry['speedup']}x)"
        )
    print(f"  64 clients, literal variants: {results['literal_variants_rps_64']:.1f} req/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
