"""FIG3 / Q1 — the path query of Figure 3 and its two narratives."""

from conftest import report

from repro.datasets import PAPER_NARRATIVES, PAPER_QUERIES
from repro.engine import Executor
from repro.querygraph import QueryCategory, build_query_graph, classify_query


def test_fig3_q1_query_graph(benchmark, movie_db):
    graph = benchmark(build_query_graph, movie_db.schema, PAPER_QUERIES["Q1"])
    assert set(graph.bindings) == {"m", "c", "a"}
    assert len(graph.join_edges) == 2
    assert all(edge.is_foreign_key for edge in graph.join_edges)
    report(
        "FIG3 query graph of Q1 (path query)",
        paper="MOVIES - CAST - ACTOR path with FK joins and a.name = 'Brad Pitt'",
        measured=graph.summary(),
    )


def test_fig3_q1_classification(benchmark, movie_db):
    classification = benchmark(classify_query, movie_db.schema, PAPER_QUERIES["Q1"])
    assert classification.category is QueryCategory.PATH


def test_fig3_q1_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q1"])
    assert translation.text == PAPER_NARRATIVES["Q1"]
    assert translation.concise == PAPER_NARRATIVES["Q1_concise"]
    report(
        "Q1 narrative",
        paper=PAPER_NARRATIVES["Q1"],
        generated=translation.text,
        concise=translation.concise,
        exact_match=translation.text == PAPER_NARRATIVES["Q1"],
    )


def test_fig3_q1_execution(benchmark, movie_db):
    executor = Executor(movie_db)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q1"])
    assert set(result.column("m.title")) == {"Troy", "Seven", "Ocean Heist"}
