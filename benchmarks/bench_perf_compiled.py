"""PERF — the compiled execution pipeline vs. the interpreted one.

Demonstrates the speedup of the compiled executor (closure-compiled
expressions, index-backed scans, plan/parse caches, correlated-subquery
memo) over the fully-interpreted seed behaviour, on the paper's Q1-Q9
and on generated databases at 50/200/1000 movies, and asserts both paths
return identical answers.
"""

import time

import pytest
from conftest import report

from repro.datasets import (
    GeneratorConfig,
    PAPER_QUERIES,
    generate_movie_database,
    generate_workload,
)
from repro.engine import Executor

#: Queries cheap enough to run interpreted even at 1000 movies.
_SCALING_QUERIES = ("Q1", "Q2", "Q7")


def _interpreted(database) -> Executor:
    return Executor(database, compiled=False, use_caches=False, index_scans=False)


@pytest.fixture(scope="module")
def db200():
    return generate_movie_database(GeneratorConfig(movies=200, directors=20, actors=50))


def test_compiled_executor_all_paper_queries(benchmark, db200):
    executor = Executor(db200)
    results = benchmark(
        lambda: [executor.execute_sql(sql) for sql in PAPER_QUERIES.values()]
    )
    assert len(results) == 9


@pytest.mark.parametrize("movies", [50, 200, 1000])
def test_q2_compiled_scales(benchmark, movies):
    database = generate_movie_database(
        GeneratorConfig(movies=movies, directors=max(4, movies // 10), actors=max(10, movies // 4))
    )
    executor = Executor(database)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q2"])
    assert result.row_count >= 2
    report(
        f"PERF: compiled Q2 over {movies} synthetic movies",
        total_rows=database.total_rows,
        answer_rows=result.row_count,
    )


@pytest.mark.parametrize("name", ["Q5", "Q6", "Q7"])
def test_nested_queries_compiled(benchmark, db200, name):
    executor = Executor(db200)
    result = benchmark(executor.execute_sql, PAPER_QUERIES[name])
    assert result.columns
    report(
        f"PERF: compiled {name} over 200 synthetic movies",
        answer_rows=result.row_count,
        subquery_memo=executor.cache_stats["subquery"],
    )


def test_generated_workload_compiled(benchmark, db200):
    workload = generate_workload(queries_per_category=10, seed=42)
    executor = Executor(db200)
    results = benchmark(lambda: [executor.execute_sql(q.sql) for q in workload])
    assert len(results) == 50


def test_compiled_matches_interpreted_and_reports_speedup(db200):
    """Non-timed sanity: identical answers, and a visible speedup summary.

    Interpreted runs use the small paper queries only — the interpreted
    nested queries at 200 movies take minutes, which is the very problem
    this layer solves (run ``benchmarks/run_benchmarks.py`` for the full
    comparison that backs BENCH_perf.json).
    """
    fast = Executor(db200)
    slow = _interpreted(db200)

    def median_seconds(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return sorted(times)[len(times) // 2]

    speedups = {}
    for name in _SCALING_QUERIES:
        sql = PAPER_QUERIES[name]
        a = fast.execute_sql(sql)  # prime the caches
        b = slow.execute_sql(sql)
        assert a.columns == b.columns and a.rows == b.rows, name
        warm = median_seconds(lambda: fast.execute_sql(sql))
        interpreted_time = median_seconds(lambda: slow.execute_sql(sql))
        speedups[name] = round(interpreted_time / max(warm, 1e-9), 1)
    report("PERF: interpreted-time / compiled-warm-time (200 movies)", **speedups)
    # Q1 is too small at this scale to assert on; the acceptance queries
    # must show a clear win.
    assert speedups["Q2"] >= 2 and speedups["Q7"] >= 2
