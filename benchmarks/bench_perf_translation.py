"""PERF — the compiled translation core vs. its interpreted oracles.

Stage-split coverage of the SQL→NL hot path: table-driven Pratt parsing
vs. the recursive-descent cascade, fused validate+build vs. the
standalone-validator pipeline, and shape-keyed phrase-plan rendering vs.
the full category-translator pipeline — asserting byte equivalence
wherever both paths run.  The JSON artifact twin (with the pre-PR
reference numbers) lives in ``run_benchmarks.py``.
"""

import pytest

from repro.datasets import generate_workload, movie_schema
from repro.query_nl.translator import QueryTranslator
from repro.querygraph.builder import QueryGraphBuilder, use_reference_validation
from repro.sql.lexer import tokenize
from repro.sql.parser import Parser, ReferenceParser, parse_sql


@pytest.fixture(scope="module")
def workload_sql():
    return [q.sql for q in generate_workload(queries_per_category=10, seed=42)]


@pytest.fixture(scope="module")
def workload_tokens(workload_sql):
    return [tokenize(sql) for sql in workload_sql]


@pytest.fixture(scope="module")
def workload_statements(workload_sql):
    return [parse_sql(sql) for sql in workload_sql]


def test_pratt_parse_workload(benchmark, workload_tokens):
    results = benchmark(
        lambda: [Parser(tokens).parse_statement() for tokens in workload_tokens]
    )
    assert len(results) == 50


def test_reference_parse_workload_baseline(benchmark, workload_tokens):
    results = benchmark(
        lambda: [ReferenceParser(tokens).parse_statement() for tokens in workload_tokens]
    )
    assert len(results) == 50


def test_parsers_ast_identical(workload_sql):
    for sql in workload_sql:
        assert (
            Parser(tokenize(sql)).parse_statement()
            == ReferenceParser(tokenize(sql)).parse_statement()
        )


def test_fused_build_workload(benchmark, workload_statements):
    schema = movie_schema()
    builder = QueryGraphBuilder(schema)
    results = benchmark(
        lambda: [builder.build(statement) for statement in workload_statements]
    )
    assert len(results) == 50


def test_reference_build_workload_baseline(benchmark, workload_statements):
    schema = movie_schema()

    def build():
        builder = QueryGraphBuilder(schema)
        with use_reference_validation():
            return [builder.build(statement) for statement in workload_statements]

    results = benchmark(build)
    assert len(results) == 50


def test_plan_translate_workload(benchmark, workload_sql):
    schema = movie_schema()
    warm = QueryTranslator(schema, cache_size=None)
    for sql in workload_sql:
        warm.translate(sql)  # compile the shape plans once

    def cold():
        translator = QueryTranslator(schema)
        return [translator.translate(sql) for sql in workload_sql]

    results = benchmark(cold)
    assert len(results) == 50


def test_full_pipeline_workload_baseline(benchmark, workload_sql):
    schema = movie_schema()

    def cold():
        translator = QueryTranslator(schema, phrase_plans=False)
        return [translator.translate(sql) for sql in workload_sql]

    results = benchmark(cold)
    assert len(results) == 50


def test_plan_path_matches_full_pipeline(workload_sql):
    schema = movie_schema()
    fast = QueryTranslator(schema, cache_size=None)
    oracle = QueryTranslator(schema, cache_size=None, phrase_plans=False)
    for sql in workload_sql:
        fast.translate(sql)
    for sql in workload_sql:
        assert fast.translate(sql) == oracle.translate(sql)
