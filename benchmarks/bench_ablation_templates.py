"""ABL-TEMPLATE — local template labels vs non-local phrases (Section 3.3.3).

The paper shows that translating Q3 with only local, per-attribute labels
yields "quite unnatural" text, while a natural sentence needs "whole parts
of the query graph ... translated into individual phrases".  The ablation
compares the declarative translators (which use non-local phrases and
idioms) against the purely local/procedural baseline on length, redundancy
and element coverage.
"""

from conftest import report

from repro.datasets import PAPER_QUERIES
from repro.evaluation import query_coverage, redundancy_ratio
from repro.nlg.realize import word_count

GRAPH_QUERIES = ["Q3", "Q4", "Q8", "Q9"]


def test_declarative_translations(benchmark, movie_translator):
    def translate_all():
        return {name: movie_translator.translate(PAPER_QUERIES[name]).text for name in GRAPH_QUERIES}

    texts = benchmark(translate_all)
    assert all(text.startswith("Find") for text in texts.values())


def test_procedural_baseline_translations(benchmark, movie_translator):
    def translate_all():
        return {
            name: movie_translator.translate_procedurally(PAPER_QUERIES[name]).text
            for name in GRAPH_QUERIES
        }

    texts = benchmark(translate_all)
    assert all(texts.values())


def test_non_local_phrases_beat_local_baseline(benchmark, movie_db, movie_translator):
    def compare():
        rows = {}
        for name in GRAPH_QUERIES:
            declarative = movie_translator.translate(PAPER_QUERIES[name]).text
            procedural = movie_translator.translate_procedurally(PAPER_QUERIES[name]).text
            rows[name] = {
                "declarative_words": word_count(declarative),
                "procedural_words": word_count(procedural),
                "declarative_redundancy": round(redundancy_ratio(declarative), 3),
                "procedural_redundancy": round(redundancy_ratio(procedural), 3),
                "declarative_coverage": round(
                    query_coverage(movie_db.schema, PAPER_QUERIES[name], declarative), 3
                ),
            }
        return rows

    rows = benchmark(compare)
    for name, metrics in rows.items():
        assert metrics["declarative_words"] < metrics["procedural_words"], name
    report(
        "ABL-TEMPLATE: non-local declarative phrases vs local/procedural baseline",
        paper="local labels alone give 'quite unnatural' text for graph queries",
        **rows,
    )
