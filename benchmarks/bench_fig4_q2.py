"""FIG4 / Q2 — the subgraph query of Figure 4."""

from conftest import report

from repro.datasets import PAPER_NARRATIVES, PAPER_QUERIES
from repro.engine import Executor
from repro.querygraph import QueryCategory, build_query_graph, classify_query


def test_fig4_q2_query_graph(benchmark, movie_db):
    graph = benchmark(build_query_graph, movie_db.schema, PAPER_QUERIES["Q2"])
    assert len(graph.classes) == 6
    assert graph.degree("m") == 3
    assert not graph.has_cycle()
    report(
        "FIG4 query graph of Q2 (subgraph query)",
        paper="six relations, MOVIES joined to CAST/DIRECTED/GENRE, constants on DIRECTOR and GENRE",
        measured=graph.summary(),
    )


def test_fig4_q2_classification(benchmark, movie_db):
    classification = benchmark(classify_query, movie_db.schema, PAPER_QUERIES["Q2"])
    assert classification.category is QueryCategory.SUBGRAPH


def test_fig4_q2_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q2"])
    assert translation.text == PAPER_NARRATIVES["Q2"]
    report(
        "Q2 narrative",
        paper=PAPER_NARRATIVES["Q2"],
        generated=translation.text,
        exact_match=True,
    )


def test_fig4_q2_execution(benchmark, movie_db):
    executor = Executor(movie_db)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q2"])
    assert set(result.to_tuples()) == {("Mark Hamill", "Star Battles")}
