"""EX-SIZE — size-bounded narration as the database grows (Section 2.2).

The paper argues that narratives over large databases must be bounded by
ranking/weights to stay "short and interesting".  This benchmark measures
narrative generation time and output size with and without a length
budget across database scales, showing that the bounded narrative stays
flat while the unbounded one grows with the data.
"""

import pytest
from conftest import report

from repro.content import ContentNarrator, movie_spec
from repro.datasets import GeneratorConfig, generate_movie_database
from repro.nlg import LengthBudget
from repro.nlg.realize import word_count

SCALES = [25, 100, 400]


def _narrator_for(movies: int) -> ContentNarrator:
    database = generate_movie_database(
        GeneratorConfig(movies=movies, directors=max(4, movies // 10), actors=max(8, movies // 5))
    )
    return ContentNarrator(database, spec=movie_spec(database.schema))


@pytest.mark.parametrize("movies", SCALES)
def test_bounded_database_narrative(benchmark, movies):
    narrator = _narrator_for(movies)
    budget = LengthBudget(max_sentences=8)

    def narrate_unbounded():
        return narrator.narrate_database(max_tuples_per_relation=2)

    text = benchmark(narrate_unbounded)
    bounded = narrator.narrate_database(max_tuples_per_relation=2, budget=budget)
    report(
        f"EX-SIZE bounded narrative ({movies} movies)",
        total_rows=narrator.database.total_rows,
        unbounded_words=word_count(text),
        bounded_words=word_count(bounded),
        bounded_sentences=bounded.count("."),
    )
    assert word_count(bounded) <= word_count(text)


@pytest.mark.parametrize("movies", SCALES[:2])
def test_unbounded_narrative_grows_with_data(benchmark, movies):
    narrator = _narrator_for(movies)
    text = benchmark(narrator.narrate_relation, "MOVIES")
    assert word_count(text) > 0
    report(
        f"EX-SIZE unbounded relation narrative ({movies} movies)",
        words=word_count(text),
    )


def test_ranking_puts_most_connected_tuples_first(benchmark):
    narrator = _narrator_for(50)
    from repro.content import rank_tuples

    ranked = benchmark(rank_tuples, narrator.database, "MOVIES", 5)
    assert len(ranked) == 5
    scores = [entry.score for entry in ranked]
    assert scores == sorted(scores, reverse=True)
    report(
        "EX-SIZE ranking of tuples (most significant first)",
        top_scores=[round(s, 2) for s in scores],
    )
