#!/usr/bin/env python
"""Benchmark parameterised (shape-shared) execution plans.

Measures the question the tentpole exists to answer: how fast is a warm
*same-shape, different-literal* execution — the traffic pattern of an
interactive talking database, where every user asks the same question
shapes about different actors, years and genres — on the parameterised
path versus the per-text path (parse + plan + compile per fresh text)?

Every timed text is freshly generated (a monotone counter rotates the
literal values), so the per-text executor's exact-text caches never hit:
it pays its full pipeline per query, exactly as it would under real
fresh-literal traffic, while the parameterised executor serves each text
with a shape lookup plus a literal rebind.

Equivalence is verified in-run on a 50-movie database: parameterised ≡
per-text ≡ interpreted on literal-rotated variants of the full corpus.
The service section drives 64 concurrent clients of shape-grouped
execute traffic and asserts byte-identical results to sequential
synchronous execution.
"""

from __future__ import annotations

import asyncio
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import (  # noqa: E402
    GeneratorConfig,
    PAPER_QUERIES,
    generate_movie_database,
    generate_workload,
    movie_database,
)
from repro.engine import Executor  # noqa: E402
from repro.service import NarrationService  # noqa: E402
from repro.sql.shape import reconstruct_sql, sql_shape  # noqa: E402

#: Value pools the rotation draws from: a blend of values that exist in
#: the generated database (non-empty answers) and synthetic ones.
_NAMES = [
    "Brad Pitt",
    "Scarlett Johansson",
    "Mark Hamill",
    "Morgan Freeman",
    "Woody Allen",
    "G. Loucas",
]
_GENRES = ["action", "comedy", "drama", "romance", "thriller"]


class _VariantFactory:
    """Deterministic, never-repeating literal rotation for a query set."""

    def __init__(self, queries) -> None:
        self.shapes = []
        for sql in queries:
            shaped = sql_shape(sql)
            if shaped is not None and shaped[1]:
                self.shapes.append(shaped)
        self.counter = 0

    def round(self):
        """One fresh text per shape; no text is ever produced twice."""
        texts = []
        for shape, literals in self.shapes:
            self.counter += 1
            counter = self.counter
            rotated = []
            for value in literals:
                if isinstance(value, str):
                    if value in _GENRES:
                        rotated.append(_GENRES[counter % len(_GENRES)])
                    else:
                        rotated.append(f"{_NAMES[counter % len(_NAMES)]} {counter}")
                elif isinstance(value, float):
                    rotated.append(round(1900 + (counter % 120) + 0.5, 1))
                else:
                    rotated.append(1900 + counter % 120)
            texts.append(reconstruct_sql(shape, rotated))
        return texts


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _verify_equivalence() -> dict:
    """Parameterised ≡ per-text ≡ interpreted on literal-rotated corpus."""
    database = movie_database()
    param = Executor(database, parameterised=True, compiled=True, use_caches=True,
                     index_scans=True)
    per_text = Executor(database, parameterised=False, compiled=True, use_caches=True,
                        index_scans=True)
    oracle = Executor(database, compiled=False, use_caches=False, index_scans=False)
    corpus = list(PAPER_QUERIES.values()) + [
        q.sql for q in generate_workload(queries_per_category=10, seed=42)
    ]
    factory = _VariantFactory(corpus)
    checked = 0
    for texts in (corpus, factory.round(), factory.round()):
        for sql in texts:
            a = param.execute_sql(sql)
            b = per_text.execute_sql(sql)
            c = oracle.execute_sql(sql)
            if a.columns != b.columns or a.rows != b.rows:
                raise AssertionError(f"parameterised and per-text differ on {sql!r}")
            if a.columns != c.columns or a.rows != c.rows:
                raise AssertionError(f"parameterised and interpreted differ on {sql!r}")
            checked += 1
    stats = param.cache_stats["shape_plans"]
    if stats["hits"] == 0:
        raise AssertionError("equivalence pass never hit a shared plan")
    return {
        "corpus": f"parameterised == per-text == interpreted ({checked} executions)",
        "shape_stats": {k: stats[k] for k in ("hits", "misses", "fallbacks")},
    }


def _verify_service_equivalence(queries, clients: int = 64) -> str:
    """Shape-batched concurrent execution == sequential synchronous."""
    service_db = movie_database()
    reference = Executor(movie_database(), parameterised=False)
    expected = {}
    for sql in queries:
        result = reference.execute_sql(sql)
        expected[sql] = (result.columns, result.rows)

    async def run():
        async with NarrationService(max_workers=4) as service:
            session = service.session(database=service_db)

            async def client(worker: int):
                for index in range(worker, len(queries), clients):
                    sql = queries[index]
                    result = await session.execute(sql)
                    if (result.columns, result.rows) != expected[sql]:
                        raise AssertionError(
                            f"concurrent execution differs from sequential on {sql!r}"
                        )

            await asyncio.gather(*(client(i) for i in range(clients)))
            return session.stats()

    stats = asyncio.run(run())
    grouped = stats["requests"]["shape_groups_by_kind"].get("execute", {})
    return (
        f"byte-identical under {clients} clients"
        f" ({grouped.get('requests', 0)} requests in {grouped.get('groups', 0)}"
        " shape groups)"
    )


#: The point-query timing set: the paper's *interactive* execution
#: pattern (translation verification, empty-answer probes) — selective,
#: index-backed lookups whose cost is the pipeline overhead itself, so
#: the parse+plan+compile saving is what the ratio measures.  Every query
#: keeps at least one free literal for the rotation.
_POINT_QUERIES = [
    "select m.title from MOVIES m where m.id = 7",
    "select m.title, m.year from MOVIES m where m.year = 2004",
    "select a.name from ACTOR a where a.name = 'Brad Pitt'",
    "select d.name from DIRECTOR d where d.name = 'Woody Allen'",
    "select c.role from CAST c where c.mid = 3 and c.aid = 4",
    "select m.title from MOVIES m where m.year = 1995 and m.title like 'A%'",
    "select g.genre from GENRE g where g.mid = 11",
]


def _timed_rounds(database, queries, repeats: int):
    """(parameterised_s, per_text_s) medians over fresh-literal rounds."""
    factory = _VariantFactory(queries)
    param = Executor(database, parameterised=True, compiled=True, use_caches=True,
                     index_scans=True)
    per_text = Executor(database, parameterised=False, compiled=True, use_caches=True,
                        index_scans=True)
    # Warm the shared plans (and both executors' data caches) on one
    # round each, then time fresh-literal rounds only.
    for sql in factory.round():
        param.execute_sql(sql)
        per_text.execute_sql(sql)
    param_s = _median_seconds(
        lambda: [param.execute_sql(sql) for sql in factory.round()], repeats
    )
    per_text_s = _median_seconds(
        lambda: [per_text.execute_sql(sql) for sql in factory.round()], repeats
    )
    return len(factory.shapes), param_s, per_text_s, param.cache_stats["shape_plans"]


def bench_parameterised_plans(quick: bool = False, repeats: int = 5) -> dict:
    """The ``parameterised_plans`` section of the benchmark artifact."""
    movies = 50 if quick else 200
    database = generate_movie_database(
        GeneratorConfig(
            movies=movies, directors=max(4, movies // 10), actors=max(10, movies // 4)
        )
    )
    point_n, point_param_s, point_text_s, shape_stats = _timed_rounds(
        database, _POINT_QUERIES, repeats
    )
    speedup = round(point_text_s / max(point_param_s, 1e-9), 1)
    # The mixed 50-query workload is informational: its joins and
    # aggregations materialise the same rows on both paths, so the ratio
    # converges towards 1 as execution (not planning) dominates.
    workload = [q.sql for q in generate_workload(queries_per_category=10, seed=42)]
    workload_n, workload_param_s, workload_text_s, _ = _timed_rounds(
        database, workload, repeats
    )

    results = {
        "movies": movies,
        "point_queries_per_round": point_n,
        "warm_shape_parameterised_s": point_param_s,
        "warm_shape_per_text_s": point_text_s,
        "speedup_warm_shape": speedup,
        "workload_queries_per_round": workload_n,
        "workload_parameterised_s": workload_param_s,
        "workload_per_text_s": workload_text_s,
        "speedup_warm_shape_workload": round(
            workload_text_s / max(workload_param_s, 1e-9), 1
        ),
        "shape_stats": shape_stats,
        "equivalence": _verify_equivalence(),
    }
    service_queries = []
    service_factory = _VariantFactory(
        list(PAPER_QUERIES.values())
        + [q.sql for q in generate_workload(queries_per_category=10, seed=42)]
    )
    for _ in range(2 if quick else 4):
        service_queries.extend(service_factory.round())
    results["service_equivalence"] = _verify_service_equivalence(service_queries)
    # In-run regression guard.  The acceptance target is >= 3x (the
    # committed full-run number); the in-run floor is 2x so a noisy
    # shared CI runner cannot flake the smoke pass while a genuine
    # regression (the parameterised path re-planning per text) still
    # collapses the ratio to ~1 and fails.
    if speedup < 2.0:
        raise AssertionError(
            "parameterised-plan regression: warm same-shape point execution is"
            f" only {speedup:.2f}x the per-text path (expected >= 2x in-run,"
            " >= 3x committed)"
        )
    return results


if __name__ == "__main__":
    import json

    print(json.dumps(bench_parameterised_plans(quick="--quick" in sys.argv), indent=2))
