"""Storage engine benchmark: columnar scans vs. the row oracle, paged I/O.

Three measurements, each with an in-run correctness guard (the numbers
are meaningless if the engines disagree, so equivalence is asserted in
the same run that produces them):

* ``columnar`` — full-scan filter queries at 200 and 2000 movies,
  dict-row engine vs. the columnar engine's vectorized path.  The
  acceptance budget lives here: at 2000 movies the columnar engine must
  be at least :data:`BUDGET_MIN_SPEEDUP` times faster than the row
  oracle on the scan-filter shape.
* ``paged`` — the 50-query corpus against a paged-heap database whose
  dataset spans at least 4x more pages than the buffer pool holds,
  cold (first touch faults every page) vs. warm pool, byte-identical
  to the dict-row oracle throughout.
* ``equivalence`` — the explicit in-run check: paper queries plus the
  generated corpus across all three engines.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import PAPER_QUERIES  # noqa: E402
from repro.datasets.generator import GeneratorConfig, generate_movie_database  # noqa: E402
from repro.datasets.workload import generate_workload  # noqa: E402
from repro.engine.executor import Executor  # noqa: E402
from repro.storage import StorageConfig  # noqa: E402

__all__ = ["bench_storage"]

#: Acceptance budget: vectorized full-scan filter at 2000 movies must be
#: at least this many times faster than the dict-row path.
BUDGET_MIN_SPEEDUP = 3.0

#: Pool sized far below the dataset so eviction is on the query path.
PAGED_CONFIG = {"page_size": 512, "buffer_pool_pages": 4}

#: The scan-filter shapes the speedup is measured on (full scans only —
#: no equality conjuncts, so the row path cannot hide behind an index).
SCAN_QUERIES = [
    "select m.title from MOVIES m where m.year > 1990 and m.title like '%a%'",
    "select m.title, m.year from MOVIES m where m.year between 1960 and 1980",
]


def _config(movies: int) -> GeneratorConfig:
    return GeneratorConfig(
        movies=movies, directors=max(20, movies // 10), actors=max(60, movies // 4)
    )


def _median(run, repeats: int) -> float:
    return statistics.median(run() for _ in range(repeats))


def _rows(result):
    return [dict(row.raw) for row in result.rows]


def _scan_pair(movies: int, repeats: int) -> dict:
    config = _config(movies)
    rows_db = generate_movie_database(config)
    col_db = generate_movie_database(config).with_storage(
        StorageConfig(default_engine="columnar")
    )
    rows_ex, col_ex = Executor(rows_db), Executor(col_db)
    out = {"movies": movies}
    speedups = []
    for index, sql in enumerate(SCAN_QUERIES):
        assert _rows(col_ex.execute_sql(sql)) == _rows(rows_ex.execute_sql(sql))
        row_s = _median(lambda: _time(rows_ex, sql), repeats)
        col_s = _median(lambda: _time(col_ex, sql), repeats)
        speedup = row_s / col_s if col_s else float("inf")
        speedups.append(speedup)
        out[f"q{index}_rows_ms"] = round(row_s * 1e3, 4)
        out[f"q{index}_columnar_ms"] = round(col_s * 1e3, 4)
        out[f"q{index}_speedup"] = round(speedup, 2)
    out["min_speedup"] = round(min(speedups), 2)
    out["vector_scans"] = col_ex.vector_scans
    return out


def _time(executor, sql: str) -> float:
    start = time.perf_counter()
    executor.execute_sql(sql)
    return time.perf_counter() - start


def _paged_corpus(repeats: int, corpus_size: int) -> dict:
    config = _config(400)
    corpus = generate_workload(queries_per_category=corpus_size, seed=2009)
    oracle_db = generate_movie_database(config)
    oracle = Executor(oracle_db)
    expected = [_rows(oracle.execute_sql(q.sql)) for q in corpus]

    def cold_run() -> float:
        database = generate_movie_database(config).with_storage(
            StorageConfig(default_engine="paged", **PAGED_CONFIG)
        )
        executor = Executor(database)
        start = time.perf_counter()
        for query, want in zip(corpus, expected):
            got = _rows(executor.execute_sql(query.sql))
            assert got == want, query.name  # byte-identical to the oracle
        return time.perf_counter() - start

    database = generate_movie_database(config).with_storage(
        StorageConfig(default_engine="paged", **PAGED_CONFIG)
    )
    executor = Executor(database)
    for query in corpus:  # warm the pool and the plan caches
        executor.execute_sql(query.sql)

    def warm_run() -> float:
        start = time.perf_counter()
        for query, want in zip(corpus, expected):
            got = _rows(executor.execute_sql(query.sql))
            assert got == want, query.name
        return time.perf_counter() - start

    cold = _median(cold_run, repeats)
    warm = _median(warm_run, repeats)
    stats = database.storage_stats()["MOVIES"]
    pool = stats["buffer_pool"]
    return {
        "corpus_queries": len(corpus),
        "movies": config.movies,
        "heap_pages": stats["disk"]["pages"],
        "pool_pages": PAGED_CONFIG["buffer_pool_pages"],
        "dataset_over_pool": round(
            stats["disk"]["pages"] / PAGED_CONFIG["buffer_pool_pages"], 1
        ),
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "cold_over_warm": round(cold / warm, 2) if warm else None,
        "pool_hits": pool["hits"],
        "pool_misses": pool["misses"],
        "pool_evictions": pool["evictions"],
        "byte_identical": True,  # asserted query-by-query above
    }


def _equivalence_check() -> dict:
    from repro.datasets import movie_database

    configs = {
        "rows": StorageConfig(),
        "paged": StorageConfig(default_engine="paged", **PAGED_CONFIG),
        "columnar": StorageConfig(default_engine="columnar"),
    }
    databases = {
        name: movie_database().with_storage(config)
        for name, config in configs.items()
    }
    executors = {name: Executor(db) for name, db in databases.items()}
    checked = 0
    corpus = [sql for _name, sql in sorted(PAPER_QUERIES.items())]
    corpus += [q.sql for q in generate_workload(queries_per_category=4, seed=11)]
    for sql in corpus:
        want = _rows(executors["rows"].execute_sql(sql))
        for name in ("paged", "columnar"):
            assert _rows(executors[name].execute_sql(sql)) == want, (name, sql)
        checked += 1
    return {"queries_checked": checked, "engines": sorted(configs), "identical": True}


def bench_storage(quick: bool = False) -> dict:
    repeats = 3 if quick else 7
    summary = {
        "budget_min_speedup": BUDGET_MIN_SPEEDUP,
        "equivalence": _equivalence_check(),
        "columnar": {
            "small": _scan_pair(200, repeats),
            "large": _scan_pair(2000, repeats),
        },
        "paged": _paged_corpus(2 if quick else 3, 4 if quick else 10),
    }
    large = summary["columnar"]["large"]
    summary["columnar"]["passes_budget"] = large["min_speedup"] >= BUDGET_MIN_SPEEDUP
    assert summary["columnar"]["passes_budget"], (
        f"columnar speedup {large['min_speedup']}x at 2000 movies is below "
        f"the {BUDGET_MIN_SPEEDUP}x budget"
    )
    return summary


if __name__ == "__main__":
    import json

    print(json.dumps(bench_storage(quick="--quick" in sys.argv), indent=2))
