"""Section 3 worked examples without their own figure: Q0, Q5, Q6, Q8, Q9."""

from conftest import report

from repro.datasets import MANAGER_NARRATIVE, MANAGER_QUERY, PAPER_NARRATIVES, PAPER_QUERIES
from repro.rewrite import detect_division, detect_superlative, flatten_in_subqueries
from repro.sql import parse_select, to_sql


def test_q0_emp_manager_query(benchmark, employee_translator):
    translation = benchmark(employee_translator.translate, MANAGER_QUERY)
    assert "salary" in translation.text and "manager" in translation.text
    report(
        "Q0 (Section 3.1): employees earning more than their managers",
        paper=MANAGER_NARRATIVE,
        generated=translation.text,
        category=translation.category.value,
    )


def test_q5_unnesting_rewrite(benchmark, movie_translator):
    def flatten():
        return flatten_in_subqueries(parse_select(PAPER_QUERIES["Q5"]))

    result = benchmark(flatten)
    assert result.changed and not result.statement.is_nested()
    report(
        "Q5 rewrite: nested IN chain to flat SPJ",
        original="nested IN (SELECT ... IN (SELECT ...))",
        flattened=to_sql(result.statement),
    )


def test_q5_translation_via_flat_form(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q5"])
    assert PAPER_NARRATIVES["Q5"] in translation.variants.values()
    report(
        "Q5 narrative (from the flat equivalent)",
        paper=PAPER_NARRATIVES["Q5"],
        generated=translation.text,
        concise=translation.concise,
        rewritten_sql=translation.rewritten_sql,
    )


def test_q6_division_detection(benchmark):
    pattern = benchmark(detect_division, parse_select(PAPER_QUERIES["Q6"]))
    assert pattern is not None and pattern.divisor_relation == "GENRE"
    report(
        "Q6 idiom: double NOT EXISTS is relational division",
        divisor=pattern.divisor_relation,
        outer_binding=pattern.outer_binding,
    )


def test_q6_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q6"])
    assert translation.text == PAPER_NARRATIVES["Q6"]
    report(
        "Q6 narrative",
        paper=PAPER_NARRATIVES["Q6"],
        generated=translation.text,
        exact_match=True,
    )


def test_q8_same_year_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q8"])
    assert translation.text == PAPER_NARRATIVES["Q8"]
    report(
        "Q8 narrative ('impossible': count(distinct)=1 idiom)",
        paper=PAPER_NARRATIVES["Q8"],
        generated=translation.text,
        exact_match=True,
    )


def test_q9_superlative_detection(benchmark):
    idiom = benchmark(detect_superlative, parse_select(PAPER_QUERIES["Q9"]))
    assert idiom is not None and idiom.superlative == "earliest"
    assert idiom.repeated_relation == "MOVIES"


def test_q9_earliest_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q9"])
    assert translation.text == PAPER_NARRATIVES["Q9"]
    report(
        "Q9 narrative ('impossible': <= ALL read as 'earliest')",
        paper=PAPER_NARRATIVES["Q9"],
        generated=translation.text,
        exact_match=True,
    )
