"""FIG2 — Figure 2: the parameterised relation class of the query graph."""

from conftest import report

from repro.datasets import PAPER_QUERIES
from repro.querygraph import build_query_graph


def test_fig2_relation_class_rendering(benchmark, movie_db):
    def build_and_render():
        graph = build_query_graph(movie_db.schema, PAPER_QUERIES["Q1"])
        return graph.query_class("a").render()

    rendering = benchmark(build_and_render)
    for compartment in ("<<FROM>>", "<<alias>>", "<<SELECT>>", "<<WHERE>>", "<<HAVING>>"):
        assert compartment in rendering
    report(
        "FIG2 parameterised relation class",
        paper="class with <<FROM>>/<<SELECT>>/<<WHERE>>/<<HAVING>> parts plus alias",
        measured=rendering.replace("\n", " | "),
    )


def test_fig2_group_by_order_by_notes(benchmark, movie_db):
    sql = (
        "select m.year, count(*) from MOVIES m"
        " group by m.year order by m.year desc"
    )
    graph = benchmark(build_query_graph, movie_db.schema, sql)
    rendering = graph.query_class("m").render()
    assert "<<GROUP BY>>" in rendering and "<<ORDER BY>>" in rendering
