"""FIG6 / Q4 — the cyclic graph query of Figure 6."""

from conftest import report

from repro.datasets import PAPER_NARRATIVES, PAPER_QUERIES
from repro.engine import Executor
from repro.querygraph import QueryCategory, build_query_graph, classify_query


def test_fig6_q4_query_graph(benchmark, movie_db):
    graph = benchmark(build_query_graph, movie_db.schema, PAPER_QUERIES["Q4"])
    assert graph.has_cycle()
    assert len(graph.non_fk_join_edges()) == 1
    report(
        "FIG6 query graph of Q4 (cyclic query)",
        paper="MOVIES and CAST joined both by FK (m.id = c.mid) and by c.role = m.title",
        measured=graph.summary(),
    )


def test_fig6_q4_classification(benchmark, movie_db):
    classification = benchmark(classify_query, movie_db.schema, PAPER_QUERIES["Q4"])
    assert classification.category is QueryCategory.GRAPH


def test_fig6_q4_translation(benchmark, movie_translator):
    translation = benchmark(movie_translator.translate, PAPER_QUERIES["Q4"])
    assert translation.text == PAPER_NARRATIVES["Q4"]
    report(
        "Q4 narrative",
        paper=PAPER_NARRATIVES["Q4"],
        generated=translation.text,
        exact_match=True,
    )


def test_fig6_q4_execution(benchmark, movie_db):
    executor = Executor(movie_db)
    result = benchmark(executor.execute_sql, PAPER_QUERIES["Q4"])
    assert result.to_tuples() == [("Melinda and Melinda",)]
