"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a paper artefact (a figure or a worked
example); the fixtures below build the shared databases and translators
once per session so the timed sections measure the interesting work only.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.content import ContentNarrator, employee_spec, movie_spec  # noqa: E402
from repro.datasets import employee_database, movie_database  # noqa: E402
from repro.query_nl import QueryTranslator  # noqa: E402


@pytest.fixture(scope="session")
def movie_db():
    return movie_database()


@pytest.fixture(scope="session")
def movie_narrator(movie_db):
    return ContentNarrator(movie_db, spec=movie_spec(movie_db.schema))


@pytest.fixture(scope="session")
def movie_translator(movie_db):
    return QueryTranslator(movie_db.schema, spec=movie_spec(movie_db.schema))


@pytest.fixture(scope="session")
def employee_db():
    return employee_database()


@pytest.fixture(scope="session")
def employee_translator(employee_db):
    return QueryTranslator(employee_db.schema, spec=employee_spec(employee_db.schema))


def report(title: str, **artifacts) -> None:
    """Print a paper-vs-measured block once (outside the timed section)."""
    print()
    print(f"=== {title} ===")
    for key, value in artifacts.items():
        print(f"  {key}: {value}")
