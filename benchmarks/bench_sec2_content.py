"""Section 2.2 worked examples: DIRECTOR merging, Woody Allen, split pattern."""

from conftest import report

from repro.content import SynthesisMode
from repro.evaluation import TextMetrics, compression_ratio

PAPER_MERGED = "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
PAPER_COMPACT = (
    "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
    " As a director, Woody Allen's work includes Match Point (2005),"
    " Melinda and Melinda (2004), and Anything Else (2003)."
)
PAPER_PROCEDURAL = (
    "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
    " As a director, Woody Allen's work includes Match Point, Melinda and"
    " Melinda, Anything Else. Match Point was released in 2005. Melinda and"
    " Melinda was released in 2004. Anything Else was released in 2003."
)


def test_ex_director_common_expression_merging(benchmark, movie_narrator):
    woody = movie_narrator.database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))[0]
    text = benchmark(movie_narrator.narrate_tuple, "DIRECTOR", woody)
    assert text == PAPER_MERGED
    report(
        "EX-DIRECTOR: common-expression merging",
        paper=PAPER_MERGED,
        generated=text,
        exact_match=text == PAPER_MERGED,
    )


def test_ex_woody_allen_compact(benchmark, movie_narrator):
    text = benchmark(
        movie_narrator.narrate_entity,
        "DIRECTOR",
        "Woody Allen",
        "MOVIES",
        SynthesisMode.COMPACT,
    )
    assert text == PAPER_COMPACT
    report(
        "EX-WOODY compact (declarative) synthesis",
        paper=PAPER_COMPACT,
        generated=text,
        exact_match=text == PAPER_COMPACT,
        metrics=TextMetrics.of(text),
    )


def test_ex_woody_allen_procedural(benchmark, movie_narrator):
    text = benchmark(
        movie_narrator.narrate_entity,
        "DIRECTOR",
        "Woody Allen",
        "MOVIES",
        SynthesisMode.PROCEDURAL,
    )
    assert text == PAPER_PROCEDURAL
    compact = movie_narrator.narrate_entity(
        "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.COMPACT
    )
    report(
        "EX-WOODY procedural synthesis",
        paper=PAPER_PROCEDURAL,
        generated=text,
        exact_match=text == PAPER_PROCEDURAL,
        compact_vs_procedural_compression=round(compression_ratio(compact, text), 3),
    )


def test_ex_split_pattern(benchmark, movie_narrator):
    text = benchmark(movie_narrator.narrate_split, "MOVIES", "Troy", ["DIRECTOR", "ACTOR"])
    assert text.count(".") == 1
    assert "director" in text and "actor" in text and " and " in text
    report(
        "EX-SPLIT: split-pattern sentence",
        paper_shape=(
            "The movie M1 involves the director D1 who was born in Italy and"
            " the actor A1 who is Greek."
        ),
        generated=text,
        single_sentence=True,
    )


def test_schema_description(benchmark, movie_narrator):
    text = benchmark(movie_narrator.narrate_schema)
    assert "movies" in text and "directors" in text
    report("Section 2.1: schema description", generated=text)
