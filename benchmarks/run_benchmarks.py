#!/usr/bin/env python
"""Run the performance suite and write a JSON summary artifact.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --output BENCH_perf.json
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick   # CI smoke pass

Measures the compiled execution pipeline (cold = fresh executor per run,
warm = repeated execution on one executor) against the fully-interpreted
seed behaviour on the paper's queries, verifies both paths return
identical answers on Q1-Q9 and the 50-query generated workload, and
records medians plus speedups.  ``--quick`` keeps the interpreted
baseline to the cheap queries so the smoke pass finishes in seconds;
the full run reproduces the seed's minutes-long nested-query baselines.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_durability import bench_durability  # noqa: E402
from bench_parameterised import bench_parameterised_plans  # noqa: E402
from bench_resilience import bench_resilience  # noqa: E402
from bench_service_throughput import (  # noqa: E402
    bench_service_throughput,
    bench_shard_tier,
)
from bench_storage import bench_storage  # noqa: E402

from repro.content.narrator import ContentNarrator  # noqa: E402
from repro.content.presets import movie_spec  # noqa: E402
from repro.datasets import (  # noqa: E402
    GeneratorConfig,
    PAPER_QUERIES,
    generate_movie_database,
    generate_workload,
    movie_database,
    movie_schema,
)
from repro.engine import Executor  # noqa: E402
from repro.nlg.document import LengthBudget  # noqa: E402
from repro.query_nl.translator import QueryTranslator  # noqa: E402
from repro.querygraph.builder import (  # noqa: E402
    QueryGraphBuilder,
    use_reference_validation,
)
from repro.querygraph.classify import QueryCategory, classify_graph  # noqa: E402
from repro.sql.lexer import tokenize, tokenize_reference  # noqa: E402
from repro.sql.parser import Parser, ReferenceParser, parse_sql  # noqa: E402

#: Interpreted baselines measured per mode.  Q6 interpreted at 200 movies
#: takes ~2 minutes per run; it is only part of the full pass.
_QUICK_BASELINES = ("Q1", "Q2", "Q3", "Q7")
_FULL_BASELINES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q7", "Q8", "Q9")


def _interpreted(database) -> Executor:
    return Executor(database, compiled=False, use_caches=False, index_scans=False)


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def bench_database(movies: int, repeats: int, baselines) -> dict:
    database = generate_movie_database(
        GeneratorConfig(
            movies=movies, directors=max(4, movies // 10), actors=max(10, movies // 4)
        )
    )
    results = {}
    warm_executor = Executor(database)
    for name, sql in PAPER_QUERIES.items():
        entry = {}
        entry["compiled_cold_s"] = _median_seconds(
            lambda: Executor(database).execute_sql(sql), repeats
        )
        warm_executor.execute_sql(sql)  # prime the caches
        entry["compiled_warm_s"] = _median_seconds(
            lambda: warm_executor.execute_sql(sql), repeats
        )
        if name in baselines:
            interpreted_repeats = max(1, repeats // 2)
            entry["interpreted_s"] = _median_seconds(
                lambda: _interpreted(database).execute_sql(sql), interpreted_repeats
            )
            entry["speedup_cold"] = round(
                entry["interpreted_s"] / max(entry["compiled_cold_s"], 1e-9), 1
            )
            entry["speedup_warm"] = round(
                entry["interpreted_s"] / max(entry["compiled_warm_s"], 1e-9), 1
            )
        results[name] = entry
    return {"total_rows": database.total_rows, "queries": results}


def bench_workload(movies: int, repeats: int) -> dict:
    database = generate_movie_database(
        GeneratorConfig(
            movies=movies, directors=max(4, movies // 10), actors=max(10, movies // 4)
        )
    )
    workload = generate_workload(queries_per_category=10, seed=42)
    executor = Executor(database)
    compiled = _median_seconds(
        lambda: [executor.execute_sql(q.sql) for q in workload], repeats
    )
    interpreted = _median_seconds(
        lambda: [_interpreted(database).execute_sql(q.sql) for q in workload],
        max(1, repeats // 2),
    )
    return {
        "queries": len(workload),
        "compiled_s": compiled,
        "interpreted_s": interpreted,
        "speedup": round(interpreted / max(compiled, 1e-9), 1),
    }


def _median_warm(fn, repeats: int) -> float:
    """Median over ``repeats`` after two untimed warm-up runs."""
    fn()
    fn()
    return _median_seconds(fn, repeats)


def bench_narration(repeats: int) -> dict:
    """Measure the narration front end and verify its equivalences in-run.

    Reference numbers (``frontend_reference``) were measured with this
    exact procedure at commit 86a0ff0 (the tree before the compiled
    narration front end landed) on the reference container; the speedups
    below compare against them.  ``cold`` means a fresh translator /
    narrator per repetition with every query-level cache starting empty
    (the compile-once machinery — regexes, compiled templates, graph
    adjacency — is module/schema-level by design, exactly like the
    engine's compiled closures).
    """
    reference = {
        "cold_translate_s": 0.02111,
        "cold_translate_unique_s": 0.02044,
        "narrate_database_s": 0.14314,
        "narrate_relation_s": 0.13351,
    }
    schema = movie_schema()
    workload = [q.sql for q in generate_workload(queries_per_category=10, seed=42)]

    results: dict = {"workload_queries": len(workload)}
    results["tokenize_regex_s"] = _median_warm(
        lambda: [tokenize(sql) for sql in workload], repeats
    )
    results["tokenize_char_s"] = _median_warm(
        lambda: [tokenize_reference(sql) for sql in workload], repeats
    )
    results["cold_translate_s"] = _median_warm(
        lambda: [QueryTranslator(schema).translate(sql) for sql in workload], repeats
    )
    results["cold_translate_unique_s"] = _median_warm(
        lambda: [
            QueryTranslator(schema, cache_size=None).translate(sql) for sql in workload
        ],
        repeats,
    )
    warm_translator = QueryTranslator(schema)
    results["warm_translate_s"] = _median_warm(
        lambda: [warm_translator.translate(sql) for sql in workload], repeats
    )

    database = generate_movie_database(
        GeneratorConfig(movies=200, directors=20, actors=50)
    )
    spec = movie_spec(database.schema)
    budget = LengthBudget(max_sentences=12)
    results["narrate_database_s"] = _median_warm(
        lambda: ContentNarrator(database, spec=spec).narrate_database(budget=budget),
        repeats,
    )
    results["narrate_relation_s"] = _median_warm(
        lambda: ContentNarrator(database, spec=spec).narrate_relation(
            "MOVIES", budget=budget
        ),
        repeats,
    )

    results["frontend_reference"] = reference
    for key, base in reference.items():
        results[f"speedup_{key.removesuffix('_s')}"] = round(
            base / max(results[key], 1e-9), 1
        )
    results["tokenize_speedup_vs_char"] = round(
        results["tokenize_char_s"] / max(results["tokenize_regex_s"], 1e-9), 1
    )
    results["equivalence"] = verify_narration_equivalence(database, spec)
    return results


def bench_translation_core(repeats: int) -> dict:
    """Stage-split translation benchmark and the compiled-core speedups.

    Reference numbers (``translation_reference``) were measured with this
    exact procedure at commit 165e2bb (the PR 2 tree, before the compiled
    translation core landed) on the reference container.  Stages are
    measured in isolation over the 50-query generated workload: ``lex``
    tokenizes, ``parse`` parses pre-lexed token lists, ``validate_build``
    builds query graphs (validation fused) from pre-parsed ASTs, and
    ``phrase_render`` classifies prebuilt graphs and runs the category
    translators.  ``cold_translate`` is a fresh translator over the
    workload (phrase plans are per-schema, like compiled templates);
    ``warm_repeated_shape`` translates literal-rotated variants so the
    exact-text LRU never hits and every query exercises the shape-keyed
    plan path.  The in-run equivalence checks compare each fast path
    against its interpreted oracle, and a regression guard fails the run
    if the plan path stops beating the full pipeline.
    """
    reference = {
        "lex_s": 0.0019865,
        "parse_s": 0.0031214,
        "validate_build_s": 0.0026911,
        "phrase_render_s": 0.0018370,
        "cold_translate_s": 0.0068941,
        "cold_translate_unique_s": 0.0111934,
        "warm_repeated_shape_s": 0.0114552,
    }
    schema = movie_schema()
    workload = [q.sql for q in generate_workload(queries_per_category=10, seed=42)]
    tokens = [tokenize(sql) for sql in workload]
    statements = [parse_sql(sql) for sql in workload]

    results: dict = {"workload_queries": len(workload)}
    results["lex_s"] = _median_warm(lambda: [tokenize(sql) for sql in workload], repeats)
    results["parse_s"] = _median_warm(
        lambda: [Parser(token_list).parse_statement() for token_list in tokens], repeats
    )
    results["parse_reference_s"] = _median_warm(
        lambda: [ReferenceParser(token_list).parse_statement() for token_list in tokens],
        repeats,
    )
    builder = QueryGraphBuilder(schema)
    results["validate_build_s"] = _median_warm(
        lambda: [builder.build(statement) for statement in statements], repeats
    )

    def build_reference():
        reference_builder = QueryGraphBuilder(schema)
        with use_reference_validation():
            return [reference_builder.build(statement) for statement in statements]

    results["validate_build_reference_s"] = _median_warm(build_reference, repeats)

    translator = QueryTranslator(schema, cache_size=None, phrase_plans=False)
    graphs = [translator.builder.build(statement) for statement in statements]

    def phrase_render():
        rendered = []
        for graph in graphs:
            category = classify_graph(graph).category
            if category in (QueryCategory.PATH, QueryCategory.SUBGRAPH, QueryCategory.GRAPH):
                rendered.append(translator._spj.translate(graph))
            elif category is QueryCategory.NESTED:
                rendered.append(translator._nested.translate(graph))
            elif category is QueryCategory.AGGREGATE:
                rendered.append(translator._aggregate.translate(graph))
            else:
                rendered.append(translator._impossible.translate(graph))
        return rendered

    results["phrase_render_s"] = _median_warm(phrase_render, repeats)

    results["cold_translate_s"] = _median_warm(
        lambda: [QueryTranslator(schema).translate(sql) for sql in workload], repeats
    )
    results["cold_translate_unique_s"] = _median_warm(
        lambda: [
            QueryTranslator(schema, cache_size=None).translate(sql) for sql in workload
        ],
        repeats,
    )
    results["cold_translate_oracle_s"] = _median_warm(
        lambda: [
            QueryTranslator(schema, phrase_plans=False).translate(sql)
            for sql in workload
        ],
        repeats,
    )

    names = [
        "Brad Pitt", "Scarlett Johansson", "Mark Hamill",
        "Morgan Freeman", "Woody Allen", "G. Loucas",
    ]
    warm_translator = QueryTranslator(schema, cache_size=None)
    batches = [
        [sql.replace("Brad Pitt", names[(round_number + index) % len(names)])
         for index, sql in enumerate(workload)]
        for round_number in range(16)
    ]
    round_counter = [0]

    def warm_repeated_shape():
        round_counter[0] = (round_counter[0] + 1) % len(batches)
        return [warm_translator.translate(sql) for sql in batches[round_counter[0]]]

    results["warm_repeated_shape_s"] = _median_warm(warm_repeated_shape, repeats)

    results["translation_reference"] = reference
    for key, base in reference.items():
        results[f"speedup_{key.removesuffix('_s')}"] = round(
            base / max(results[key], 1e-9), 1
        )
    results["equivalence"] = verify_translation_equivalence(schema, workload, batches)
    # Regression guard: the shape-keyed plan path must keep beating the
    # full pipeline on the cold workload by a comfortable margin.
    guard_ratio = results["cold_translate_oracle_s"] / max(
        results["cold_translate_s"], 1e-9
    )
    results["plan_vs_full_ratio"] = round(guard_ratio, 1)
    if guard_ratio < 1.5:
        raise AssertionError(
            "translate-bench regression: plan-path cold translate is only"
            f" {guard_ratio:.2f}x the full pipeline (expected >= 1.5x)"
        )
    return results


def verify_translation_equivalence(schema, workload, variant_batches) -> dict:
    """The translation core's three differential guarantees, checked in-run."""
    corpus = list(PAPER_QUERIES.values()) + workload
    for sql in corpus:
        fast = Parser(tokenize(sql)).parse_statement()
        slow = ReferenceParser(tokenize(sql)).parse_statement()
        if fast != slow:
            raise AssertionError(f"Pratt and reference parsers differ on {sql!r}")

    fused_builder = QueryGraphBuilder(schema)
    oracle_builder = QueryGraphBuilder(schema)
    for sql in corpus:
        fused = fused_builder.build(parse_sql(sql))
        with use_reference_validation():
            oracle = oracle_builder.build(parse_sql(sql))
        if str(fused.statement) != str(oracle.statement) or sorted(
            fused.classes
        ) != sorted(oracle.classes):
            raise AssertionError(f"fused and oracle builds differ on {sql!r}")

    fast_translator = QueryTranslator(schema, cache_size=None)
    oracle_translator = QueryTranslator(schema, cache_size=None, phrase_plans=False)
    checked = 0
    for sql in corpus + variant_batches[0] + variant_batches[1]:
        fast = fast_translator.translate(sql)
        slow = oracle_translator.translate(sql)
        if fast != slow:  # compares every textual field
            raise AssertionError(f"phrase plans and full pipeline differ on {sql!r}")
        checked += 1
    return {
        "parser": f"AST-identical ({len(corpus)} queries)",
        "fused_validation": "graphs identical to the standalone-validator pipeline",
        "phrase_plans": f"byte-identical to the full pipeline ({checked} translations)",
    }


def verify_narration_equivalence(database, spec) -> dict:
    """The three front-end differential guarantees, checked in-run."""
    workload = [q.sql for q in generate_workload(queries_per_category=10, seed=42)]
    for sql in list(PAPER_QUERIES.values()) + workload:
        fast = tokenize(sql)
        slow = tokenize_reference(sql)
        if [(t.type, t.value, t.line, t.column) for t in fast] != [
            (t.type, t.value, t.line, t.column) for t in slow
        ]:
            raise AssertionError(f"regex and char lexers differ on {sql!r}")

    interpreted_spec = movie_spec(database.schema)
    interpreted_spec.registry.compile_templates = False
    budget = LengthBudget(max_sentences=12)
    narrator = ContentNarrator(database, spec=spec)
    interpreted = ContentNarrator(database, spec=interpreted_spec)
    if narrator.narrate_database(budget=budget) != interpreted.narrate_database(
        budget=budget
    ):
        raise AssertionError("compiled and interpreted templates narrate differently")
    for budget_case in (budget, LengthBudget(max_words=60), None):
        if narrator.narrate_database(budget=budget_case) != narrator.narrate_database(
            budget=budget_case, streaming=False
        ):
            raise AssertionError("streaming and eager narration differ")
        if narrator.narrate_relation(
            "MOVIES", budget=budget_case
        ) != narrator.narrate_relation("MOVIES", budget=budget_case, streaming=False):
            raise AssertionError("streaming and eager relation narration differ")
    return {
        "lexers": f"token-identical ({9 + len(workload)} queries)",
        "templates": "compiled narration byte-identical to interpreted",
        "streaming": "byte-identical to eager under all tested budgets",
    }


def verify_equivalence() -> dict:
    """Compiled and interpreted paths must agree on every answer."""
    database = movie_database()
    fast, slow = Executor(database), _interpreted(database)
    for name, sql in PAPER_QUERIES.items():
        a, b = fast.execute_sql(sql), slow.execute_sql(sql)
        if a.columns != b.columns or a.rows != b.rows:
            raise AssertionError(f"compiled and interpreted differ on {name}")
    workload = generate_workload(queries_per_category=10, seed=42)
    for query in workload:
        a, b = fast.execute_sql(query.sql), slow.execute_sql(query.sql)
        if a.columns != b.columns or a.rows != b.rows:
            raise AssertionError(f"compiled and interpreted differ on {query.name}")
    return {
        "paper_queries": "identical",
        "generated_workload": f"identical ({len(workload)} queries)",
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json", help="JSON artifact path")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (median)")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke pass: 50-movie database, cheap interpreted baselines only",
    )
    args = parser.parse_args(argv)
    args.repeats = max(1, args.repeats)

    sizes = [50] if args.quick else [50, 200, 1000]
    baselines = _QUICK_BASELINES if args.quick else _FULL_BASELINES
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "seed_reference": {
            "note": (
                "medians of the fully-interpreted executor measured at the seed"
                " commit (33c7117) on the reference container; the live"
                " 'interpreted_s' baselines below are the same pipeline inside"
                " this tree (slightly faster than seed after the satellite"
                " fixes, so speedups are conservative)"
            ),
            "Q2_200movies_s": 0.00547,
            "Q5_200movies_s": 25.33,
            "Q6_200movies_s": 124.81,
            "Q7_200movies_s": 0.3006,
        },
        "equivalence": verify_equivalence(),
        "databases": {},
    }
    # The compiled-path sections (parameterised plans, service,
    # translation core, narration front end) are all measured before the
    # minutes-long interpreted executor baselines heat the process up.
    print("benchmarking parameterised plans ...", flush=True)
    summary["parameterised_plans"] = bench_parameterised_plans(
        quick=args.quick, repeats=max(5, args.repeats)
    )
    print("benchmarking concurrent service ...", flush=True)
    summary["service_throughput"] = bench_service_throughput(quick=args.quick)
    print("benchmarking shard tier ...", flush=True)
    summary["shard_tier"] = bench_shard_tier(quick=args.quick)
    print("benchmarking resilience overhead ...", flush=True)
    summary["resilience"] = bench_resilience(quick=args.quick)
    print("benchmarking durability cost ...", flush=True)
    summary["durability"] = bench_durability(quick=args.quick)
    print("benchmarking storage engines ...", flush=True)
    summary["storage"] = bench_storage(quick=args.quick)
    print("benchmarking translation core ...", flush=True)
    summary["translation_core"] = bench_translation_core(max(5, args.repeats))
    print("benchmarking narration front end ...", flush=True)
    summary["narration_frontend"] = bench_narration(max(5, args.repeats))
    for movies in sizes:
        print(f"benchmarking {movies} movies ...", flush=True)
        # Interpreted Q5 scales quadratically (25s at 200 movies, ~10min at
        # 1000); keep its baseline to the sizes where it finishes.
        size_baselines = tuple(b for b in baselines if b != "Q5" or movies < 1000)
        summary["databases"][str(movies)] = bench_database(
            movies, args.repeats, size_baselines
        )
    # The workload baseline includes nested queries, so it stays at 50
    # movies where the interpreted pass finishes in seconds.
    summary["workload_50_queries"] = bench_workload(50, args.repeats)

    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {output}")
    for movies, data in summary["databases"].items():
        for name, entry in data["queries"].items():
            if "speedup_cold" in entry:
                print(
                    f"  {movies} movies {name}: interpreted {entry['interpreted_s']:.4f}s"
                    f" -> compiled {entry['compiled_cold_s']:.4f}s cold"
                    f" ({entry['speedup_cold']}x), {entry['compiled_warm_s']:.6f}s warm"
                    f" ({entry['speedup_warm']}x)"
                )
    print(f"  workload: {summary['workload_50_queries']}")
    core = summary["translation_core"]
    print(
        "  translation core:"
        f" lex {core['lex_s']*1e3:.2f}ms ({core['speedup_lex']}x);"
        f" parse {core['parse_s']*1e3:.2f}ms ({core['speedup_parse']}x);"
        f" validate+build {core['validate_build_s']*1e3:.2f}ms"
        f" ({core['speedup_validate_build']}x);"
        f" phrase render {core['phrase_render_s']*1e3:.2f}ms"
        f" ({core['speedup_phrase_render']}x);"
        f" cold translate {core['cold_translate_s']*1e3:.2f}ms"
        f" ({core['speedup_cold_translate']}x vs 165e2bb);"
        f" warm repeated-shape {core['warm_repeated_shape_s']*1e3:.2f}ms"
        f" ({core['speedup_warm_repeated_shape']}x)"
    )
    service = summary["service_throughput"]
    top = service["clients"]["64"]
    print(
        "  concurrent service:"
        f" 64 clients {top['service_rps']:.0f} req/s vs naive"
        f" {top['naive_rps']:.0f} req/s ({top['speedup']}x);"
        f" plan-path variants {service['literal_variants_rps_64']:.0f} req/s"
    )
    shard = summary["shard_tier"]
    shard_top = {
        workers: entry["clients"]["64"]["rps"]
        for workers, entry in shard["workers"].items()
    }
    print(
        f"  shard tier ({shard['cpu_count']} cores):"
        + "".join(
            f" {workers}w {rps:.0f} req/s"
            f" ({shard['workers'][workers]['speedup_vs_single_process']}x);"
            for workers, rps in shard_top.items()
        )
        + f" ipc round-trip p50 {shard['ipc_round_trip_p50_ms']:.2f}ms"
    )
    resilience = summary["resilience"]
    print(
        "  resilience overhead:"
        f" fast path {resilience['fast_path']['p50_bypassed_us']:.1f}us ->"
        f" {resilience['fast_path']['p50_default_us']:.1f}us"
        f" ({resilience['fast_path']['regression_pct']:+.1f}%);"
        f" queued execute {resilience['queued_execute']['p50_bypassed_us']:.1f}us ->"
        f" {resilience['queued_execute']['p50_default_us']:.1f}us"
        f" ({resilience['queued_execute']['regression_pct']:+.1f}%);"
        f" budget {'met' if resilience['passes_budget'] else 'MISSED'}"
    )
    durability = summary["durability"]["service"]
    print(
        "  durability cost (service mutations):"
        f" non-durable {durability['plain_ops_s']:.0f}/s ->"
        f" fsync=batch {durability['batch_ops_s']:.0f}/s"
        f" ({durability['batch_slowdown']:.2f}x, budget"
        f" {'met' if durability['passes_budget'] else 'MISSED'}),"
        f" fsync=always {durability['always_ops_s']:.0f}/s"
        f" ({durability['always_slowdown']:.2f}x)"
    )
    storage = summary["storage"]
    large = storage["columnar"]["large"]
    paged = storage["paged"]
    print(
        "  storage engines:"
        f" columnar full-scan filter at {large['movies']} movies"
        f" {large['min_speedup']:.2f}x over dict rows (budget"
        f" {'met' if storage['columnar']['passes_budget'] else 'MISSED'});"
        f" paged corpus with dataset {paged['dataset_over_pool']}x the pool"
        f" cold {paged['cold_s']:.2f}s / warm {paged['warm_s']:.2f}s,"
        f" byte-identical {paged['byte_identical']}"
    )
    parameterised = summary["parameterised_plans"]
    print(
        "  parameterised plans:"
        f" warm same-shape point queries {parameterised['warm_shape_per_text_s']*1e3:.2f}ms"
        f" per-text -> {parameterised['warm_shape_parameterised_s']*1e3:.2f}ms shared"
        f" ({parameterised['speedup_warm_shape']}x);"
        f" mixed workload {parameterised['speedup_warm_shape_workload']}x;"
        f" {parameterised['service_equivalence']}"
    )
    frontend = summary["narration_frontend"]
    print(
        "  narration front end:"
        f" tokenize {frontend['tokenize_char_s']*1e3:.2f}ms char ->"
        f" {frontend['tokenize_regex_s']*1e3:.2f}ms regex"
        f" ({frontend['tokenize_speedup_vs_char']}x);"
        f" cold translate {frontend['cold_translate_s']*1e3:.2f}ms"
        f" ({frontend['speedup_cold_translate']}x vs 86a0ff0);"
        f" narrate_database {frontend['narrate_database_s']*1e3:.2f}ms"
        f" ({frontend['speedup_narrate_database']}x vs 86a0ff0)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
