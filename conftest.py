"""Pytest bootstrap: make the src/ layout importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without the ``wheel`` package);
this fallback keeps ``pytest`` working straight from a source checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
