"""Pytest bootstrap: make the src/ layout importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without the ``wheel`` package);
this fallback keeps ``pytest`` working straight from a source checkout.

``REPRO_ORACLE=1`` additionally runs the whole suite in oracle mode (see
:mod:`repro.oracle`): the reference lexer, parser and validator are
forced for the session here, and the compiled-path constructor defaults
(executor, phrase plans, templates) flip inside the library itself.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.oracle import oracle_enabled  # noqa: E402  (needs the path above)

if oracle_enabled():
    from contextlib import ExitStack

    import pytest

    @pytest.fixture(autouse=True, scope="session")
    def _repro_oracle_mode():
        """Force every reference algorithm path for the whole session."""
        from repro.querygraph.builder import use_reference_validation
        from repro.sql.lexer import use_reference_lexer
        from repro.sql.parser import use_reference_parser

        with ExitStack() as stack:
            stack.enter_context(use_reference_lexer())
            stack.enter_context(use_reference_parser())
            stack.enter_context(use_reference_validation())
            yield
