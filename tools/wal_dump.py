#!/usr/bin/env python
"""Inspect a write-ahead log: every record's seq, checksum status, and SQL.

The dump is an operator tool for the durability layer
(``docs/architecture.md``, "Durability"): it walks a WAL file with the
same scanner recovery uses (:func:`repro.storage.wal.scan_wal`) but in
*reporting* mode — a torn tail or mid-log corruption is printed and
classified instead of truncated or raised, so a damaged log can be
examined before deciding to recover.

Usage::

    python tools/wal_dump.py path/to/wal.log      # one log file
    python tools/wal_dump.py path/to/durable_dir  # the wal.log inside it
    python tools/wal_dump.py --demo               # self-contained tour

Exit status: ``0`` for a clean log or one with only a torn tail (the
expected debris of a crash — recovery handles it), ``2`` for mid-log
corruption (recovery will refuse, typed), ``1`` for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.storage.wal import WAL_NAME, WalScan, scan_wal  # noqa: E402


def describe_payload(payload) -> str:
    """A one-line human description of a record payload.

    The shard router logs ``{"sql": ...}``; the embedded
    :class:`~repro.storage.database.Database` logs op tuples like
    ``("insert", table, values, coerce)``.  Anything else is shown as a
    truncated repr.
    """
    if isinstance(payload, dict) and "sql" in payload:
        return str(payload["sql"])
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        kind = payload[0]
        if kind == "insert" and len(payload) >= 3:
            return f"insert into {payload[1]} {payload[2]!r}"
        if kind == "delete" and len(payload) >= 3:
            return f"delete from {payload[1]} rowids={payload[2]!r}"
        if kind == "update" and len(payload) >= 4:
            return f"update {payload[1]} rowids={payload[2]!r} set {payload[3]!r}"
    text = repr(payload)
    return text if len(text) <= 120 else text[:117] + "..."


def dump(path: Path, out=sys.stdout) -> int:
    """Print every record of the WAL at ``path``; return the exit status."""
    if path.is_dir():
        path = path / WAL_NAME
    if not path.exists():
        print(f"{path}: no such file", file=out)
        return 1
    scan: WalScan = scan_wal(path, strict=False)
    print(f"wal: {path}", file=out)
    print(f"{'seq':>8}  {'offset':>8}  crc  payload", file=out)
    for record in scan.records:
        line = describe_payload(record.payload)
        print(f"{record.seq:>8}  {record.offset:>8}  ok   {line}", file=out)
    if not scan.records:
        print("  (no records)", file=out)
    if scan.error is not None:
        print(f"CORRUPT (mid-log): {scan.error}", file=out)
        print("recovery will refuse this log (WalCorruptionError)", file=out)
        return 2
    if scan.torn:
        print(
            f"TORN TAIL: {scan.torn_bytes} bytes after offset {scan.valid_bytes}"
            " (recovery truncates this, losing only the unacknowledged write)",
            file=out,
        )
    else:
        print(f"clean ({len(scan.records)} records, {scan.valid_bytes} bytes)", file=out)
    return 0


def demo(out=sys.stdout) -> int:
    """Build, damage, and dump throwaway logs — the self-contained tour."""
    import shutil
    import tempfile

    from repro.service.faults import corrupt_wal_record, tear_wal_tail
    from repro.storage.wal import WriteAheadLog

    directory = Path(tempfile.mkdtemp(prefix="wal-dump-demo-"))
    try:
        statements = [
            "INSERT INTO MOVIES VALUES (901, 'The Long Goodbye', 1973)",
            "INSERT INTO MOVIES VALUES (902, 'Night Moves', 1975)",
            "UPDATE MOVIES SET year = 1974 WHERE id = 901",
            "INSERT INTO MOVIES VALUES (903, 'The Conversation', 1974)",
            "DELETE FROM MOVIES WHERE id = 902",
        ]

        def build(name: str) -> Path:
            path = directory / name
            with WriteAheadLog(path, fsync="never") as wal:
                for sql in statements:
                    wal.append({"sql": sql})
            return path

        print("== a clean log ==", file=out)
        clean = build("clean.log")
        dump(clean, out=out)

        print("\n== the same log with a torn tail (crash mid-append) ==", file=out)
        torn = build("torn.log")
        tear_wal_tail(torn, seed=42)
        status = dump(torn, out=out)
        assert status == 0, "a torn tail is recoverable, not an error"

        print("\n== the same log corrupted mid-stream (record 2) ==", file=out)
        corrupt = build("corrupt.log")
        corrupt_wal_record(corrupt, 2)
        status = dump(corrupt, out=out)
        assert status == 2, "mid-log corruption must be flagged"
        print("\ndemo ok (the corrupt dump above exiting 2 is the point)", file=out)
        return 0
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path",
        nargs="?",
        help="WAL file, or a durability directory holding wal.log",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="build, damage, and dump throwaway logs instead of reading one",
    )
    args = parser.parse_args(argv)
    if args.demo:
        return demo()
    if not args.path:
        parser.error("a WAL path is required (or use --demo)")
    return dump(Path(args.path))


if __name__ == "__main__":
    raise SystemExit(main())
