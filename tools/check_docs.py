#!/usr/bin/env python
"""Docs health check: every relative link resolves, every example runs.

Two passes, both required by CI (the ``docs`` job) and the first also by
the tier-1 suite (``tests/test_docs.py``):

* **Links** — every markdown link/image target in ``README.md`` and
  ``docs/*.md`` that is *relative* (no URL scheme, not an in-page
  anchor) must point at an existing file or directory.
* **Examples** — every ``examples/*.py`` must run to completion (exit
  code 0) under the same interpreter that runs the tier-1 tests, with
  ``src/`` on the path.  The operator-tool demos documented in the docs
  (currently ``tools/wal_dump.py --demo``) run in the same pass under
  the same rule.

Usage::

    python tools/check_docs.py            # both passes
    python tools/check_docs.py --links    # link check only
    python tools/check_docs.py --examples # example + tool-demo runs only
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links and images: ``[text](target)`` / ``![alt](target)``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not repository paths.
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:, ...


def doc_files() -> List[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def broken_links() -> List[Tuple[Path, str]]:
    """``(document, target)`` for every relative link that does not resolve."""
    broken: List[Tuple[Path, str]] = []
    for document in doc_files():
        text = document.read_text()
        # Fenced code blocks routinely contain bracketed text that is not
        # a link (type hints, slices); strip them before matching.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if _EXTERNAL.match(target) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (document.parent / path).resolve()
            if not resolved.exists():
                broken.append((document, target))
    return broken


#: Operator-tool demo invocations that must run clean, like examples.
TOOL_DEMOS: List[List[str]] = [
    ["tools/wal_dump.py", "--demo"],
    ["tools/validate_corpus.py", "--demo"],
]


def run_examples() -> List[Tuple[Path, str]]:
    """``(example, stderr tail)`` for every example that fails to run."""
    failures: List[Tuple[Path, str]] = []
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + environment.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    runs = [[str(example)] for example in sorted((REPO / "examples").glob("*.py"))]
    runs.extend([str(REPO / part) for part in demo[:1]] + demo[1:] for demo in TOOL_DEMOS)
    for command in runs:
        result = subprocess.run(
            [sys.executable, *command],
            cwd=REPO,
            env=environment,
            capture_output=True,
            text=True,
            timeout=300,
        )
        if result.returncode != 0:
            failures.append((Path(command[0]), result.stderr.strip()[-2000:]))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--links", action="store_true", help="link check only")
    parser.add_argument("--examples", action="store_true", help="example runs only")
    args = parser.parse_args(argv)
    run_links = args.links or not args.examples
    run_ex = args.examples or not args.links

    status = 0
    if run_links:
        broken = broken_links()
        for document, target in broken:
            print(f"BROKEN LINK {document.relative_to(REPO)}: {target}")
        checked = len(doc_files())
        if broken:
            status = 1
        else:
            print(f"links ok ({checked} documents)")
    if run_ex:
        failures = run_examples()
        for example, stderr in failures:
            print(f"EXAMPLE FAILED {example.relative_to(REPO)}\n{stderr}")
        if failures:
            status = 1
        else:
            count = len(list((REPO / "examples").glob("*.py"))) + len(TOOL_DEMOS)
            print(f"examples ok ({count} scripts)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
