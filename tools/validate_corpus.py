#!/usr/bin/env python
"""Batch differential validation of every domain corpus.

Runs every corpus query of the registered domains (``repro.datasets.
domains``) through the full mode matrix — {compiled, oracle} pipelines x
{rows, paged, columnar} storage engines — and byte-diffs each mode's
translation, classification, result rows and narration against the
``compiled/rows`` baseline.  See ``docs/architecture.md``, "Validation
harness".

Usage::

    python tools/validate_corpus.py                     # all domains, full matrix
    python tools/validate_corpus.py --domain twitter    # one domain
    python tools/validate_corpus.py --engines rows      # restrict the engine axis
    python tools/validate_corpus.py --json report.json  # machine-readable report
    python tools/validate_corpus.py --drill             # inject a mismatch (must FAIL)
    python tools/validate_corpus.py --demo              # small self-contained run

Setting ``REPRO_ORACLE=1`` additionally forces the reference lexer,
parser and validator *globally* (the same switch the test suite uses),
so a CI run under that variable re-validates the matrix with every
compiled front-end path disabled process-wide.

Exit status: ``0`` when every comparison matched, ``1`` on any mismatch
(including the deliberate one injected by ``--drill``), ``2`` for usage
errors.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.datasets.domains import DOMAIN_NAMES, get_domain  # noqa: E402
from repro.oracle import oracle_enabled  # noqa: E402
from repro.querygraph.builder import use_reference_validation  # noqa: E402
from repro.sql.lexer import use_reference_lexer  # noqa: E402
from repro.sql.parser import use_reference_parser  # noqa: E402
from repro.validation import Mode, ValidationHarness  # noqa: E402
from repro.validation.harness import ENGINES, PIPELINES  # noqa: E402
from repro.validation.report import QueryOutcome  # noqa: E402


def _drill_mutator_for(harness: ValidationHarness):
    """Corrupt exactly one cell so a healthy differ MUST report it.

    The corruption hits the last mode of the matrix on the first query of
    the first validated domain, flipping the translation, the rows and
    the narration at once — the report must show all three kinds.
    """
    target_mode = harness.modes[-1]
    target_domain = harness.domains[0].name
    target_query = harness.domains[0].corpus()[0].name

    def mutate(mode, domain, query, outcome):
        if mode == target_mode and domain == target_domain and query.name == target_query:
            return QueryOutcome(
                query=outcome.query,
                expected_category=outcome.expected_category,
                translation="[drill] deliberately corrupted translation",
                category=outcome.category,
                rows="[drill] deliberately corrupted rows",
                narration="[drill] deliberately corrupted narration",
                error=outcome.error,
            )
        return outcome

    return mutate


def build_harness(args) -> ValidationHarness:
    if args.domain:
        domains = [get_domain(name) for name in args.domain]
    else:
        domains = [get_domain(name) for name in DOMAIN_NAMES]
    modes = tuple(
        Mode(pipeline, engine)
        for pipeline in PIPELINES
        if pipeline in args.pipelines
        for engine in ENGINES
        if engine in args.engines
    )
    harness = ValidationHarness(
        domains=domains,
        modes=modes,
        seed=args.seed,
        scale=args.scale,
        narrate=not args.no_narration,
    )
    if args.drill:
        harness.mutate = _drill_mutator_for(harness)
    return harness


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--domain",
        action="append",
        choices=DOMAIN_NAMES,
        help="validate only this domain (repeatable; default: all)",
    )
    parser.add_argument(
        "--pipelines",
        nargs="+",
        choices=PIPELINES,
        default=list(PIPELINES),
        help="pipeline axis of the matrix (default: both)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=list(ENGINES),
        help="storage-engine axis of the matrix (default: all three)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument(
        "--no-narration",
        action="store_true",
        help="skip the narration stage (faster; still diffs rows)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the machine-readable report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--drill",
        action="store_true",
        help="inject a deliberate mismatch to prove the differ is live",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="small self-contained run (one domain, rows engine only)",
    )
    args = parser.parse_args(argv)

    if "rows" not in args.engines:
        # The baseline is compiled/rows; the engine axis must include it.
        args.engines = ["rows", *args.engines]
    if "compiled" not in args.pipelines:
        args.pipelines = ["compiled", *args.pipelines]
    if args.demo:
        args.domain = args.domain or ["twitter"]
        args.engines = ["rows"]

    # Mirror conftest.py: under REPRO_ORACLE the reference front end is
    # forced for the whole process, compiled cells included — the matrix
    # then proves the *rest* of the pipeline agrees even when the front
    # end is pinned to the oracle.
    stack = contextlib.ExitStack()
    if oracle_enabled():
        stack.enter_context(use_reference_lexer())
        stack.enter_context(use_reference_parser())
        stack.enter_context(use_reference_validation())

    with stack:
        harness = build_harness(args)
        report = harness.run()

    print(report.render())
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"report written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
