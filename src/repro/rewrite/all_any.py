"""Interpretation of quantified comparisons as superlatives.

Section 3.3.5, query Q9: "the expression '= all' will have to be
interpreted as 'earliest' in this case, which is very difficult to
obtain."  The detector recognises ``<op> ALL (subquery)`` predicates and
maps them to superlative words; it additionally recognises the
"repeated" idiom of Q9's subquery (a self-join of the outer relation on
some attribute with a key inequality, i.e. the attribute value occurs more
than once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sql import ast


@dataclass(frozen=True)
class SuperlativeIdiom:
    """A quantified-ALL comparison read as a superlative."""

    operand: ast.ColumnRef
    op: str
    superlative: str
    subquery: ast.SelectStatement
    #: set when the subquery restricts to values occurring more than once
    #: (Q9's "movies that have been repeated")
    repeated_relation: Optional[str] = None
    repeated_attribute: Optional[str] = None


_TIME_WORDS = {"year", "date", "bdate", "time", "birthday", "day", "month"}


def _superlative_word(op: str, attribute: str) -> Optional[str]:
    temporal = any(word in attribute.lower() for word in _TIME_WORDS)
    if op in ("<=", "<"):
        return "earliest" if temporal else "smallest"
    if op in (">=", ">"):
        return "latest" if temporal else "largest"
    if op == "=":
        return "only"
    return None


def detect_superlative(statement: ast.SelectStatement) -> Optional[SuperlativeIdiom]:
    """Return the superlative idiom of the first ALL-quantified conjunct."""
    for conjunct in ast.conjuncts(statement.where):
        if not isinstance(conjunct, ast.QuantifiedComparison):
            continue
        if conjunct.quantifier.upper() != "ALL":
            continue
        if not isinstance(conjunct.operand, ast.ColumnRef):
            continue
        word = _superlative_word(conjunct.op, conjunct.operand.column)
        if word is None:
            continue
        repeated_relation, repeated_attribute = _detect_repetition(conjunct.subquery)
        return SuperlativeIdiom(
            operand=conjunct.operand,
            op=conjunct.op,
            superlative=word,
            subquery=conjunct.subquery,
            repeated_relation=repeated_relation,
            repeated_attribute=repeated_attribute,
        )
    return None


def _detect_repetition(subquery: ast.SelectStatement):
    """Detect the "value occurs more than once" self-join inside a subquery.

    Q9's subquery joins two instances of MOVIES on equal titles with
    different ids; that is exactly "movies that have been repeated".
    """
    tables = list(subquery.from_tables)
    by_relation = {}
    for table in tables:
        by_relation.setdefault(table.name.lower(), []).append(table.binding)
    duplicated = {name: bindings for name, bindings in by_relation.items() if len(bindings) >= 2}
    if not duplicated:
        return None, None
    relation_name, bindings = next(iter(duplicated.items()))
    first, second = bindings[0], bindings[1]

    equal_attribute: Optional[str] = None
    keys_differ = False
    for conjunct in ast.conjuncts(subquery.where):
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
            continue
        tables_involved = {left.table, right.table}
        if conjunct.op == "=" and left.column.lower() == right.column.lower():
            if tables_involved & {first, second}:
                equal_attribute = left.column
        if conjunct.op in ("<>", "!=") and tables_involved == {first, second}:
            keys_differ = True
    if equal_attribute and keys_differ:
        original_name = next(
            t.name for t in tables if t.name.lower() == relation_name
        )
        return original_name, equal_attribute
    return None, None
