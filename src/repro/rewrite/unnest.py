"""Unnesting of IN-subqueries into flat SPJ queries.

Section 3.3.4, query Q5: "Clearly, query Q5 has a flat equivalent
described in query Q1 ... the translation desired ... is almost impossible
to obtain from the original form, while it is straightforward to obtain
from the flat form of the query.  Hence, identifying equivalent query
forms is important and receives new life as a problem when motivated by
translatability principles."

The rewriter flattens (possibly recursively) nested, non-negated,
non-correlated ``IN (SELECT single-column ...)`` predicates whose
subqueries are plain SPJ blocks: the subquery's FROM entries are hoisted
into the outer FROM (renaming aliases on collision), its WHERE conjuncts
are added to the outer WHERE, and the IN predicate becomes an equality
join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sql import ast


@dataclass
class UnnestResult:
    """The outcome of an unnesting attempt."""

    statement: ast.SelectStatement
    changed: bool
    flattened_predicates: List[str] = field(default_factory=list)


def can_flatten_subquery(subquery: ast.SelectStatement) -> bool:
    """True when the subquery is a plain SPJ block with one output column."""
    if subquery.group_by or subquery.having is not None or subquery.distinct:
        return False
    if subquery.order_by or subquery.limit is not None or subquery.offset is not None:
        return False
    if subquery.has_aggregates():
        return False
    if len(subquery.select_items) != 1:
        return False
    only = subquery.select_items[0].expression
    if not isinstance(only, ast.ColumnRef):
        return False
    # EXISTS/quantified/scalar connectors inside the subquery block its
    # flattening; nested INs are handled by recursive flattening first.
    for conjunct in ast.conjuncts(subquery.where):
        for node in conjunct.walk():
            if isinstance(node, (ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery)):
                return False
    return True


def flatten_in_subqueries(statement: ast.SelectStatement) -> UnnestResult:
    """Flatten every flattenable IN-subquery of ``statement`` (recursively)."""
    flattener = _Flattener()
    rewritten = flattener.flatten(statement)
    return UnnestResult(
        statement=rewritten,
        changed=flattener.changed,
        flattened_predicates=flattener.flattened,
    )


class _Flattener:
    def __init__(self) -> None:
        self.changed = False
        self.flattened: List[str] = []

    # ------------------------------------------------------------------

    def flatten(self, statement: ast.SelectStatement) -> ast.SelectStatement:
        used_bindings = {t.binding.lower() for t in statement.from_tables}
        new_tables: List[ast.TableRef] = list(statement.from_tables)
        new_conjuncts: List[ast.Expression] = []

        # When the outer block has a single tuple variable, its unqualified
        # column references are unambiguous *before* flattening but may become
        # ambiguous once the subquery's tables are hoisted ("id" in Q5);
        # qualify them up front.
        sole_binding = (
            statement.from_tables[0].binding if len(statement.from_tables) == 1 else None
        )

        for conjunct in ast.conjuncts(statement.where):
            if sole_binding is not None:
                conjunct = _qualify_columns(conjunct, sole_binding)
            replacement = self._flatten_conjunct(conjunct, new_tables, used_bindings)
            new_conjuncts.extend(replacement)

        if not self.changed:
            return statement
        return ast.SelectStatement(
            select_items=statement.select_items,
            from_tables=tuple(new_tables),
            where=ast.conjoin(new_conjuncts),
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            distinct=statement.distinct,
            limit=statement.limit,
            offset=statement.offset,
        )

    def _flatten_conjunct(
        self,
        conjunct: ast.Expression,
        new_tables: List[ast.TableRef],
        used_bindings: set,
    ) -> List[ast.Expression]:
        if not isinstance(conjunct, ast.InSubquery) or conjunct.negated:
            return [conjunct]
        # Flatten the subquery's own nested INs first so chains like Q5's
        # MOVIES -> CAST -> ACTOR collapse in one pass.
        inner = _Flattener()
        subquery = inner.flatten(conjunct.subquery)
        if not can_flatten_subquery(subquery):
            return [conjunct]

        self.changed = True
        self.flattened.append(str(conjunct.operand))

        renames: Dict[str, str] = {}
        for table in subquery.from_tables:
            binding = table.binding
            new_binding = binding
            suffix = 1
            while new_binding.lower() in used_bindings:
                suffix += 1
                new_binding = f"{binding}{suffix}"
            if new_binding != binding:
                renames[binding.lower()] = new_binding
            used_bindings.add(new_binding.lower())
            new_tables.append(ast.TableRef(name=table.name, alias=new_binding))

        conjuncts: List[ast.Expression] = []
        output_column = subquery.select_items[0].expression
        assert isinstance(output_column, ast.ColumnRef)
        join = ast.BinaryOp(
            "=", conjunct.operand, _rename_columns(output_column, renames)
        )
        conjuncts.append(join)
        for sub_conjunct in ast.conjuncts(subquery.where):
            conjuncts.append(_rename_columns(sub_conjunct, renames))
        return conjuncts


def _qualify_columns(expression: ast.Expression, binding: str) -> ast.Expression:
    """Attach ``binding`` to unqualified column references at the top level.

    Only binary comparisons and IN-subquery operands are rewritten; the
    subquery bodies keep their own scoping.
    """
    if isinstance(expression, ast.ColumnRef) and expression.table is None:
        return ast.ColumnRef(column=expression.column, table=binding)
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.op,
            _qualify_columns(expression.left, binding),
            _qualify_columns(expression.right, binding),
        )
    if isinstance(expression, ast.InSubquery):
        return ast.InSubquery(
            operand=_qualify_columns(expression.operand, binding),
            subquery=expression.subquery,
            negated=expression.negated,
        )
    return expression


def _rename_columns(expression: ast.Expression, renames: Dict[str, str]) -> ast.Expression:
    """Rewrite column references according to the alias rename map."""
    if not renames:
        return expression
    if isinstance(expression, ast.ColumnRef):
        if expression.table is not None and expression.table.lower() in renames:
            return ast.ColumnRef(column=expression.column, table=renames[expression.table.lower()])
        return expression
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.op,
            _rename_columns(expression.left, renames),
            _rename_columns(expression.right, renames),
        )
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.op, _rename_columns(expression.operand, renames))
    if isinstance(expression, ast.InList):
        return ast.InList(
            operand=_rename_columns(expression.operand, renames),
            values=tuple(_rename_columns(v, renames) for v in expression.values),
            negated=expression.negated,
        )
    if isinstance(expression, ast.Between):
        return ast.Between(
            operand=_rename_columns(expression.operand, renames),
            low=_rename_columns(expression.low, renames),
            high=_rename_columns(expression.high, renames),
            negated=expression.negated,
        )
    if isinstance(expression, ast.IsNull):
        return ast.IsNull(
            operand=_rename_columns(expression.operand, renames), negated=expression.negated
        )
    if isinstance(expression, ast.FunctionCall):
        return ast.FunctionCall(
            name=expression.name,
            args=tuple(_rename_columns(a, renames) for a in expression.args),
            distinct=expression.distinct,
        )
    # Subquery connectors keep their (already non-flattenable) structure.
    return expression
