"""Aggregate idioms: HAVING patterns whose meaning is not compositional.

Two idioms from Section 3.3 are recognised:

* ``HAVING count(distinct X) = 1`` (query Q8) — "all the X values are the
  same"; the paper calls the query "impossible" because syntactically it
  is a standard aggregate query while "in reality, it is the count
  aggregate that implies all and dominates the query".
* ``HAVING n < (SELECT count(*) FROM R WHERE R.fk = outer.key)`` or
  ``HAVING count(*) > n`` (query Q7) — "more than n R-concepts".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sql import ast


@dataclass(frozen=True)
class SameValueIdiom:
    """``count(distinct X) = 1``: all X values within a group are equal."""

    attribute: ast.ColumnRef
    group_by: tuple


@dataclass(frozen=True)
class CountComparisonIdiom:
    """A count compared against a constant (possibly via a correlated subquery)."""

    threshold: int
    #: "more" when the count must exceed the threshold, "fewer" when it must
    #: stay below it, "exactly" for equality.
    direction: str
    #: the relation whose rows are counted (None for count(*) over the FROM join)
    counted_relation: Optional[str]
    #: true when the count comes from a correlated scalar subquery in HAVING
    correlated: bool


def detect_same_value_idiom(statement: ast.SelectStatement) -> Optional[SameValueIdiom]:
    """Detect ``HAVING count(distinct X) op 1`` with op in (=, <=)."""
    for conjunct in ast.conjuncts(statement.having):
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op not in ("=", "<="):
            continue
        sides = [conjunct.left, conjunct.right]
        count_call = next(
            (
                s
                for s in sides
                if isinstance(s, ast.FunctionCall)
                and s.name.upper() == "COUNT"
                and s.distinct
                and s.args
                and isinstance(s.args[0], ast.ColumnRef)
            ),
            None,
        )
        literal = next(
            (s for s in sides if isinstance(s, ast.Literal) and s.value == 1), None
        )
        if count_call is None or literal is None:
            continue
        attribute = count_call.args[0]
        assert isinstance(attribute, ast.ColumnRef)
        return SameValueIdiom(attribute=attribute, group_by=statement.group_by)
    return None


def detect_count_comparison(statement: ast.SelectStatement) -> Optional[CountComparisonIdiom]:
    """Detect "more/fewer than n" HAVING comparisons (plain or correlated)."""
    for conjunct in ast.conjuncts(statement.having):
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        idiom = _plain_count_comparison(conjunct) or _correlated_count_comparison(conjunct)
        if idiom is not None:
            return idiom
    return None


def _plain_count_comparison(conjunct: ast.BinaryOp) -> Optional[CountComparisonIdiom]:
    sides = [conjunct.left, conjunct.right]
    count_call = next(
        (
            s
            for s in sides
            if isinstance(s, ast.FunctionCall) and s.name.upper() == "COUNT" and not s.distinct
        ),
        None,
    )
    literal = next((s for s in sides if isinstance(s, ast.Literal)), None)
    if count_call is None or literal is None or not isinstance(literal.value, int):
        return None
    count_on_left = conjunct.left is count_call
    direction = _direction(conjunct.op, count_on_left)
    if direction is None:
        return None
    return CountComparisonIdiom(
        threshold=int(literal.value),
        direction=direction,
        counted_relation=None,
        correlated=False,
    )


def _correlated_count_comparison(conjunct: ast.BinaryOp) -> Optional[CountComparisonIdiom]:
    sides = [conjunct.left, conjunct.right]
    scalar = next((s for s in sides if isinstance(s, ast.ScalarSubquery)), None)
    literal = next((s for s in sides if isinstance(s, ast.Literal)), None)
    if scalar is None or literal is None or not isinstance(literal.value, int):
        return None
    subquery = scalar.subquery
    if len(subquery.select_items) != 1:
        return None
    only = subquery.select_items[0].expression
    if not (isinstance(only, ast.FunctionCall) and only.name.upper() == "COUNT"):
        return None
    counted_relation = subquery.from_tables[0].name if subquery.from_tables else None
    count_on_left = conjunct.left is scalar
    direction = _direction(conjunct.op, count_on_left)
    if direction is None:
        return None
    return CountComparisonIdiom(
        threshold=int(literal.value),
        direction=direction,
        counted_relation=counted_relation,
        correlated=True,
    )


def _direction(op: str, count_on_left: bool) -> Optional[str]:
    """Map (operator, which side the count is on) to more/fewer/exactly."""
    if op == "=":
        return "exactly"
    if count_on_left:
        if op in (">", ">="):
            return "more"
        if op in ("<", "<="):
            return "fewer"
    else:
        # literal op count: "1 < count" means the count is larger.
        if op in ("<", "<="):
            return "more"
        if op in (">", ">="):
            return "fewer"
    return None
