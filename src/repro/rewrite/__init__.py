"""Query rewriting and idiom detection supporting translation (Section 3.3)."""

from repro.rewrite.all_any import SuperlativeIdiom, detect_superlative
from repro.rewrite.division import DivisionPattern, detect_division
from repro.rewrite.patterns import (
    CountComparisonIdiom,
    SameValueIdiom,
    detect_count_comparison,
    detect_same_value_idiom,
)
from repro.rewrite.unnest import UnnestResult, can_flatten_subquery, flatten_in_subqueries

__all__ = [
    "CountComparisonIdiom",
    "DivisionPattern",
    "SameValueIdiom",
    "SuperlativeIdiom",
    "UnnestResult",
    "can_flatten_subquery",
    "detect_count_comparison",
    "detect_division",
    "detect_same_value_idiom",
    "detect_superlative",
    "flatten_in_subqueries",
]
