"""Detection of the relational-division idiom (double NOT EXISTS).

Section 3.3.4, query Q6: the doubly-nested NOT EXISTS query whose ideal
translation is simply "Find movies that have all genres".  The structure
the detector recognises is::

    SELECT ... FROM Outer o
    WHERE NOT EXISTS (
        SELECT * FROM Divisor d1 [WHERE local conditions]
        WHERE NOT EXISTS (
            SELECT * FROM Divisor d2
            WHERE d2.link = o.key AND d2.value = d1.value))

i.e. "there is no divisor tuple that the outer tuple is not linked to",
which is universal quantification over the divisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sql import ast
from repro.sql.printer import expression_to_sql


@dataclass(frozen=True)
class DivisionPattern:
    """A detected relational-division idiom."""

    outer_binding: str
    divisor_relation: str
    divisor_binding: str
    inner_binding: str
    #: the attribute of the divisor that must be matched for every value
    divided_attribute: Optional[str]
    #: local conditions restricting the divisor set (empty = "all")
    divisor_conditions: List[str]

    @property
    def is_total(self) -> bool:
        """True when the divisor set is unrestricted ("all genres")."""
        return not self.divisor_conditions


def detect_division(statement: ast.SelectStatement) -> Optional[DivisionPattern]:
    """Return the division pattern of ``statement``, or ``None``."""
    outer_bindings = {t.binding for t in statement.from_tables}
    for conjunct in ast.conjuncts(statement.where):
        if not isinstance(conjunct, ast.Exists) or not conjunct.negated:
            continue
        middle = conjunct.subquery
        if len(middle.from_tables) != 1:
            continue
        divisor_table = middle.from_tables[0]
        inner_exists = _find_not_exists(middle.where)
        if inner_exists is None:
            continue
        inner = inner_exists.subquery
        if len(inner.from_tables) != 1:
            continue
        inner_table = inner.from_tables[0]
        if inner_table.name.lower() != divisor_table.name.lower():
            continue

        links = _correlations(inner, inner_table.binding, outer_bindings, divisor_table.binding)
        if links is None:
            continue
        outer_binding, divided_attribute = links

        divisor_conditions = [
            expression_to_sql(c, top_level=True)
            for c in ast.conjuncts(middle.where)
            if not isinstance(c, ast.Exists)
        ]
        return DivisionPattern(
            outer_binding=outer_binding,
            divisor_relation=divisor_table.name,
            divisor_binding=divisor_table.binding,
            inner_binding=inner_table.binding,
            divided_attribute=divided_attribute,
            divisor_conditions=divisor_conditions,
        )
    return None


def _find_not_exists(where: Optional[ast.Expression]) -> Optional[ast.Exists]:
    for conjunct in ast.conjuncts(where):
        if isinstance(conjunct, ast.Exists) and conjunct.negated:
            return conjunct
    return None


def _correlations(
    inner: ast.SelectStatement,
    inner_binding: str,
    outer_bindings: set,
    divisor_binding: str,
):
    """Check the inner block correlates to both the outer query and the divisor.

    Returns ``(outer binding, attribute linking inner to divisor)`` when the
    inner WHERE contains an equality to an outer column and (optionally) an
    equality to the middle divisor block; returns ``None`` otherwise.
    """
    outer_link: Optional[str] = None
    divisor_attribute: Optional[str] = None
    for conjunct in ast.conjuncts(inner.where):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
            continue
        tables = {left.table, right.table}
        if any(t in outer_bindings for t in tables) and inner_binding in tables:
            for column in (left, right):
                if column.table in outer_bindings:
                    outer_link = column.table
        if divisor_binding in tables and inner_binding in tables:
            for column in (left, right):
                if column.table == divisor_binding:
                    divisor_attribute = column.column
    if outer_link is None:
        return None
    return outer_link, divisor_attribute
