"""Procedural (clause-by-clause) query translation.

The paper distinguishes declarative narratives ("what the query answer
should satisfy") from procedural ones ("the actions that need to be
performed for the answer to be generated") and notes that "for complicated
queries, the latter may be the only reasonable approach".  The procedural
translator is therefore both the universal fallback — it can verbalise any
supported statement — and the baseline against which the declarative
translators are compared in the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import join_list
from repro.nlg.realize import realize_paragraph
from repro.querygraph.model import QueryGraph
from repro.sql.printer import expression_to_sql


def procedural_translation(
    schema: Schema, lexicon: Lexicon, graph: QueryGraph, intro: Optional[str] = None
) -> str:
    """A systematic, always-applicable narrative of the query graph."""
    sentences: List[str] = []
    if intro:
        sentences.append(intro)

    considered = [
        f"each {lexicon.concept(qc.relation_name)} {binding}"
        for binding, qc in graph.classes.items()
    ]
    if considered:
        sentences.append("Consider " + join_list(considered))

    for edge in graph.join_edges:
        sentences.append(f"keep combinations where {edge.text}")
    for binding, query_class in graph.classes.items():
        for constraint in query_class.where_constraints:
            sentences.append(f"keep only {binding} where {constraint.text}")
    for constraint in graph.other_constraints:
        sentences.append(f"keep results where {constraint.text}")

    for nesting in graph.nesting_edges:
        inner = procedural_translation(schema, lexicon, nesting.subgraph)
        clause = "HAVING" if nesting.in_having else "WHERE"
        sentences.append(
            f"for the {clause} condition, evaluate a nested query connected via"
            f" {nesting.connector}: {inner}"
        )

    group_notes = [
        f"{binding}.{column}"
        for binding, query_class in graph.classes.items()
        for column in query_class.group_by
    ]
    if group_notes or graph.statement.group_by:
        grouped = group_notes or [
            expression_to_sql(g, top_level=True) for g in graph.statement.group_by
        ]
        sentences.append("group the results by " + join_list(grouped))
    for binding, query_class in graph.classes.items():
        for constraint in query_class.having_constraints:
            sentences.append(f"keep groups where {constraint.text}")

    outputs = []
    for binding, query_class in graph.classes.items():
        for entry in query_class.select_entries:
            outputs.append(
                f"the {lexicon.caption(entry.relation_name, entry.attribute)}"
                f" of {binding}"
            )
        for aggregate in query_class.aggregate_entries:
            outputs.append(f"the value of {aggregate}")
    for aggregate in graph.global_aggregates:
        outputs.append(f"the value of {aggregate}")
    if outputs:
        sentences.append("finally report " + join_list(outputs))

    if graph.statement.order_by:
        ordered = [
            expression_to_sql(o.expression, top_level=True)
            + (" in descending order" if o.descending else "")
            for o in graph.statement.order_by
        ]
        sentences.append("sort the results by " + join_list(ordered))
    if graph.statement.distinct:
        sentences.append("remove duplicate results")
    if graph.statement.limit is not None:
        sentences.append(f"keep only the first {graph.statement.limit} results")

    return realize_paragraph(sentences)
