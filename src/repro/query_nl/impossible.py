"""Translation of the paper's "impossible" queries (Section 3.3.5, Q8/Q9).

These queries are syntactically ordinary but their meaning hides behind an
idiom the query graph cannot express; the paper's point is that a system
must *recognise* the idiom to produce the short narrative a human would.
The idiom detectors live in :mod:`repro.rewrite`; this module turns their
findings into text:

* Q8 — ``HAVING count(distinct m.year) = 1`` grouped by actor →
  "Find actors whose movies are all in the same year";
* Q9 — ``year <= ALL (self-join on title with different ids)`` →
  "Find the actors who have played in the earliest versions of movies that
  have been repeated".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import pluralize
from repro.query_nl.phrases import verb_past_participle
from repro.query_nl.procedural import procedural_translation
from repro.querygraph.model import QueryGraph
from repro.rewrite.all_any import detect_superlative
from repro.rewrite.patterns import detect_same_value_idiom


@dataclass
class ImpossibleTranslation:
    text: str
    concise: str
    notes: List[str] = field(default_factory=list)
    idiom: Optional[str] = None


class ImpossibleTranslator:
    """Translate idiom-dominated queries."""

    def __init__(self, schema: Schema, lexicon: Lexicon) -> None:
        self.schema = schema
        self.lexicon = lexicon

    # ------------------------------------------------------------------

    def translate(self, graph: QueryGraph) -> ImpossibleTranslation:
        same_value = self._translate_same_value(graph)
        if same_value is not None:
            return same_value
        superlative = self._translate_superlative(graph)
        if superlative is not None:
            return superlative
        text = procedural_translation(
            self.schema,
            self.lexicon,
            graph,
            intro="The query's meaning is dominated by an aggregate idiom",
        )
        return ImpossibleTranslation(
            text=text,
            concise=text,
            notes=["no higher-order idiom matched; the procedural narrative is used"],
        )

    # ------------------------------------------------------------------

    def _translate_same_value(self, graph: QueryGraph) -> Optional[ImpossibleTranslation]:
        idiom = detect_same_value_idiom(graph.statement)
        if idiom is None:
            return None
        group_binding = self._group_binding(graph)
        if group_binding is None:
            return None
        group_relation = graph.classes[group_binding].relation_name
        group_concept = self.lexicon.concept_plural(group_relation)

        attribute_binding = idiom.attribute.table
        related_concept = None
        attribute_name = idiom.attribute.column.lower()
        if attribute_binding is not None and attribute_binding in graph.classes:
            related_relation = graph.classes[attribute_binding].relation_name
            if related_relation != group_relation:
                related_concept = self.lexicon.concept_plural(related_relation)
        if related_concept is None:
            related_concept = f"{self.lexicon.concept_plural(group_relation)}"

        text = (
            f"Find {group_concept} whose {related_concept} are all in the same"
            f" {attribute_name}"
        )
        notes = [
            "count(distinct ...) = 1 in the HAVING clause means every value in the"
            " group is the same; the count aggregate dominates the query's meaning"
        ]
        return ImpossibleTranslation(
            text=text, concise=text, notes=notes, idiom="same-value"
        )

    def _translate_superlative(self, graph: QueryGraph) -> Optional[ImpossibleTranslation]:
        idiom = detect_superlative(graph.statement)
        if idiom is None:
            return None
        projected = graph.projected_bindings()
        if not projected:
            return None
        projected_relation = graph.classes[projected[0]].relation_name
        projected_concept = self.lexicon.concept_plural(projected_relation)

        operand_binding = idiom.operand.table
        center_relation = (
            graph.classes[operand_binding].relation_name
            if operand_binding in graph.classes
            else projected_relation
        )
        center_concept = self.lexicon.concept_plural(center_relation)

        verb = self.lexicon.relationship_verb(projected_relation, center_relation)
        if verb:
            action = f"who have {verb_past_participle(verb)}"
        else:
            action = "related to"

        if idiom.repeated_relation is not None:
            tail = f" versions of {center_concept} that have been repeated"
        else:
            tail = f" {center_concept}"
        text = f"Find the {projected_concept} {action} the {idiom.superlative}{tail}"
        notes = [
            f"the quantified '{idiom.op} ALL' comparison is read as the superlative"
            f" '{idiom.superlative}'",
        ]
        if idiom.repeated_relation is not None:
            notes.append(
                "the subquery's self-join on equal "
                f"{idiom.repeated_attribute} values with different keys means the"
                f" {self.lexicon.concept(idiom.repeated_relation)} has been repeated"
            )
        return ImpossibleTranslation(
            text=text, concise=text, notes=notes, idiom="superlative"
        )

    def _group_binding(self, graph: QueryGraph) -> Optional[str]:
        grouped = [b for b, qc in graph.classes.items() if qc.group_by]
        if grouped:
            return grouped[0]
        if graph.classes:
            projected = graph.projected_bindings()
            if projected:
                return projected[0]
        return None
