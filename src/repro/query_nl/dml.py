"""Verbalisation of data-manipulation statements and view definitions.

Section 3.1: "the same can be said about all other commands a user may
give to a database system.  Insertions, deletions, and updates, especially
those with complicated qualifications or nested constructs, will benefit
from a translation into natural language.  Likewise for view definitions
and integrity constraints."
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog.schema import Schema
from repro.catalog.types import render_value
from repro.engine.evaluator import ExpressionEvaluator
from repro.errors import EvaluationError
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.lexicon.morphology import join_list
from repro.nlg.realize import realize_sentence
from repro.query_nl.phrases import comparison_phrase
from repro.sql import ast
from repro.sql.printer import expression_to_sql
from repro.storage.row import Row


class DmlTranslator:
    """Translate INSERT / UPDATE / DELETE / CREATE VIEW statements."""

    def __init__(self, schema: Schema, lexicon: Optional[Lexicon] = None) -> None:
        self.schema = schema
        self.lexicon = lexicon or default_lexicon(schema)
        self._evaluator = ExpressionEvaluator()

    # ------------------------------------------------------------------

    def translate(self, statement: ast.Statement) -> str:
        if isinstance(statement, ast.InsertStatement):
            return self._translate_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._translate_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._translate_delete(statement)
        if isinstance(statement, ast.CreateViewStatement):
            return self._translate_view(statement)
        raise TypeError(f"unsupported statement type {type(statement).__name__}")

    # ------------------------------------------------------------------

    def _translate_insert(self, statement: ast.InsertStatement) -> str:
        relation = self.schema.relation(statement.table)
        concept = self.lexicon.concept(relation.name)
        columns = statement.columns or relation.attribute_names
        sentences: List[str] = []
        for row in statement.rows:
            parts = []
            for column, expression in zip(columns, row):
                caption = self.lexicon.caption(relation.name, column)
                parts.append(f"{caption} {self._value_text(expression)}")
            sentences.append(f"Insert a new {concept} with {join_list(parts)}")
        return " ".join(realize_sentence(s) for s in sentences)

    def _translate_update(self, statement: ast.UpdateStatement) -> str:
        relation = self.schema.relation(statement.table)
        concept = self.lexicon.concept(relation.name)
        changes = [
            f"set the {self.lexicon.caption(relation.name, column)}"
            f" to {self._value_text(expression)}"
            for column, expression in statement.assignments
        ]
        scope = self._scope_phrase(relation.name, statement.where, plural=True)
        return realize_sentence(f"For {scope}, {join_list(changes)}")

    def _translate_delete(self, statement: ast.DeleteStatement) -> str:
        relation = self.schema.relation(statement.table)
        scope = self._scope_phrase(relation.name, statement.where, plural=True)
        return realize_sentence(f"Delete {scope}")

    def _translate_view(self, statement: ast.CreateViewStatement) -> str:
        # Imported lazily: the query translator itself imports this module.
        from repro.query_nl.translator import QueryTranslator

        translator = QueryTranslator(self.schema, lexicon=self.lexicon)
        inner = translator.translate(statement.query)
        inner_text = inner.text
        if inner_text.startswith("Find "):
            inner_text = inner_text[len("Find "):]
        return realize_sentence(
            f"Define the view {statement.name} as {inner_text}"
        )

    # ------------------------------------------------------------------

    def _scope_phrase(
        self, relation_name: str, where: Optional[ast.Expression], plural: bool
    ) -> str:
        noun = (
            self.lexicon.concept_plural(relation_name)
            if plural
            else self.lexicon.concept(relation_name)
        )
        if where is None:
            return f"every {self.lexicon.concept(relation_name)}"
        qualifiers = []
        for conjunct in ast.conjuncts(where):
            if isinstance(conjunct, ast.BinaryOp):
                qualifiers.append(
                    comparison_phrase(self.schema, self.lexicon, relation_name, conjunct)
                )
            else:
                qualifiers.append(expression_to_sql(conjunct, top_level=True))
        cleaned = [q for q in qualifiers if q]
        if not cleaned:
            return f"every {self.lexicon.concept(relation_name)}"
        # Heading-equality phrases come back as bare values ("Troy"); prefix
        # them so the sentence stays grammatical.
        phrased = []
        for qualifier in cleaned:
            if qualifier.startswith(("whose ", "named ")):
                phrased.append(qualifier)
            else:
                phrased.append(f"named {qualifier}")
        return f"the {noun} {join_list(phrased)}"

    def _value_text(self, expression: ast.Expression) -> str:
        try:
            value = self._evaluator.evaluate(expression, Row({}))
        except EvaluationError:
            return expression_to_sql(expression, top_level=True)
        return render_value(value)
