"""Shared phrase-building helpers for the query translators."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.catalog.types import render_value
from repro.lexicon.lexicon import Lexicon
from repro.sql import ast
from repro.sql.printer import expression_to_sql

#: Comparison operators spelled out for constraint phrases.
OPERATOR_WORDS = {
    "=": "is",
    "<>": "is not",
    "<": "is less than",
    "<=": "is at most",
    ">": "is greater than",
    ">=": "is at least",
    "LIKE": "matches",
    "NOT LIKE": "does not match",
}


def verb_without_preposition(verb: str) -> str:
    """Drop a trailing preposition ("plays in" → "plays") for where-clauses."""
    words = verb.split()
    if len(words) > 1 and words[-1].lower() in ("in", "of", "to", "at", "on", "for"):
        return " ".join(words[:-1])
    return verb


def verb_plural(verb: str) -> str:
    """Third-person-singular verb to plural ("plays in" → "play in")."""
    words = verb.split()
    if not words:
        return verb
    first = words[0]
    if first.endswith("ies"):
        first = first[:-3] + "y"
    elif first.endswith("es") and first[:-2].endswith(("sh", "ch", "ss", "x")):
        first = first[:-2]
    elif first.endswith("s") and not first.endswith("ss"):
        first = first[:-1]
    return " ".join([first, *words[1:]])


def verb_past_participle(verb: str) -> str:
    """A rough past participle ("plays in" → "played in")."""
    irregular = {"is": "been", "has": "had", "makes": "made", "writes": "written"}
    words = verb.split()
    if not words:
        return verb
    first = words[0].lower()
    if first in irregular:
        past = irregular[first]
    else:
        base = verb_plural(first)
        if base.endswith("e"):
            past = base + "d"
        elif base.endswith("y") and len(base) > 1 and base[-2] not in "aeiou":
            past = base[:-1] + "ied"
        else:
            past = base + "ed"
    return " ".join([past, *words[1:]])


def is_participle_verb(verb: str) -> bool:
    """True for verbs that already read as participles ("directed by")."""
    words = verb.lower().split()
    if not words:
        return False
    return words[0].endswith("ed") or words[-1] == "by"


def ensure_by(verb: str) -> str:
    """Append "by" to a participle verb when missing ("directed" → "directed by")."""
    if verb.lower().endswith("by"):
        return verb
    return f"{verb} by"


def comparison_phrase(
    schema: Schema,
    lexicon: Lexicon,
    relation_name: str,
    condition: ast.BinaryOp,
    concise: bool = False,
) -> str:
    """Phrase a local selection constraint ("whose release year is at least 2000")."""
    column, literal, op = _normalise_comparison(condition)
    if column is None or literal is None:
        return expression_to_sql(condition, top_level=True)
    relation = schema.relation(relation_name)
    attribute = relation.attribute(column.column)
    caption = lexicon.caption(relation_name, attribute.name)
    value = render_value(literal.value)
    words = OPERATOR_WORDS.get(op, op)
    if attribute.name == relation.heading_attribute.name and op == "=":
        if concise:
            return value
        return f"named {value}" if "name" in caption else f"{value}"
    return f"whose {caption} {words} {value}"


def heading_constraint_value(
    schema: Schema, relation_name: str, conditions: List[ast.Expression]
) -> Optional[str]:
    """The constant a relation's heading attribute is compared (=) to, if any."""
    relation = schema.relation(relation_name)
    heading = relation.heading_attribute.name
    for condition in conditions:
        column, literal, op = _normalise_comparison(condition)
        if column is None or literal is None or op != "=":
            continue
        if relation.attribute(column.column).name == heading:
            return render_value(literal.value)
    return None


def _normalise_comparison(
    condition: ast.Expression,
) -> Tuple[Optional[ast.ColumnRef], Optional[ast.Literal], str]:
    """Return (column, literal, operator) with the column on the left."""
    if not isinstance(condition, ast.BinaryOp):
        return None, None, ""
    op = condition.op
    left, right = condition.left, condition.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left, right, op
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return right, left, flipped.get(op, op)
    return None, None, op


def projection_caption(
    schema: Schema, lexicon: Lexicon, relation_name: str, attribute_name: str, plural: bool = True
) -> str:
    """The noun used for a projected attribute ("titles", "release years")."""
    caption = lexicon.caption(relation_name, attribute_name)
    if plural:
        from repro.lexicon.morphology import pluralize

        return pluralize(caption)
    return caption
