"""Query-to-natural-language translation (Section 3 of the paper)."""

from repro.query_nl.aggregate import AggregateTranslation, AggregateTranslator
from repro.query_nl.constraints import ConstraintTranslator, describe_constraints
from repro.query_nl.dml import DmlTranslator
from repro.query_nl.empty_answer import AnswerExplainer, EmptyAnswerExplanation
from repro.query_nl.impossible import ImpossibleTranslation, ImpossibleTranslator
from repro.query_nl.nested import NestedTranslation, NestedTranslator
from repro.query_nl.procedural import procedural_translation
from repro.query_nl.spj import SpjTranslation, SpjTranslator
from repro.query_nl.translator import QueryTranslation, QueryTranslator, translate_query

__all__ = [
    "AggregateTranslation",
    "AggregateTranslator",
    "AnswerExplainer",
    "ConstraintTranslator",
    "DmlTranslator",
    "EmptyAnswerExplanation",
    "ImpossibleTranslation",
    "ImpossibleTranslator",
    "NestedTranslation",
    "NestedTranslator",
    "QueryTranslation",
    "QueryTranslator",
    "SpjTranslation",
    "SpjTranslator",
    "describe_constraints",
    "procedural_translation",
    "translate_query",
]
