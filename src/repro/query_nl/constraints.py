"""Verbalisation of integrity constraints (Section 3.1).

"Likewise for view definitions and integrity constraints, which borrow
most of their syntax from queries."  Schema-level constraints — primary
keys, foreign keys, NOT NULL columns — are the integrity constraints our
catalog records; this module narrates them so a designer (or a novice
user filling in a form) can read what the schema enforces.
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.lexicon.morphology import join_list
from repro.nlg.realize import realize_paragraph, realize_sentence


class ConstraintTranslator:
    """Narrate the integrity constraints of a schema."""

    def __init__(self, schema: Schema, lexicon: Optional[Lexicon] = None) -> None:
        self.schema = schema
        self.lexicon = lexicon or default_lexicon(schema)

    # ------------------------------------------------------------------

    def describe_primary_key(self, relation_name: str) -> Optional[str]:
        """"Every movie is identified by its id." (None when keyless)."""
        relation = self.schema.relation(relation_name)
        key = relation.primary_key_names
        if not key:
            return None
        captions = [self.lexicon.caption(relation.name, column) for column in key]
        concept = self.lexicon.concept(relation.name)
        if len(captions) == 1:
            return realize_sentence(f"every {concept} is identified by its {captions[0]}")
        return realize_sentence(
            f"every {concept} is identified by the combination of {join_list(captions)}"
        )

    def describe_not_null(self, relation_name: str) -> List[str]:
        """One sentence per mandatory (NOT NULL, non-key) attribute."""
        relation = self.schema.relation(relation_name)
        concept = self.lexicon.concept(relation.name)
        sentences = []
        for attribute in relation.attributes:
            if attribute.nullable or attribute.primary_key:
                continue
            caption = self.lexicon.caption(relation.name, attribute.name)
            sentences.append(
                realize_sentence(f"every {concept} must have a {caption}")
            )
        return sentences

    def describe_foreign_keys(self, relation_name: str) -> List[str]:
        """"Every CAST row must refer to an existing movie and an existing actor."."""
        relation = self.schema.relation(relation_name)
        concept = self.lexicon.concept(relation.name)
        sentences = []
        for fk in self.schema.foreign_keys_from(relation.name):
            target_concept = self.lexicon.concept(fk.target_relation)
            columns = join_list(
                [self.lexicon.caption(relation.name, column) for column in fk.source_attributes]
            )
            sentences.append(
                realize_sentence(
                    f"the {columns} of a {concept} must refer to an existing {target_concept}"
                )
            )
        return sentences

    def describe_relation(self, relation_name: str) -> str:
        """All constraints of one relation as a paragraph."""
        parts: List[str] = []
        primary = self.describe_primary_key(relation_name)
        if primary:
            parts.append(primary)
        parts.extend(self.describe_not_null(relation_name))
        parts.extend(self.describe_foreign_keys(relation_name))
        if not parts:
            relation = self.schema.relation(relation_name)
            return realize_sentence(
                f"the {self.lexicon.concept(relation.name)} relation has no declared constraints"
            )
        return " ".join(parts)

    def describe_schema(self, include_bridges: bool = True) -> str:
        """Every constraint in the schema, relation by relation."""
        paragraphs = []
        for relation in self.schema.relations:
            if not include_bridges and relation.bridge:
                continue
            paragraphs.append(self.describe_relation(relation.name))
        return realize_paragraph(paragraphs)


def describe_constraints(schema: Schema, lexicon: Optional[Lexicon] = None) -> str:
    """Convenience: narrate every integrity constraint of ``schema``."""
    return ConstraintTranslator(schema, lexicon).describe_schema()
