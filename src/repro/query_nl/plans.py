"""Shape-keyed translation plans: compile once per query shape, render per query.

The category translators (``spj.py``, ``aggregate.py``, ``nested.py``, ...)
rebuild every noun phrase, adjective and postmodifier from scratch on each
call, even though two queries differing only in their literals ("Brad
Pitt" vs "Mark Hamill", 2004 vs 1995) produce the same sentence with
different values spliced in.  A :class:`TranslationPlan` captures that
sentence once — as template segments with literal/value *slots* — so
repeated-shape translation is a shape lookup plus slot substitution.

**Shape key.**  :func:`repro.sql.lexer.shape_of` replaces every
NUMBER/STRING token with a placeholder, so the key fixes relations,
aliases, operators and clause structure while leaving values free.

**Guards.**  The few translator branches that inspect literal *values*
(rather than positions) are pinned by a guard vector that joins the cache
key: the value's type, whether a string renders as a single word (the
prenominal-adjective test in ``spj._adjectives``), and whether a number
equals 1 (the count-idiom threshold in ``rewrite/patterns.py``).  Two
queries agreeing on shape *and* guards take identical branches everywhere.

**Two-probe compilation.**  A plan is compiled by translating the query a
second time with every free literal replaced by a guard-preserving
*sentinel* (a unique marker value), then aligning the two outputs: text
runs that match byte-for-byte become fixed segments, and positions where
the probe shows a sentinel become slots, tagged with the transform the
translator applied (narrative rendering, SQL-literal spelling, or the
spelled-out number word).  Any disagreement outside a sentinel — a
translator branch the guards failed to pin — marks the shape unplannable
and translation permanently falls back to the full pipeline for it.  The
plan is finally verified by re-rendering the original query's values and
comparing byte-for-byte against the full translation.

Plan stores live per :class:`~repro.lexicon.lexicon.Lexicon` (translation
output is a pure function of schema, lexicon and SQL text) and are
invalidated by the lexicon's ``version`` counter.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.catalog.types import render_value
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import number_word
from repro.sql import ast
from repro.sql.shape import batch_key, reconstruct_sql, sql_shape
from repro.utils.cache import LRUCache

__all__ = [
    "PlanStore",
    "TranslationPlan",
    "UNPLANNABLE",
    "batch_key",
    "compile_plan",
    "guards_for",
    "plan_store_for",
    "render_segments",
    "shape_key",
]

#: Segment of a field template: literal text, or a (literal index, transform
#: tag) slot filled at render time.
Segment = Union[str, Tuple[int, str]]

#: Stored for shapes whose probe alignment failed: always take the full path.
UNPLANNABLE = "unplannable"

#: Sentinel ints live in the 6..12 band so that ``number_word`` spells them
#: out ("six", ..., "twelve") — making the spelled-out transform
#: distinguishable from the digit rendering during alignment.  Queries with
#: more free int literals than the band holds are simply not planned.
_INT_SENTINELS = (6, 7, 8, 9, 10, 11, 12)


def shape_key(sql: str):
    """``(shape, guards, literals)`` for ``sql``, or ``None`` when unlexable.

    The shape and literal extraction are the shared implementation in
    :mod:`repro.sql.shape` (also used by the engine's parameterised plans
    and the service's batch grouping); this adds the translation-specific
    guard vector on top.
    """
    shaped = sql_shape(sql)
    if shaped is None:
        return None
    shape, literals = shaped
    return shape, guards_for(literals), literals


def guards_for(literals: Sequence[Any]) -> Tuple[Tuple[str, bool], ...]:
    """The guard vector: everything translator branches read off a value."""
    guards = []
    for value in literals:
        if isinstance(value, str):
            guards.append(("s", len(value.split()) == 1))
        elif isinstance(value, float):
            guards.append(("f", value == 1))
        else:
            guards.append(("i", value == 1))
    return tuple(guards)


# ---------------------------------------------------------------------------
# Transforms: every way a literal's value can surface in translator output
# ---------------------------------------------------------------------------


def apply_transform(tag: str, value: Any) -> str:
    if tag == "val":
        return render_value(value)
    if tag == "sql":
        return str(ast.Literal(value))
    if tag == "word":
        return number_word(value)
    if tag == "nval":
        return render_value(-value)
    if tag == "nsql":
        return str(ast.Literal(-value))
    if tag == "nword":
        return number_word(-value)
    raise ValueError(f"unknown transform {tag!r}")  # pragma: no cover


def _candidate_forms(value: Any) -> Dict[str, str]:
    """rendered text -> transform tag, earlier registrations winning ties.

    When two transforms render a value identically (``render_value`` and
    the SQL spelling agree on integers) the tie-break does not matter: any
    value passing the same guards renders identically under both tags.
    The int sentinels are chosen so the one case where it *does* matter —
    digits vs the spelled-out ``number_word`` — never ties.
    """
    forms: Dict[str, str] = {}

    def add(tag: str, rendered: str) -> None:
        forms.setdefault(rendered, tag)

    add("val", render_value(value))
    add("sql", str(ast.Literal(value)))
    if isinstance(value, bool):
        return forms
    if isinstance(value, int):
        add("word", number_word(value))
        add("nval", render_value(-value))
        add("nsql", str(ast.Literal(-value)))
        add("nword", number_word(-value))
    elif isinstance(value, float):
        add("nval", render_value(-value))
        add("nsql", str(ast.Literal(-value)))
    return forms


def _sentinels_for(
    literals: Sequence[Any], guards: Sequence[Tuple[str, bool]]
) -> Optional[Tuple[List[Any], List[int]]]:
    """``(sentinel values, slot indices)``, or ``None`` when impossible.

    Literals pinned by a value guard (numbers equal to 1) stay fixed: the
    guard key guarantees every query hitting the plan carries the same
    value there, so the compiled text is already correct for them.  Every
    other literal becomes a slot and its sentinel must *differ* from the
    actual value — a sentinel that happened to equal the value would make
    the probe indistinguishable from fixed text and bake the value into
    the plan.
    """
    sentinels: List[Any] = []
    slots: List[int] = []
    next_int = 0
    for index, (value, guard) in enumerate(zip(literals, guards)):
        kind, flag = guard
        if kind == "s":
            word = f"uqz{index}qzu"
            sentinel = word if flag else f"{word} uqz{index}wzu"
            if sentinel == value:  # the literal *is* the sentinel spelling
                sentinel = f"uqz{index}qzw" if flag else f"{word} uqz{index}wzw"
            sentinels.append(sentinel)
            slots.append(index)
        elif flag:  # a number equal to 1: fixed text, not a slot
            sentinels.append(value)
        elif kind == "f":
            sentinel = 700.25 + index
            if sentinel == value:
                sentinel += 0.125
            sentinels.append(sentinel)
            slots.append(index)
        else:
            while next_int < len(_INT_SENTINELS) and _INT_SENTINELS[next_int] == value:
                next_int += 1
            if next_int >= len(_INT_SENTINELS):
                return None
            sentinels.append(_INT_SENTINELS[next_int])
            slots.append(index)
            next_int += 1
    return sentinels, slots


# ---------------------------------------------------------------------------
# Alignment: original output vs sentinel-probe output -> template segments
# ---------------------------------------------------------------------------


def _align(
    original: Optional[str],
    probe: Optional[str],
    originals: Sequence[Any],
    sentinels: Sequence[Any],
    slot_literals: Sequence[int],
) -> Optional[Tuple[Optional[List[Segment]], bool]]:
    """Template segments for one output field, or ``None`` on misalignment.

    Returns ``(segments, used_slots)``; ``segments`` is ``None`` when the
    field itself is ``None`` on both sides.
    """
    if original is None or probe is None:
        if original is None and probe is None:
            return None, False
        return None  # one side missing: branch the guards failed to pin
    # Occurrences of any sentinel form, leftmost-longest.
    forms: List[Tuple[str, int, str]] = []  # (rendered, literal index, tag)
    for index in slot_literals:
        for rendered, tag in _candidate_forms(sentinels[index]).items():
            forms.append((rendered, index, tag))
    forms.sort(key=lambda item: -len(item[0]))

    segments: List[Segment] = []
    used = False
    pos1 = 0
    pos2 = 0
    length2 = len(probe)
    while pos2 < length2:
        # Find the earliest next sentinel occurrence in the probe.
        best = None
        for rendered, index, tag in forms:
            at = probe.find(rendered, pos2)
            if at != -1 and (best is None or at < best[0] or (at == best[0] and len(rendered) > len(best[1]))):
                best = (at, rendered, index, tag)
        if best is None:
            break
        at, rendered, index, tag = best
        fixed = probe[pos2:at]
        if original[pos1 : pos1 + len(fixed)] != fixed:
            return None
        counterpart = apply_transform(tag, originals[index])
        if original[pos1 + len(fixed) : pos1 + len(fixed) + len(counterpart)] != counterpart:
            return None
        if fixed:
            segments.append(fixed)
        segments.append((index, tag))
        used = True
        pos2 = at + len(rendered)
        pos1 += len(fixed) + len(counterpart)
    tail = probe[pos2:]
    if original[pos1:] != tail:
        return None
    if tail:
        segments.append(tail)
    return segments, used


def render_segments(segments: Optional[List[Segment]], literals: Sequence[Any]) -> Optional[str]:
    if segments is None:
        return None
    parts: List[str] = []
    for segment in segments:
        if type(segment) is str:
            parts.append(segment)
        else:
            index, tag = segment
            parts.append(apply_transform(tag, literals[index]))
    return "".join(parts)


# ---------------------------------------------------------------------------
# The plan and its per-lexicon store
# ---------------------------------------------------------------------------


class TranslationPlan:
    """A compiled translation for one (shape, guards) equivalence class."""

    __slots__ = ("category", "text", "concise", "rewritten_sql", "notes", "had_graph")

    def __init__(self, category, text, concise, rewritten_sql, notes, had_graph) -> None:
        self.category = category
        self.text = text
        self.concise = concise
        self.rewritten_sql = rewritten_sql
        self.notes = notes
        self.had_graph = had_graph


def compile_plan(
    base,
    literals: Sequence[Any],
    guards: Sequence[Tuple[str, bool]],
    shape: Sequence[str],
    probe_translate,
) -> Optional[TranslationPlan]:
    """Compile a plan from ``base`` (the full translation) via a sentinel probe.

    ``probe_translate`` runs the full, uncached pipeline on the sentinel
    variant.  Returns ``None`` when the shape cannot be planned soundly.
    """
    sentinelled = _sentinels_for(literals, guards)
    if sentinelled is None:
        return None
    sentinels, slot_literals = sentinelled
    try:
        probe = probe_translate(reconstruct_sql(shape, sentinels))
    except Exception:
        return None
    if probe.category is not base.category:
        return None  # a value-driven classification branch escaped the guards
    if len(probe.notes) != len(base.notes):
        return None

    def align_field(original, probed):
        return _align(original, probed, literals, sentinels, slot_literals)

    text = align_field(base.text, probe.text)
    concise = align_field(base.concise, probe.concise)
    rewritten = align_field(base.rewritten_sql, probe.rewritten_sql)
    if text is None or concise is None or rewritten is None:
        return None
    notes: List[List[Segment]] = []
    for original_note, probe_note in zip(base.notes, probe.notes):
        aligned = align_field(original_note, probe_note)
        if aligned is None or aligned[0] is None:
            return None
        notes.append(aligned[0])
    plan = TranslationPlan(
        category=base.category,
        text=text[0],
        concise=concise[0],
        rewritten_sql=rewritten[0],
        notes=notes,
        had_graph=base.has_graph,
    )
    # Final soundness check: the plan must reproduce the original byte-for-byte.
    if (
        render_segments(plan.text, literals) != base.text
        or render_segments(plan.concise, literals) != base.concise
        or render_segments(plan.rewritten_sql, literals) != base.rewritten_sql
        or [render_segments(note, literals) for note in plan.notes] != base.notes
    ):
        return None  # pragma: no cover - alignment already guarantees this
    return plan


#: How many unplannable-shape examples the report keeps.
_UNPLANNABLE_SAMPLES = 32

#: Fallback LRU size when neither the constructor nor the environment
#: chooses one.
_DEFAULT_PLAN_STORE_SIZE = 512

#: Environment knob for per-deployment plan-store sizing (see
#: ``docs/performance.md``): a positive integer bounds every store created
#: without an explicit ``maxsize``; ``0`` disables eviction entirely.
_PLAN_STORE_SIZE_VAR = "REPRO_PLAN_STORE_SIZE"


def _resolve_plan_store_size(maxsize) -> Optional[int]:
    """The effective LRU bound: explicit argument, else env, else default."""
    if maxsize is None:
        raw = os.environ.get(_PLAN_STORE_SIZE_VAR, "").strip()
        if raw:
            try:
                maxsize = int(raw)
            except ValueError:
                raise ValueError(
                    f"{_PLAN_STORE_SIZE_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            return _DEFAULT_PLAN_STORE_SIZE
    if maxsize == 0:
        return None  # unbounded: eviction disabled
    if maxsize < 0:
        raise ValueError("plan store maxsize must be >= 0")
    return maxsize


class PlanStore:
    """Shape-keyed plans for one lexicon, invalidated by lexicon version.

    The store is shared by every translator of the lexicon — across
    threads when the concurrent service serves several sessions of the
    same schema — so every access runs under an internal lock (the LRU's
    recency bookkeeping is not otherwise safe to interleave).

    ``maxsize`` bounds the LRU: an explicit integer wins, ``None`` defers
    to the ``REPRO_PLAN_STORE_SIZE`` environment variable (falling back
    to 512), and ``0`` — as argument or environment value — disables
    eviction.  :attr:`stats` reports the configured bound and the
    eviction count, so a deployment can see when its hot shape set
    outgrows the store and resize it.

    Besides hit/miss counters the store keeps the *unplannable-shape
    report*: how many shapes the two-probe compiler refused (value-driven
    branches the guards could not pin) and a bounded sample of the SQL
    texts that produced them, so a deployment can see whether any hot
    production shape permanently falls back to the full pipeline.
    """

    __slots__ = (
        "plans",
        "lexicon_version",
        "hits",
        "misses",
        "unplannable",
        "_unplannable_samples",
        "_samples",
        "_lock",
    )

    def __init__(self, maxsize: Optional[int] = None) -> None:
        resolved = _resolve_plan_store_size(maxsize)
        self.plans = LRUCache(resolved)
        self.lexicon_version: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.unplannable = 0
        self._unplannable_samples: List[str] = []
        # Workload capture: one representative SQL text per successfully
        # planned shape, bounded like the plan LRU.  Replaying these texts
        # through a fresh translator recompiles the same (shape, guards)
        # plans — the warm-start API (`captured_shapes`) the shard tier
        # uses to precompile respawned workers.
        self._samples = LRUCache(resolved)
        self._lock = threading.Lock()

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def lookup(self, lexicon: Lexicon, key):
        with self._lock:
            if self.lexicon_version != lexicon.version:
                self.plans.clear()
                self._samples.clear()
                self.lexicon_version = lexicon.version
            return self.plans.get(key)

    def store(self, lexicon: Lexicon, key, plan, sample_sql: Optional[str] = None) -> None:
        with self._lock:
            if self.lexicon_version != lexicon.version:
                self.plans.clear()
                self._samples.clear()
                self.lexicon_version = lexicon.version
            self.plans.put(key, plan)
            if plan is UNPLANNABLE:
                self.unplannable += 1
                if (
                    sample_sql is not None
                    and len(self._unplannable_samples) < _UNPLANNABLE_SAMPLES
                ):
                    self._unplannable_samples.append(sample_sql)
            elif sample_sql is not None:
                self._samples.put(key, sample_sql)

    def captured_shapes(self) -> List[str]:
        """The captured workload: one SQL text per successfully planned shape.

        Each returned text, translated through a fresh translator of the
        same schema and lexicon, recompiles exactly one of this store's
        plans (same shape, same guard vector) — so replaying the list is a
        faithful warm-start of the production shape set.  Texts whose plan
        has been evicted are dropped; unplannable shapes are excluded
        (replaying them would only re-discover the refusal).  See
        :meth:`repro.query_nl.translator.QueryTranslator.precompile`.
        """
        with self._lock:
            return [
                sample
                for key, sample in self._samples.items()
                if key in self.plans
            ]

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self.plans),
                "maxsize": self.plans.maxsize,
                "evictions": self.plans.evictions,
                "unplannable": self.unplannable,
                "unplannable_shapes": list(self._unplannable_samples),
            }


_STORES: "weakref.WeakKeyDictionary[Lexicon, PlanStore]" = weakref.WeakKeyDictionary()
_STORES_LOCK = threading.Lock()


def plan_store_for(lexicon: Lexicon) -> PlanStore:
    """The shared plan store for ``lexicon`` (per-schema when the lexicon is)."""
    with _STORES_LOCK:
        store = _STORES.get(lexicon)
        if store is None:
            store = PlanStore()
            _STORES[lexicon] = store
        return store
