"""Translation of aggregate (GROUP BY / HAVING) queries — Section 3.3.4, Q7.

The target narrative for Q7 is "Find the number of actors in movies of
more than one genre": the count over the join of MOVIES and CAST grouped
by movie counts *cast members*, i.e. actors; the correlated HAVING
subquery against GENRE reads as "of more than one genre".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import join_list, number_word, pluralize
from repro.query_nl.phrases import comparison_phrase, projection_caption
from repro.query_nl.procedural import procedural_translation
from repro.querygraph.model import QueryGraph
from repro.rewrite.patterns import detect_count_comparison
from repro.sql import ast


@dataclass
class AggregateTranslation:
    text: str
    concise: str
    notes: List[str] = field(default_factory=list)


class AggregateTranslator:
    """Translate grouping/aggregation queries declaratively when possible."""

    def __init__(self, schema: Schema, lexicon: Lexicon) -> None:
        self.schema = schema
        self.lexicon = lexicon

    # ------------------------------------------------------------------

    def translate(self, graph: QueryGraph) -> AggregateTranslation:
        statement = graph.statement
        notes: List[str] = []

        counted = self._counted_concept(graph)
        group_binding = self._group_binding(graph)
        if counted is None or group_binding is None:
            text = procedural_translation(
                self.schema, self.lexicon, graph, intro="The query aggregates its results"
            )
            return AggregateTranslation(
                text=text, concise=text,
                notes=["no declarative aggregate pattern matched; procedural narrative used"],
            )

        group_class = graph.classes[group_binding]
        group_concept = self.lexicon.concept_plural(group_class.relation_name)

        phrases: List[str] = [f"the number of {counted}"]
        phrases.append(f"in {group_concept}")

        having_phrase = self._having_phrase(graph, notes)
        if having_phrase:
            phrases.append(having_phrase)

        where_phrases = self._where_phrases(graph, group_binding)
        phrases.extend(where_phrases)

        extra_projections = self._non_aggregate_projections(graph, group_binding)
        text = "Find " + " ".join(phrases)
        if extra_projections:
            notes.append(
                "the grouped query also reports "
                + join_list(extra_projections)
                + " for each group"
            )
        notes.append(
            f"count(*) over the grouped join counts {counted}, not rows of the"
            f" group relation"
        )
        return AggregateTranslation(text=text, concise=text, notes=notes)

    # ------------------------------------------------------------------

    def _counted_concept(self, graph: QueryGraph) -> Optional[str]:
        """What the aggregate counts, as a plural concept noun.

        ``count(*)`` over a join counts the rows of the non-grouped FROM
        relation; when that relation is a bridge (CAST) the entity it
        bridges to (ACTOR) is what a human would say is being counted.
        ``count(x)`` / ``sum(x)`` use the caption of ``x``.
        """
        aggregates = list(graph.global_aggregates)
        for query_class in graph.classes.values():
            aggregates.extend(query_class.aggregate_entries)
        if not aggregates:
            return None

        explicit = self._explicit_aggregate_argument(graph)
        if explicit is not None:
            return explicit

        group_binding = self._group_binding(graph)
        non_group = [
            binding
            for binding in graph.bindings
            if binding != group_binding
        ]
        for binding in non_group:
            relation = self.schema.relation(graph.classes[binding].relation_name)
            if not relation.bridge:
                return self.lexicon.concept_plural(relation.name)
        for binding in non_group:
            relation = self.schema.relation(graph.classes[binding].relation_name)
            if relation.bridge:
                endpoint = self._bridge_endpoint(relation.name, graph, group_binding)
                if endpoint is not None:
                    return self.lexicon.concept_plural(endpoint)
                return self.lexicon.concept_plural(relation.name)
        group_class = graph.classes[group_binding] if group_binding else None
        if group_class is not None:
            return self.lexicon.concept_plural(group_class.relation_name)
        return None

    def _explicit_aggregate_argument(self, graph: QueryGraph) -> Optional[str]:
        for item in graph.statement.select_items:
            expression = item.expression
            if (
                isinstance(expression, ast.FunctionCall)
                and expression.is_aggregate
                and expression.args
                and isinstance(expression.args[0], ast.ColumnRef)
            ):
                column = expression.args[0]
                binding = column.table
                if binding is None:
                    continue
                try:
                    query_class = graph.query_class(binding)
                except KeyError:
                    continue
                name = expression.name.upper()
                caption = projection_caption(
                    self.schema, self.lexicon, query_class.relation_name, column.column
                )
                if name == "COUNT":
                    return caption
                words = {"SUM": "total", "AVG": "average", "MIN": "minimum", "MAX": "maximum"}
                return f"{words.get(name, name.lower())} {caption}"
        return None

    def _bridge_endpoint(
        self, bridge_name: str, graph: QueryGraph, group_binding: Optional[str]
    ) -> Optional[str]:
        group_relation = (
            graph.classes[group_binding].relation_name if group_binding else None
        )
        for fk in self.schema.foreign_keys_from(bridge_name):
            if fk.target_relation != group_relation:
                return fk.target_relation
        return None

    def _group_binding(self, graph: QueryGraph) -> Optional[str]:
        grouped = [b for b, qc in graph.classes.items() if qc.group_by]
        if grouped:
            return grouped[0]
        if graph.statement.group_by:
            # GROUP BY expressions that did not land on a class: pick the first
            # binding that a grouped column references.
            for expression in graph.statement.group_by:
                for column in ast.column_refs(expression):
                    if column.table and column.table in graph.classes:
                        return column.table
        if len(graph.classes) == 1:
            return next(iter(graph.classes))
        return None

    def _having_phrase(self, graph: QueryGraph, notes: List[str]) -> Optional[str]:
        idiom = detect_count_comparison(graph.statement)
        if idiom is None:
            return None
        if idiom.direction == "more":
            quantity = f"more than {number_word(idiom.threshold)}"
        elif idiom.direction == "fewer":
            quantity = f"fewer than {number_word(idiom.threshold)}"
        else:
            quantity = f"exactly {number_word(idiom.threshold)}"
        if idiom.counted_relation is not None:
            noun = self.lexicon.concept(idiom.counted_relation)
            if idiom.threshold != 1 or idiom.direction == "fewer":
                noun = pluralize(noun)
            notes.append(
                "the correlated HAVING subquery compares a per-group count against"
                f" a constant and reads as 'of {quantity} {noun}'"
            )
            return f"of {quantity} {noun}"
        counted = self._counted_concept(graph) or "results"
        return f"with {quantity} {counted}"

    def _where_phrases(self, graph: QueryGraph, group_binding: str) -> List[str]:
        phrases: List[str] = []
        for binding, query_class in graph.classes.items():
            for constraint in query_class.where_constraints:
                if isinstance(constraint.expression, ast.BinaryOp):
                    prefix = "" if binding == group_binding else (
                        "whose " + self.lexicon.concept(query_class.relation_name) + " "
                    )
                    phrases.append(
                        prefix
                        + comparison_phrase(
                            self.schema,
                            self.lexicon,
                            query_class.relation_name,
                            constraint.expression,
                        )
                    )
        return phrases

    def _non_aggregate_projections(self, graph: QueryGraph, group_binding: str) -> List[str]:
        projections = []
        for binding, query_class in graph.classes.items():
            for entry in query_class.select_entries:
                projections.append(
                    f"the {self.lexicon.caption(entry.relation_name, entry.attribute)}"
                    f" of the {self.lexicon.concept(entry.relation_name)}"
                )
        return projections
