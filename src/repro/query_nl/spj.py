"""Translation of select-project-join queries (path, subgraph and graph).

The composition follows the paper's examples:

* Q1 (path): "Find the titles of movies where the actor Brad Pitt plays"
  and, with the heading attribute replaced by the relation's conceptual
  meaning, the more natural "Find movies where Brad Pitt plays";
* Q2 (subgraph): "Find the actors and titles of action movies directed by
  G. Loucas";
* Q3/Q4 and the Section 3.1 manager query (graph): require non-local
  phrases — pair symmetry, attribute-against-attribute cycles, and
  comparisons against a related instance of the same relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import join_list, pluralize
from repro.query_nl.phrases import (
    comparison_phrase,
    ensure_by,
    heading_constraint_value,
    is_participle_verb,
    projection_caption,
    verb_past_participle,
    verb_plural,
    verb_without_preposition,
)
from repro.querygraph.model import QueryGraph, QueryJoinEdge
from repro.sql import ast


@dataclass
class SpjTranslation:
    """Both renderings of an SPJ query (Section 3.3.1's two alternatives)."""

    text: str
    concise: str
    notes: List[str]


class SpjTranslator:
    """Translate path/subgraph/graph queries from their query graph."""

    def __init__(self, schema: Schema, lexicon: Lexicon) -> None:
        self.schema = schema
        self.lexicon = lexicon

    # ------------------------------------------------------------------

    def translate(self, graph: QueryGraph) -> SpjTranslation:
        notes: List[str] = []
        special = (
            self._translate_pair_pattern(graph, notes)
            or self._translate_related_instance_comparison(graph, notes)
            or self._translate_attribute_cycle(graph, notes)
        )
        if special is not None:
            return SpjTranslation(text=special, concise=special, notes=notes)

        verbose = self._compose(graph, concise=False)
        concise = self._compose(graph, concise=True)
        return SpjTranslation(text=verbose, concise=concise, notes=notes)

    # ------------------------------------------------------------------
    # Special graph-query patterns (non-local template labels)
    # ------------------------------------------------------------------

    def _translate_pair_pattern(self, graph: QueryGraph, notes: List[str]) -> Optional[str]:
        """Q3: two instances of a relation sharing a neighbour → "pairs of ..."."""
        projected = graph.projected_bindings()
        if len(projected) != 2:
            return None
        first, second = projected
        relation_first = graph.classes[first].relation_name
        relation_second = graph.classes[second].relation_name
        if relation_first != relation_second:
            return None
        inequality = self._edge_between(graph, first, second)
        if inequality is None or inequality.is_foreign_key:
            return None
        shared = self._shared_neighbour(graph, first, second)
        if shared is None:
            return None
        shared_relation = graph.classes[shared].relation_name
        verb = self.lexicon.relationship_verb(relation_first, shared_relation)
        verb_phrase = (
            f"that {verb_plural(verb)}" if verb else "that appear in"
        )
        notes.append(
            "two tuple variables over the same relation joined symmetrically to a"
            " shared relation were folded into a 'pairs of' phrase"
        )
        return (
            f"Find pairs of {self.lexicon.concept_plural(relation_first)}"
            f" {verb_phrase} the same {self.lexicon.concept(shared_relation)}"
        )

    def _translate_related_instance_comparison(
        self, graph: QueryGraph, notes: List[str]
    ) -> Optional[str]:
        """The Section 3.1 query: compare an attribute against a related instance."""
        duplicated = self._duplicated_relation(graph)
        if duplicated is None:
            return None
        relation_name, bindings = duplicated
        projected = [b for b in bindings if graph.classes[b].select_entries]
        others = [b for b in bindings if b not in projected]
        if len(projected) != 1 or len(others) != 1:
            return None
        subject_binding, other_binding = projected[0], others[0]
        comparison = self._edge_between(graph, subject_binding, other_binding)
        if comparison is None or not isinstance(comparison.condition, ast.BinaryOp):
            return None
        condition = comparison.condition
        if condition.op not in ("<", "<=", ">", ">="):
            return None
        if not (
            isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        attribute = self.schema.relation(relation_name).attribute(condition.left.column)
        role = self._role_noun(graph, subject_binding, other_binding, relation_name)
        comparison_word = (
            "greater" if self._op_towards(condition, subject_binding) in (">", ">=") else "less"
        )
        relation = self.schema.relation(relation_name)
        projections = [
            projection_caption(self.schema, self.lexicon, relation_name, e.attribute)
            for e in graph.classes[subject_binding].select_entries
        ]
        caption = self.lexicon.caption(relation_name, attribute.name)
        notes.append(
            "the second instance of the relation was verbalised as a role noun"
            f" ({role}) instead of a separate tuple variable"
        )
        return (
            f"Find the {join_list(projections)} of {self.lexicon.concept_plural(relation.name)}"
            f" whose {caption} is {comparison_word} than the {caption} of their {role}"
        )

    def _translate_attribute_cycle(self, graph: QueryGraph, notes: List[str]) -> Optional[str]:
        """Q4: a non-FK equality between attributes of FK-joined relations."""
        non_fk = [e for e in graph.non_fk_join_edges() if e.is_equality]
        if not non_fk:
            return None
        edge = non_fk[0]
        condition = edge.condition
        if not (
            isinstance(condition, ast.BinaryOp)
            and isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        fk_edge = next(
            (
                e
                for e in graph.join_edges
                if e.is_foreign_key and set((e.left_binding, e.right_binding))
                == {edge.left_binding, edge.right_binding}
            ),
            None,
        )
        if fk_edge is None:
            return None
        projected = graph.projected_bindings()
        if len(projected) != 1:
            return None
        center_binding = projected[0]
        other_binding = edge.other(center_binding)
        center_relation = graph.classes[center_binding].relation_name
        other_relation = graph.classes[other_binding].relation_name
        center_column, other_column = self._orient_columns(condition, graph, center_binding)
        if center_column is None:
            return None
        center_caption = self.lexicon.caption(center_relation, center_column)
        other_caption = self.lexicon.caption(other_relation, other_column)
        notes.append(
            "the non-FK equality between attributes of joined relations was"
            " verbalised as a 'whose ... is one of their ...' phrase"
        )
        return (
            f"Find {self.lexicon.concept_plural(center_relation)}"
            f" whose {center_caption} is one of their {pluralize(other_caption)}"
        )

    # ------------------------------------------------------------------
    # General SPJ composition (Q1, Q2 and everything default)
    # ------------------------------------------------------------------

    def _compose(self, graph: QueryGraph, concise: bool) -> str:
        center = self._center_binding(graph)
        center_class = graph.classes[center]
        center_relation = self.schema.relation(center_class.relation_name)

        adjectives, consumed = self._adjectives(graph, center)
        postmodifiers = self._postmodifiers(graph, center, consumed, concise)
        center_np = " ".join(
            adjectives + [self.lexicon.concept_plural(center_relation.name)]
        )
        center_np_full = " ".join([center_np, *postmodifiers]).strip()

        nouns: List[str] = []
        center_captions: List[str] = []
        center_heading_projected = False
        for binding in graph.classes:
            query_class = graph.classes[binding]
            for entry in query_class.select_entries:
                relation = self.schema.relation(entry.relation_name)
                is_heading = entry.attribute == relation.heading_attribute.name
                if binding == center:
                    if is_heading:
                        center_heading_projected = True
                        if not concise:
                            center_captions.append(
                                projection_caption(
                                    self.schema, self.lexicon, entry.relation_name, entry.attribute
                                )
                            )
                    else:
                        center_captions.append(
                            projection_caption(
                                self.schema, self.lexicon, entry.relation_name, entry.attribute
                            )
                        )
                else:
                    if is_heading:
                        nouns.append(self.lexicon.concept_plural(entry.relation_name))
                    else:
                        nouns.append(
                            projection_caption(
                                self.schema, self.lexicon, entry.relation_name, entry.attribute
                            )
                            + f" of {self.lexicon.concept_plural(entry.relation_name)}"
                        )

        if center_captions:
            nouns.append(f"{join_list(center_captions)} of {center_np_full}")
            subject = "the " + join_list(nouns)
        elif center_heading_projected and concise:
            if nouns:
                subject = "the " + join_list(nouns) + f" of {center_np_full}"
            else:
                subject = center_np_full
        elif center_heading_projected:
            nouns.append(f"of {center_np_full}")
            subject = "the " + join_list(nouns[:-1]) + f" {nouns[-1]}" if len(nouns) > 1 else (
                "the " + center_np_full
            )
        elif nouns:
            subject = "the " + join_list(nouns) + f" of {center_np_full}"
        else:
            subject = center_np_full
        return f"Find {subject}".strip()

    def _adjectives(self, graph: QueryGraph, center: str) -> Tuple[List[str], List[str]]:
        """Prenominal adjectives from heading constraints on "category" relations.

        A relation such as GENRE, whose concept noun equals its heading
        attribute's caption, constrained to a one-word value ("action")
        reads best as an adjective on the center noun ("action movies").
        """
        adjectives: List[str] = []
        consumed: List[str] = []
        for binding, query_class in graph.classes.items():
            if binding == center or query_class.select_entries:
                continue
            relation = self.schema.relation(query_class.relation_name)
            concept = self.lexicon.concept(relation.name)
            heading_caption = self.lexicon.caption(relation.name, relation.heading_attribute.name)
            if concept.lower() != heading_caption.lower():
                continue
            value = heading_constraint_value(
                self.schema, relation.name, [c.expression for c in query_class.where_constraints]
            )
            if value is not None and len(value.split()) == 1:
                adjectives.append(value)
                consumed.append(binding)
        return adjectives, consumed

    def _postmodifiers(
        self, graph: QueryGraph, center: str, consumed: Sequence[str], concise: bool
    ) -> List[str]:
        participles: List[str] = []
        where_clauses: List[str] = []
        whose_clauses: List[str] = []

        center_relation = graph.classes[center].relation_name
        for binding, query_class in graph.classes.items():
            if binding == center or binding in consumed:
                continue
            relation = self.schema.relation(query_class.relation_name)
            if relation.bridge and not query_class.where_constraints and not query_class.select_entries:
                continue
            constraints = [c.expression for c in query_class.where_constraints]
            value = heading_constraint_value(self.schema, relation.name, constraints)
            verb = self.lexicon.relationship_verb(relation.name, center_relation)
            if value is not None:
                if verb and is_participle_verb(verb):
                    participles.append(f"{ensure_by(verb)} {value}")
                elif verb:
                    subject = value if concise else f"the {self.lexicon.concept(relation.name)} {value}"
                    where_clauses.append(
                        f"where {subject} {verb_without_preposition(verb)}"
                    )
                else:
                    whose_clauses.append(
                        f"related to the {self.lexicon.concept(relation.name)} {value}"
                    )
                remaining = [
                    c
                    for c in constraints
                    if heading_constraint_value(self.schema, relation.name, [c]) is None
                ]
            else:
                remaining = constraints
            for condition in remaining:
                if isinstance(condition, ast.BinaryOp):
                    whose_clauses.append(
                        "with "
                        + self.lexicon.concept(relation.name)
                        + " "
                        + comparison_phrase(
                            self.schema, self.lexicon, relation.name, condition, concise
                        )
                    )

        for condition in graph.classes[center].where_constraints:
            if not isinstance(condition.expression, ast.BinaryOp):
                continue
            heading_value = heading_constraint_value(
                self.schema, center_relation, [condition.expression]
            )
            if heading_value is not None:
                # An equality on the center's own heading attribute reads as
                # "whose title is X" rather than a bare apposition.
                caption = self.lexicon.heading_caption(center_relation)
                whose_clauses.append(f"whose {caption} is {heading_value}")
                continue
            whose_clauses.append(
                comparison_phrase(
                    self.schema, self.lexicon, center_relation, condition.expression, concise
                )
            )
        for constraint in graph.other_constraints:
            whose_clauses.append(f"such that {constraint.text}")
        # Several attribute conditions on the same noun read better coordinated
        # ("whose release year is greater than 2004 and whose title is ...").
        if len(whose_clauses) > 1:
            whose_clauses = [" and ".join(whose_clauses)]
        return participles + where_clauses + whose_clauses

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------

    def _center_binding(self, graph: QueryGraph) -> str:
        projected = graph.projected_bindings()
        candidates = projected or list(graph.bindings)
        if not candidates:
            raise ValueError("query graph has no relation classes")
        return max(
            candidates,
            key=lambda b: (
                graph.degree(b),
                self.schema.relation(graph.classes[b].relation_name).weight,
                b,
            ),
        )

    def _edge_between(self, graph: QueryGraph, first: str, second: str) -> Optional[QueryJoinEdge]:
        for edge in graph.join_edges:
            if {edge.left_binding, edge.right_binding} == {first, second}:
                return edge
        return None

    def _shared_neighbour(self, graph: QueryGraph, first: str, second: str) -> Optional[str]:
        """A binding both instances reach through FK edges (possibly via bridges)."""
        first_reach = self._fk_reach(graph, first)
        second_reach = self._fk_reach(graph, second)
        shared = [
            binding
            for binding in graph.bindings
            if binding in first_reach and binding in second_reach
            and binding not in (first, second)
            and not self.schema.relation(graph.classes[binding].relation_name).bridge
        ]
        if shared:
            return shared[0]
        return None

    def _fk_reach(self, graph: QueryGraph, start: str, max_hops: int = 2) -> set:
        reached = {start}
        frontier = [start]
        for _ in range(max_hops):
            next_frontier = []
            for binding in frontier:
                for edge in graph.join_edges_of(binding):
                    if not edge.is_foreign_key:
                        continue
                    other = edge.other(binding)
                    if other not in reached:
                        reached.add(other)
                        next_frontier.append(other)
            frontier = next_frontier
        return reached

    def _duplicated_relation(self, graph: QueryGraph) -> Optional[Tuple[str, List[str]]]:
        by_relation: Dict[str, List[str]] = {}
        for binding, query_class in graph.classes.items():
            by_relation.setdefault(query_class.relation_name, []).append(binding)
        for relation_name, bindings in by_relation.items():
            if len(bindings) == 2:
                return relation_name, bindings
        return None

    def _role_noun(
        self, graph: QueryGraph, subject_binding: str, other_binding: str, relation_name: str
    ) -> str:
        """A noun for the second instance ("manager") derived from the linking FK.

        The intermediate relation's attribute that references the second
        instance usually names the role (DEPT.mgr, captioned "manager");
        when nothing better is found the relation concept is used.
        """
        for binding, query_class in graph.classes.items():
            if binding in (subject_binding, other_binding):
                continue
            relation = self.schema.relation(query_class.relation_name)
            for fk in self.schema.foreign_keys_from(relation.name):
                if fk.target_relation != relation_name:
                    continue
                for edge in graph.join_edges_of(binding):
                    if edge.other(binding) != other_binding:
                        continue
                    attribute = relation.attribute(fk.source_attributes[0])
                    caption = self.lexicon.caption(relation.name, attribute.name)
                    if caption.lower() not in ("id", "identifier"):
                        return caption
        return self.lexicon.concept(relation_name)

    def _op_towards(self, condition: ast.BinaryOp, subject_binding: str) -> str:
        """The comparison operator as seen from the subject instance's side."""
        left = condition.left
        if isinstance(left, ast.ColumnRef) and left.table == subject_binding:
            return condition.op
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return flipped.get(condition.op, condition.op)

    def _orient_columns(
        self, condition: ast.BinaryOp, graph: QueryGraph, center_binding: str
    ) -> Tuple[Optional[str], Optional[str]]:
        """Columns of a non-FK equality, ordered (center column, other column)."""
        left, right = condition.left, condition.right
        if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
            return None, None
        if left.table == center_binding:
            return left.column, right.column
        if right.table == center_binding:
            return right.column, left.column
        return None, None
