"""Explanation of empty (and unexpectedly large) query answers.

Section 3.1: "when a query returns an empty answer, it is nice to know the
parts of the query that are responsible for the failure.  Similarly, when
a query is expected to return a very large number of answers, it is useful
to know the reasons".

The explainer runs the query, and when the answer is empty it relaxes the
selection constraints one at a time (then pairwise) and re-executes: the
constraints whose removal brings results back are reported as responsible.
For very large answers it reports the cross products / weakly selective
parts of the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.executor import Executor
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.lexicon.morphology import join_list
from repro.nlg.realize import realize_paragraph
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.sql.printer import expression_to_sql
from repro.storage.database import Database


@dataclass
class EmptyAnswerExplanation:
    """The outcome of analysing a query's (empty) answer."""

    row_count: int
    responsible_conditions: List[str] = field(default_factory=list)
    relaxed_counts: List[Tuple[str, int]] = field(default_factory=list)
    text: str = ""


class AnswerExplainer:
    """Explain why a query returned nothing (or too much)."""

    def __init__(
        self,
        database: Database,
        lexicon: Optional[Lexicon] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.database = database
        self.lexicon = lexicon or default_lexicon(database.schema)
        # An injected executor lets a session share one executor (and its
        # plan/scan/subquery caches) between explanation and execution.
        self.executor = executor if executor is not None else Executor(database)

    # ------------------------------------------------------------------

    def explain(self, sql_or_statement, large_threshold: int = 1000) -> EmptyAnswerExplanation:
        statement = (
            parse_select(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        result = self.executor.execute_select(statement)
        if result.row_count == 0:
            return self._explain_empty(statement)
        if result.row_count >= large_threshold:
            return self._explain_large(statement, result.row_count)
        explanation = EmptyAnswerExplanation(row_count=result.row_count)
        explanation.text = realize_paragraph(
            [f"The query returns {result.row_count} rows; no explanation is needed"]
        )
        return explanation

    # ------------------------------------------------------------------

    def _selection_conjuncts(self, statement: ast.SelectStatement) -> List[ast.Expression]:
        return [
            conjunct
            for conjunct in ast.conjuncts(statement.where)
            if ast.is_selection_condition(conjunct)
        ]

    def _with_conjuncts(
        self, statement: ast.SelectStatement, conjuncts: List[ast.Expression]
    ) -> ast.SelectStatement:
        return ast.SelectStatement(
            select_items=statement.select_items,
            from_tables=statement.from_tables,
            where=ast.conjoin(conjuncts),
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            distinct=statement.distinct,
            limit=statement.limit,
            offset=statement.offset,
        )

    def _explain_empty(self, statement: ast.SelectStatement) -> EmptyAnswerExplanation:
        explanation = EmptyAnswerExplanation(row_count=0)
        all_conjuncts = list(ast.conjuncts(statement.where))
        selections = self._selection_conjuncts(statement)

        responsible: List[str] = []
        relaxed_counts: List[Tuple[str, int]] = []
        for conjunct in selections:
            relaxed = [c for c in all_conjuncts if c is not conjunct]
            relaxed_result = self.executor.execute_select(
                self._with_conjuncts(statement, relaxed)
            )
            rendered = expression_to_sql(conjunct, top_level=True)
            relaxed_counts.append((rendered, relaxed_result.row_count))
            if relaxed_result.row_count > 0:
                responsible.append(rendered)

        pair_responsible: List[str] = []
        if not responsible and len(selections) >= 2:
            for index, first in enumerate(selections):
                for second in selections[index + 1 :]:
                    relaxed = [c for c in all_conjuncts if c is not first and c is not second]
                    relaxed_result = self.executor.execute_select(
                        self._with_conjuncts(statement, relaxed)
                    )
                    if relaxed_result.row_count > 0:
                        pair_responsible.append(
                            expression_to_sql(first, top_level=True)
                            + " together with "
                            + expression_to_sql(second, top_level=True)
                        )

        explanation.responsible_conditions = responsible or pair_responsible
        explanation.relaxed_counts = relaxed_counts

        sentences = ["The query returns no results"]
        if responsible:
            for rendered in responsible:
                count = dict(relaxed_counts).get(rendered, 0)
                noun = "row" if count == 1 else "rows"
                sentences.append(
                    f"the condition {rendered} is responsible for the failure:"
                    f" without it the query would return {count} {noun}"
                )
        elif pair_responsible:
            sentences.append(
                "no single condition explains the failure, but relaxing "
                + join_list(pair_responsible)
                + " would return results"
            )
        elif selections:
            sentences.append(
                "even relaxing the selection conditions yields nothing, so the"
                " tables involved simply contain no matching combinations"
            )
        else:
            sentences.append(
                "the query has no selection conditions, so the joined tables have"
                " no matching rows at all"
            )
        explanation.text = realize_paragraph(sentences)
        return explanation

    def _explain_large(
        self, statement: ast.SelectStatement, row_count: int
    ) -> EmptyAnswerExplanation:
        explanation = EmptyAnswerExplanation(row_count=row_count)
        sentences = [f"The query returns {row_count} rows, which may be more than intended"]

        bindings = [t.binding for t in statement.from_tables]
        join_conjuncts = [
            c for c in ast.conjuncts(statement.where) if ast.is_join_condition(c)
        ]
        joined = set()
        for conjunct in join_conjuncts:
            for column in ast.column_refs(conjunct):
                if column.table:
                    joined.add(column.table.lower())
        unjoined = [b for b in bindings if b.lower() not in joined and len(bindings) > 1]
        if unjoined:
            sentences.append(
                "the tables "
                + join_list(unjoined)
                + " are not connected to the rest of the query, producing a cross"
                " product"
            )
        if not self._selection_conjuncts(statement):
            sentences.append("the query has no selective conditions to narrow the answer")
        explanation.responsible_conditions = unjoined
        explanation.text = realize_paragraph(sentences)
        return explanation
