"""The query translator facade: SQL in, natural language out.

This is the public entry point for Section 3 of the paper.  It parses the
query, builds and classifies its query graph, dispatches to the
category-specific translator, and returns a :class:`QueryTranslation`
carrying the narrative, the category, the notes explaining how the
narrative was obtained and, when a rewrite was involved (Q5), the
rewritten SQL.

Two fast paths sit in front of the full pipeline:

* an exact-text LRU (translation is a pure function of schema, lexicon
  and SQL text), and
* shape-keyed phrase plans (:mod:`repro.query_nl.plans`): queries that
  differ from a previously translated one only in their literal values
  are rendered by slot substitution — no lexing into tokens, no parse, no
  graph build.  The query graph and classification of a plan-rendered
  translation are materialised lazily on first access.

``QueryTranslator(schema, phrase_plans=False)`` is the oracle mode that
always runs the full pipeline; the differential tests assert both modes
agree byte-for-byte on every output field.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.catalog.schema import Schema
from repro.content.presets import NarrationSpec
from repro.lexicon.lexicon import Lexicon, default_lexicon_for
from repro.oracle import resolve_compiled_default
from repro.query_nl.aggregate import AggregateTranslator
from repro.query_nl.dml import DmlTranslator
from repro.query_nl.impossible import ImpossibleTranslator
from repro.query_nl.nested import NestedTranslator
from repro.query_nl.plans import (
    UNPLANNABLE,
    compile_plan,
    plan_store_for,
    render_segments,
    shape_key,
)
from repro.query_nl.procedural import procedural_translation
from repro.query_nl.spj import SpjTranslator
from repro.querygraph.builder import builder_for
from repro.querygraph.classify import Classification, QueryCategory, classify_graph
from repro.querygraph.model import QueryGraph
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.utils.cache import LRUCache


class QueryTranslation:
    """The result of translating one statement.

    ``graph`` and ``classification`` may be materialised lazily: a
    translation rendered from a compiled phrase plan carries a factory
    instead of a built graph, and only builds it when a caller actually
    asks (the translation text itself never needs it).
    """

    __slots__ = (
        "sql",
        "text",
        "category",
        "concise",
        "notes",
        "rewritten_sql",
        "_classification",
        "_graph",
        "_graph_factory",
    )

    def __init__(
        self,
        sql: str,
        text: str,
        category: Optional[QueryCategory] = None,
        concise: Optional[str] = None,
        notes: Optional[List[str]] = None,
        rewritten_sql: Optional[str] = None,
        classification: Optional[Classification] = None,
        graph: Optional[QueryGraph] = None,
        graph_factory=None,
    ) -> None:
        self.sql = sql
        self.text = text
        self.category = category
        self.concise = concise
        self.notes = notes if notes is not None else []
        self.rewritten_sql = rewritten_sql
        self._classification = classification
        self._graph = graph
        self._graph_factory = graph_factory

    @property
    def graph(self) -> Optional[QueryGraph]:
        if self._graph is None and self._graph_factory is not None:
            self._graph = self._graph_factory()
            self._graph_factory = None
        return self._graph

    @property
    def has_graph(self) -> bool:
        """Whether a graph is available (built or lazily buildable)."""
        return self._graph is not None or self._graph_factory is not None

    @property
    def classification(self) -> Optional[Classification]:
        if self._classification is None and self.has_graph:
            self._classification = classify_graph(self.graph)
        return self._classification

    @property
    def variants(self) -> Dict[str, str]:
        """All produced renderings keyed by name."""
        variants = {"default": self.text}
        if self.concise and self.concise != self.text:
            variants["concise"] = self.concise
        return variants

    def copy(self) -> "QueryTranslation":
        """A shallow copy whose mutable ``notes`` list is the caller's own."""
        return QueryTranslation(
            sql=self.sql,
            text=self.text,
            category=self.category,
            concise=self.concise,
            notes=list(self.notes),
            rewritten_sql=self.rewritten_sql,
            classification=self._classification,
            graph=self._graph,
            graph_factory=self._graph_factory,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryTranslation):
            return NotImplemented
        return (
            self.sql == other.sql
            and self.text == other.text
            and self.category == other.category
            and self.concise == other.concise
            and self.notes == other.notes
            and self.rewritten_sql == other.rewritten_sql
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"QueryTranslation(sql={self.sql!r}, text={self.text!r},"
            f" category={self.category!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


class QueryTranslator:
    """Translate SQL statements into natural language over one schema."""

    def __init__(
        self,
        schema: Schema,
        spec: Optional[NarrationSpec] = None,
        lexicon: Optional[Lexicon] = None,
        cache_size: Optional[int] = 512,
        phrase_plans: Optional[bool] = None,
        verify_plans: bool = False,
    ) -> None:
        # ``phrase_plans`` defaults to on, unless REPRO_ORACLE forces the
        # interpreted defaults (an explicit argument always wins).
        phrase_plans = resolve_compiled_default(phrase_plans)
        self.schema = schema
        # Translation is a pure function of (schema, lexicon, SQL text), so
        # repeated translations of the same SQL — the common case when the
        # DBMS "talks back" under real traffic — are served from an LRU.
        self._cache: Optional[LRUCache] = (
            LRUCache(cache_size) if cache_size else None
        )
        if lexicon is not None:
            self.lexicon = lexicon
        elif spec is not None:
            self.lexicon = spec.lexicon
        else:
            # The shared per-schema default, so compiled per-schema state
            # (phrase plans, lexicon memos) persists across translators.
            self.lexicon = default_lexicon_for(schema)
        self.builder = builder_for(schema)
        self._spj = SpjTranslator(schema, self.lexicon)
        self._nested = NestedTranslator(schema, self.lexicon)
        self._aggregate = AggregateTranslator(schema, self.lexicon)
        self._impossible = ImpossibleTranslator(schema, self.lexicon)
        self._dml = DmlTranslator(schema, self.lexicon)
        self.verify_plans = verify_plans
        self._plans = plan_store_for(self.lexicon) if phrase_plans else None
        self._cache_lexicon_version = self.lexicon.version

    # ------------------------------------------------------------------

    def translate(self, sql_or_statement: Union[str, ast.Statement]) -> QueryTranslation:
        """Translate SQL text or a parsed statement."""
        if isinstance(sql_or_statement, str):
            sql = sql_or_statement
            if self._cache is not None:
                # Translations are lexical output: vocabulary overrides on
                # the (possibly shared) lexicon invalidate the exact-text
                # LRU just like they invalidate the phrase-plan store.
                if self._cache_lexicon_version != self.lexicon.version:
                    self._cache.clear()
                    self._cache_lexicon_version = self.lexicon.version
                cached = self._cache.get(sql)
                if cached is not None:
                    # Shallow-copy the mutable list so callers cannot
                    # corrupt the cached translation.
                    return cached.copy()
            translation = self._translate_text(sql)
            if self._cache is not None:
                # Cache the pristine original and hand the caller the copy, so
                # every lookup — hit or miss — performs exactly one copy.
                self._cache.put(sql, translation)
                return translation.copy()
            return translation
        statement = sql_or_statement
        sql = str(statement) if isinstance(statement, ast.SelectStatement) else ""
        return self._translate_statement(sql, statement)

    def translate_procedurally(
        self, sql_or_statement: Union[str, ast.SelectStatement]
    ) -> QueryTranslation:
        """The procedural (clause-by-clause) narrative, regardless of category."""
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        assert isinstance(statement, ast.SelectStatement)
        graph = self.builder.build(statement)
        text = procedural_translation(self.schema, self.lexicon, graph)
        return QueryTranslation(
            sql=sql_or_statement if isinstance(sql_or_statement, str) else str(statement),
            text=text,
            category=classify_graph(graph).category,
            notes=["procedural narrative requested explicitly"],
            graph=graph,
        )

    def try_fast_translate(self, sql: str) -> Optional[QueryTranslation]:
        """Serve ``sql`` from the exact-text LRU or a compiled phrase plan.

        Returns ``None`` when neither fast path applies — the caller then
        owns the cold (full-pipeline) translation, typically on a worker
        thread.  This is the concurrent service's direct-await path: a hit
        costs microseconds and never parses, builds or compiles, so it is
        safe to run on the event loop.  A miss records nothing (the cold
        path that follows does its own accounting).
        """
        if self._cache is not None:
            if self._cache_lexicon_version != self.lexicon.version:
                self._cache.clear()
                self._cache_lexicon_version = self.lexicon.version
            # A probe: a miss here is retried (and counted) by the cold
            # path's ``translate``, so it must not skew the stats.
            cached = self._cache.get(sql, record_miss=False)
            if cached is not None:
                return cached.copy()
        plans = self._plans
        if plans is None:
            return None
        keyed = shape_key(sql)
        if keyed is None:
            return None
        shape, guards, literals = keyed
        plan = plans.lookup(self.lexicon, (shape, guards))
        if plan is None or plan is UNPLANNABLE:
            return None
        plans.record_hit()
        rendered = self._render_plan(plan, sql, literals)
        if self.verify_plans:
            self._verify_plan_hit(rendered, sql)
        if self._cache is not None:
            # Mirror ``translate``: the pristine rendering is cached and
            # the caller receives its own copy.
            self._cache.put(sql, rendered)
            return rendered.copy()
        return rendered

    def precompile(self, shapes) -> int:
        """Warm-start: replay captured shape texts, compiling their plans.

        ``shapes`` is an iterable of SQL texts — typically
        :meth:`PlanStore.captured_shapes` output from a production
        translator (possibly in another process).  Each text runs through
        the full pipeline once, compiling its phrase plan, so the first
        *real* request of every replayed shape is already a plan hit
        instead of a cold compile.  A text that fails to translate is
        skipped (capture may outlive a schema tweak); returns how many
        texts replayed cleanly.
        """
        replayed = 0
        for sql in shapes:
            try:
                self.translate(sql)
            except Exception:
                continue
            replayed += 1
        return replayed

    def captured_shapes(self) -> List[str]:
        """This translator's captured workload (see :meth:`PlanStore.captured_shapes`)."""
        return self._plans.captured_shapes() if self._plans is not None else []

    def stats(self) -> Dict[str, Any]:
        """Cache/plan observability for this translator.

        ``exact_cache`` covers the exact-text LRU; ``plan_store`` is the
        shared per-lexicon store (hits, misses, size, plus the
        unplannable-shape report).
        """
        return {
            "exact_cache": self._cache.stats if self._cache is not None else None,
            "plan_store": self._plans.stats if self._plans is not None else None,
            "lexicon_version": self.lexicon.version,
        }

    # ------------------------------------------------------------------
    # Shape-keyed phrase plans
    # ------------------------------------------------------------------

    def _translate_text(self, sql: str) -> QueryTranslation:
        plans = self._plans
        compile_key = None
        if plans is not None:
            keyed = shape_key(sql)
            if keyed is not None:
                shape, guards, literals = keyed
                key = (shape, guards)
                plan = plans.lookup(self.lexicon, key)
                if plan is not None and plan is not UNPLANNABLE:
                    plans.record_hit()
                    rendered = self._render_plan(plan, sql, literals)
                    if self.verify_plans:
                        self._verify_plan_hit(rendered, sql)
                    return rendered
                plans.record_miss()
                if plan is None:
                    compile_key = (key, shape, guards, literals)
        translation = self._translate_statement(sql, parse_sql(sql))
        if compile_key is not None:
            key, shape, guards, literals = compile_key
            plan = compile_plan(translation, literals, guards, shape, self._probe_translate)
            plans.store(
                self.lexicon,
                key,
                plan if plan is not None else UNPLANNABLE,
                sample_sql=sql,
            )
        return translation

    def _probe_translate(self, sql: str) -> QueryTranslation:
        """One full-pipeline translation (no caches, no plans) for the probe."""
        return self._translate_statement(sql, parse_sql(sql))

    def _render_plan(self, plan, sql: str, literals) -> QueryTranslation:
        graph_factory = None
        if plan.had_graph:
            builder = self.builder

            def graph_factory(_sql=sql, _builder=builder):
                return _builder.build(parse_sql(_sql))

        return QueryTranslation(
            sql=sql,
            text=render_segments(plan.text, literals),
            category=plan.category,
            concise=render_segments(plan.concise, literals),
            notes=[render_segments(note, literals) for note in plan.notes],
            rewritten_sql=render_segments(plan.rewritten_sql, literals),
            graph_factory=graph_factory,
        )

    def _verify_plan_hit(self, rendered: QueryTranslation, sql: str) -> None:
        """Assert a plan-rendered translation equals the full pipeline's."""
        oracle = self._probe_translate(sql)
        if rendered != oracle:  # compares every textual field
            raise AssertionError(
                f"phrase plan diverged from the full pipeline on {sql!r}:"
                f" {rendered!r} != {oracle!r}"
            )

    # ------------------------------------------------------------------

    def _translate_statement(self, sql: str, statement: ast.Statement) -> QueryTranslation:
        if not isinstance(statement, ast.SelectStatement):
            return QueryTranslation(
                sql=sql,
                text=self._dml.translate(statement),
                notes=["data-manipulation statement"],
            )
        return self._translate_select(sql, statement)

    def _translate_select(self, sql: str, statement: ast.SelectStatement) -> QueryTranslation:
        graph = self.builder.build(statement)
        classification = classify_graph(graph)
        category = classification.category

        rewritten_sql: Optional[str] = None
        if category in (QueryCategory.PATH, QueryCategory.SUBGRAPH, QueryCategory.GRAPH):
            result = self._spj.translate(graph)
            text, concise, notes = result.text, result.concise, result.notes
        elif category is QueryCategory.NESTED:
            nested = self._nested.translate(graph)
            text, concise, notes = nested.text, nested.concise, nested.notes
            rewritten_sql = nested.rewritten_sql
        elif category is QueryCategory.AGGREGATE:
            aggregate = self._aggregate.translate(graph)
            text, concise, notes = aggregate.text, aggregate.concise, aggregate.notes
        else:
            impossible = self._impossible.translate(graph)
            text, concise, notes = impossible.text, impossible.concise, impossible.notes

        return QueryTranslation(
            sql=sql,
            text=text,
            concise=concise,
            category=category,
            notes=[*classification.reasons, *notes],
            rewritten_sql=rewritten_sql,
            classification=classification,
            graph=graph,
        )


def translate_query(
    schema: Schema, sql: str, spec: Optional[NarrationSpec] = None
) -> QueryTranslation:
    """Convenience one-shot translation."""
    return QueryTranslator(schema, spec=spec).translate(sql)
