"""The query translator facade: SQL in, natural language out.

This is the public entry point for Section 3 of the paper.  It parses the
query, builds and classifies its query graph, dispatches to the
category-specific translator, and returns a :class:`QueryTranslation`
carrying the narrative, the category, the notes explaining how the
narrative was obtained and, when a rewrite was involved (Q5), the
rewritten SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.catalog.schema import Schema
from repro.content.presets import NarrationSpec
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.query_nl.aggregate import AggregateTranslator
from repro.query_nl.dml import DmlTranslator
from repro.query_nl.impossible import ImpossibleTranslator
from repro.query_nl.nested import NestedTranslator
from repro.query_nl.procedural import procedural_translation
from repro.query_nl.spj import SpjTranslator
from repro.querygraph.builder import QueryGraphBuilder
from repro.querygraph.classify import Classification, QueryCategory, classify_graph
from repro.querygraph.model import QueryGraph
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.utils.cache import LRUCache


@dataclass
class QueryTranslation:
    """The result of translating one statement."""

    sql: str
    text: str
    category: Optional[QueryCategory] = None
    concise: Optional[str] = None
    notes: List[str] = field(default_factory=list)
    rewritten_sql: Optional[str] = None
    classification: Optional[Classification] = None
    graph: Optional[QueryGraph] = None

    @property
    def variants(self) -> Dict[str, str]:
        """All produced renderings keyed by name."""
        variants = {"default": self.text}
        if self.concise and self.concise != self.text:
            variants["concise"] = self.concise
        return variants

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


class QueryTranslator:
    """Translate SQL statements into natural language over one schema."""

    def __init__(
        self,
        schema: Schema,
        spec: Optional[NarrationSpec] = None,
        lexicon: Optional[Lexicon] = None,
        cache_size: Optional[int] = 512,
    ) -> None:
        self.schema = schema
        # Translation is a pure function of (schema, lexicon, SQL text), so
        # repeated translations of the same SQL — the common case when the
        # DBMS "talks back" under real traffic — are served from an LRU.
        self._cache: Optional[LRUCache] = (
            LRUCache(cache_size) if cache_size else None
        )
        if lexicon is not None:
            self.lexicon = lexicon
        elif spec is not None:
            self.lexicon = spec.lexicon
        else:
            self.lexicon = default_lexicon(schema)
        self.builder = QueryGraphBuilder(schema)
        self._spj = SpjTranslator(schema, self.lexicon)
        self._nested = NestedTranslator(schema, self.lexicon)
        self._aggregate = AggregateTranslator(schema, self.lexicon)
        self._impossible = ImpossibleTranslator(schema, self.lexicon)
        self._dml = DmlTranslator(schema, self.lexicon)

    # ------------------------------------------------------------------

    def translate(self, sql_or_statement: Union[str, ast.Statement]) -> QueryTranslation:
        """Translate SQL text or a parsed statement."""
        if isinstance(sql_or_statement, str):
            sql = sql_or_statement
            if self._cache is not None:
                cached = self._cache.get(sql)
                if cached is not None:
                    # Shallow-copy the mutable list so callers cannot
                    # corrupt the cached translation.
                    return replace(cached, notes=list(cached.notes))
            statement = parse_sql(sql_or_statement)
        else:
            statement = sql_or_statement
            sql = str(statement) if isinstance(statement, ast.SelectStatement) else ""

        if not isinstance(statement, ast.SelectStatement):
            translation = QueryTranslation(
                sql=sql,
                text=self._dml.translate(statement),
                notes=["data-manipulation statement"],
            )
        else:
            translation = self._translate_select(sql, statement)
        if self._cache is not None and isinstance(sql_or_statement, str):
            # Cache the pristine original and hand the caller the copy, so
            # every lookup — hit or miss — performs exactly one copy.
            self._cache.put(sql, translation)
            return replace(translation, notes=list(translation.notes))
        return translation

    def translate_procedurally(
        self, sql_or_statement: Union[str, ast.SelectStatement]
    ) -> QueryTranslation:
        """The procedural (clause-by-clause) narrative, regardless of category."""
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        assert isinstance(statement, ast.SelectStatement)
        graph = self.builder.build(statement)
        text = procedural_translation(self.schema, self.lexicon, graph)
        return QueryTranslation(
            sql=sql_or_statement if isinstance(sql_or_statement, str) else str(statement),
            text=text,
            category=classify_graph(graph).category,
            notes=["procedural narrative requested explicitly"],
            graph=graph,
        )

    # ------------------------------------------------------------------

    def _translate_select(self, sql: str, statement: ast.SelectStatement) -> QueryTranslation:
        graph = self.builder.build(statement)
        classification = classify_graph(graph)
        category = classification.category

        rewritten_sql: Optional[str] = None
        if category in (QueryCategory.PATH, QueryCategory.SUBGRAPH, QueryCategory.GRAPH):
            result = self._spj.translate(graph)
            text, concise, notes = result.text, result.concise, result.notes
        elif category is QueryCategory.NESTED:
            nested = self._nested.translate(graph)
            text, concise, notes = nested.text, nested.concise, nested.notes
            rewritten_sql = nested.rewritten_sql
        elif category is QueryCategory.AGGREGATE:
            aggregate = self._aggregate.translate(graph)
            text, concise, notes = aggregate.text, aggregate.concise, aggregate.notes
        else:
            impossible = self._impossible.translate(graph)
            text, concise, notes = impossible.text, impossible.concise, impossible.notes

        return QueryTranslation(
            sql=sql,
            text=text,
            concise=concise,
            category=category,
            notes=[*classification.reasons, *notes],
            rewritten_sql=rewritten_sql,
            classification=classification,
            graph=graph,
        )


def translate_query(
    schema: Schema, sql: str, spec: Optional[NarrationSpec] = None
) -> QueryTranslation:
    """Convenience one-shot translation."""
    return QueryTranslator(schema, spec=spec).translate(sql)
