"""Translation of nested queries (Section 3.3.4, queries Q5 and Q6).

Strategy, in order:

1. try to flatten IN-nestings into an SPJ query (Q5) and translate the
   flat equivalent declaratively;
2. recognise relational division (double NOT EXISTS, Q6) and verbalise it
   as universal quantification ("movies that have all genres");
3. verbalise single NOT EXISTS / NOT IN nestings as negation ("that have
   no ...");
4. fall back to the procedural narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import join_list, pluralize
from repro.query_nl.phrases import comparison_phrase
from repro.query_nl.procedural import procedural_translation
from repro.query_nl.spj import SpjTranslator
from repro.querygraph.builder import builder_for
from repro.querygraph.model import QueryGraph
from repro.rewrite.division import detect_division
from repro.rewrite.unnest import flatten_in_subqueries
from repro.sql import ast
from repro.sql.printer import to_sql


@dataclass
class NestedTranslation:
    text: str
    concise: str
    notes: List[str] = field(default_factory=list)
    rewritten_sql: Optional[str] = None


class NestedTranslator:
    """Translate nested queries."""

    def __init__(self, schema: Schema, lexicon: Lexicon) -> None:
        self.schema = schema
        self.lexicon = lexicon
        self.builder = builder_for(schema)
        self.spj = SpjTranslator(schema, lexicon)

    # ------------------------------------------------------------------

    def translate(self, graph: QueryGraph) -> NestedTranslation:
        statement = graph.statement

        flattened = flatten_in_subqueries(statement)
        if flattened.changed:
            flat_graph = self.builder.build(flattened.statement)
            if not flat_graph.is_nested() and not flat_graph.has_aggregates():
                result = self.spj.translate(flat_graph)
                notes = [
                    "the nested IN predicates have a flat select-project-join"
                    " equivalent; the translation is produced from the flat form",
                    *result.notes,
                ]
                return NestedTranslation(
                    text=result.text,
                    concise=result.concise,
                    notes=notes,
                    rewritten_sql=to_sql(flattened.statement),
                )

        division = detect_division(statement)
        if division is not None:
            return self._translate_division(graph, division)

        negation = self._translate_simple_negation(graph)
        if negation is not None:
            return negation

        text = procedural_translation(
            self.schema,
            self.lexicon,
            graph,
            intro="The query nests subqueries that have no flat equivalent",
        )
        return NestedTranslation(
            text=text,
            concise=text,
            notes=["no declarative pattern matched; the procedural narrative is used"],
        )

    # ------------------------------------------------------------------

    def _translate_division(self, graph: QueryGraph, division) -> NestedTranslation:
        outer_class = graph.query_class(division.outer_binding)
        outer_concept = self.lexicon.concept_plural(outer_class.relation_name)
        divisor_concept = self.lexicon.concept_plural(division.divisor_relation)
        if division.is_total:
            text = f"Find {outer_concept} that have all {divisor_concept}"
        else:
            conditions = join_list(division.divisor_conditions)
            text = (
                f"Find {outer_concept} that have all {divisor_concept}"
                f" satisfying {conditions}"
            )
        notes = [
            "the double NOT EXISTS nesting is relational division (universal"
            " quantification over the divisor relation)"
        ]
        return NestedTranslation(text=text, concise=text, notes=notes)

    def _translate_simple_negation(self, graph: QueryGraph) -> Optional[NestedTranslation]:
        """NOT EXISTS / NOT IN with a single simple subquery → "that have no ..."."""
        if len(graph.nesting_edges) != 1:
            return None
        nesting = graph.nesting_edges[0]
        if nesting.connector not in ("NOT EXISTS", "NOT IN"):
            return None
        subgraph = nesting.subgraph
        if len(subgraph.classes) != 1 or subgraph.is_nested():
            return None
        inner_binding = next(iter(subgraph.classes))
        inner_class = subgraph.classes[inner_binding]
        inner_relation = self.schema.relation(inner_class.relation_name)
        outer_projected = graph.projected_bindings()
        if not outer_projected:
            return None
        outer_class = graph.classes[outer_projected[0]]
        outer_concept = self.lexicon.concept_plural(outer_class.relation_name)

        qualifiers = []
        for constraint in inner_class.where_constraints:
            if isinstance(constraint.expression, ast.BinaryOp):
                qualifiers.append(
                    comparison_phrase(
                        self.schema, self.lexicon, inner_relation.name, constraint.expression
                    )
                )
        qualifier_text = f" {join_list(qualifiers)}" if qualifiers else ""
        inner_noun = self.lexicon.concept(inner_relation.name)
        text = f"Find {outer_concept} that have no {inner_noun}{qualifier_text}"
        notes = ["a single negated nesting is verbalised as 'that have no ...'"]
        return NestedTranslation(text=text, concise=text, notes=notes)
