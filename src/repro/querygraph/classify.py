"""Classification of queries into the difficulty categories of Section 3.3.

The paper orders the categories by the effort their translation needs:

* **path** — SPJ, one tuple variable per relation, at most two joins per
  relation, the join graph is a path on the schema graph (Q1);
* **subgraph** — SPJ, one tuple variable per relation, any acyclic
  FK-join subgraph of the schema graph (Q2);
* **graph** — SPJ with multiple instances of a relation, cycles, or
  non-FK joins (Q3, Q4, the EMP/manager query);
* **non-graph / nested** — nested queries (Q5, Q6);
* **non-graph / aggregate** — grouping/aggregation (Q7);
* **impossible** — queries whose meaning hides behind an idiom that the
  graph alone cannot express: ``count(distinct …) = 1`` meaning "all the
  same" (Q8), or a quantified ``ALL`` comparison meaning a superlative
  (Q9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.catalog.schema import Schema
from repro.querygraph.builder import build_query_graph
from repro.querygraph.model import QueryGraph
from repro.rewrite.all_any import detect_superlative
from repro.rewrite.patterns import detect_same_value_idiom


class QueryCategory(enum.Enum):
    """Fine-grained difficulty categories (Section 3.3)."""

    PATH = "path"
    SUBGRAPH = "subgraph"
    GRAPH = "graph"
    NESTED = "nested"
    AGGREGATE = "aggregate"
    IMPOSSIBLE = "impossible"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def family(self) -> str:
        """The paper's coarse grouping: graph-based, non-graph or impossible."""
        if self in (QueryCategory.PATH, QueryCategory.SUBGRAPH, QueryCategory.GRAPH):
            return "graph-based"
        if self in (QueryCategory.NESTED, QueryCategory.AGGREGATE):
            return "non-graph"
        return "impossible"

    @property
    def difficulty(self) -> int:
        """A 1-6 ordinal matching the paper's escalation of difficulty."""
        order = [
            QueryCategory.PATH,
            QueryCategory.SUBGRAPH,
            QueryCategory.GRAPH,
            QueryCategory.NESTED,
            QueryCategory.AGGREGATE,
            QueryCategory.IMPOSSIBLE,
        ]
        return order.index(self) + 1


@dataclass
class Classification:
    """The category of a query plus the evidence that led to it."""

    category: QueryCategory
    reasons: List[str] = field(default_factory=list)
    graph: Optional[QueryGraph] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.category.value} ({'; '.join(self.reasons)})"


def classify_graph(graph: QueryGraph) -> Classification:
    """Classify an already-built query graph."""
    reasons: List[str] = []

    if detect_same_value_idiom(graph.statement) is not None:
        reasons.append("HAVING count(distinct ...) = 1 means 'all the same'")
        return Classification(QueryCategory.IMPOSSIBLE, reasons, graph)
    superlative = detect_superlative(graph.statement)
    if superlative is not None:
        reasons.append(
            f"quantified {superlative.op} ALL comparison implies a superlative"
            f" ({superlative.superlative})"
        )
        return Classification(QueryCategory.IMPOSSIBLE, reasons, graph)

    if graph.has_aggregates() or graph.statement.group_by:
        reasons.append("the query groups and/or aggregates")
        return Classification(QueryCategory.AGGREGATE, reasons, graph)

    if graph.is_nested():
        connectors = ", ".join(edge.connector for edge in graph.nesting_edges)
        reasons.append(f"the query nests subqueries via {connectors}")
        return Classification(QueryCategory.NESTED, reasons, graph)

    if graph.has_multiple_instances():
        reasons.append("a relation participates through more than one tuple variable")
        return Classification(QueryCategory.GRAPH, reasons, graph)
    if graph.non_fk_join_edges():
        reasons.append("a join condition does not follow a foreign key")
        return Classification(QueryCategory.GRAPH, reasons, graph)
    if graph.has_cycle():
        reasons.append("the join graph contains a cycle")
        return Classification(QueryCategory.GRAPH, reasons, graph)
    if not graph.is_connected() and len(graph.classes) > 1:
        reasons.append("the join graph is disconnected (cross product)")
        return Classification(QueryCategory.GRAPH, reasons, graph)

    max_degree = max((graph.degree(b) for b in graph.bindings), default=0)
    if max_degree > 2:
        reasons.append("a relation participates in more than two joins")
        return Classification(QueryCategory.SUBGRAPH, reasons, graph)

    reasons.append("the join graph is a simple path of foreign-key joins")
    return Classification(QueryCategory.PATH, reasons, graph)


def classify_query(schema: Schema, sql_or_statement) -> Classification:
    """Parse/build/classify in one call."""
    graph = build_query_graph(schema, sql_or_statement)
    return classify_graph(graph)
