"""Query-graph model, builder and classifier (Section 3 of the paper)."""

from repro.querygraph.builder import QueryGraphBuilder, build_query_graph
from repro.querygraph.classify import (
    Classification,
    QueryCategory,
    classify_graph,
    classify_query,
)
from repro.querygraph.model import (
    Constraint,
    NestingEdge,
    QueryClass,
    QueryGraph,
    QueryJoinEdge,
    SelectEntry,
)

__all__ = [
    "Classification",
    "Constraint",
    "NestingEdge",
    "QueryCategory",
    "QueryClass",
    "QueryGraph",
    "QueryGraphBuilder",
    "QueryJoinEdge",
    "SelectEntry",
    "build_query_graph",
    "classify_graph",
    "classify_query",
]
