"""Build a :class:`QueryGraph` from a parsed SELECT statement.

Validation is *fused* into the graph-build pass: the builder used to run
:class:`repro.sql.validator.Validator` over every expression and then walk
the exact same expressions again to distribute them over the graph.  The
fused pass resolves each column reference once — the probe that decides
where a conjunct belongs is the same probe that raises the validator's
errors — and nested subqueries are validated by their own (nested) build.
The standalone validator is retained as the differential oracle:
``use_reference_validation()`` switches a scope back to the two-pass
pipeline, and the test suite asserts that both modes produce identical
graphs on valid statements and identical error objects on invalid ones.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.errors import SqlValidationError
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.sql.printer import expression_to_sql
from repro.sql.validator import Validator
from repro.utils.cache import LRUCache
from repro.querygraph.model import (
    Constraint,
    NestingEdge,
    QueryClass,
    QueryGraph,
    QueryJoinEdge,
    SelectEntry,
)

_REFERENCE_VALIDATION = False


@contextmanager
def use_reference_validation() -> Iterator[None]:
    """Route graph builds through the standalone-validator oracle for a scope.

    Used by the benchmarks to measure the two-pass front end and by the
    differential tests that compare fused and oracle error objects.
    """
    global _REFERENCE_VALIDATION
    previous = _REFERENCE_VALIDATION
    _REFERENCE_VALIDATION = True
    try:
        yield
    finally:
        _REFERENCE_VALIDATION = previous


class _FusedScope:
    """Precomputed lookup maps for one SELECT's *visible* bindings.

    Mirrors ``repro.sql.validator._Scope`` exactly (construction order and
    all), but is memoized per visible-binding shape by the builder, so
    queries repeating a FROM shape skip map construction entirely.
    """

    __slots__ = ("visible_items", "lowered", "owners")

    def __init__(self, visible_items: Tuple[Tuple[str, object], ...]) -> None:
        self.visible_items = visible_items
        lowered: Dict[str, Tuple[str, object]] = {}
        for binding, relation in visible_items:
            lowered.setdefault(binding.lower(), (binding, relation))
        self.lowered = lowered
        owners: Dict[str, List[Tuple[str, object]]] = {}
        for binding, relation in visible_items:
            for attribute in relation.attribute_names:
                bucket = owners.setdefault(attribute.lower(), [])
                if not bucket or bucket[-1][0] != binding:
                    bucket.append((binding, relation))
        self.owners = owners


class QueryGraphBuilder:
    """Translate SELECT ASTs into the UML-style query graph of Section 3.2.

    The builder is stateful per schema: relation lookups, FK pairs,
    per-FROM-shape binding maps and per-visible-shape validation scopes
    are all memoized, and each ``build`` performs the fused
    validate-and-distribute pass described in the module docstring — the
    front-end analogue of the executor's pre-resolved column slots.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.validator = Validator(schema)
        self._relation_cache: Dict[str, object] = {}
        self._fk_pair_cache: Dict[Tuple[str, str], frozenset] = {}
        self._binding_state: List[Tuple[Dict[str, str], Dict[str, List[str]]]] = []
        # Bounded: the convenience builder is shared process-wide per
        # schema, so unbounded per-shape memos would be a slow leak
        # under workloads with ever-fresh alias sets.
        self._binding_state_cache = LRUCache(512)
        self._scopes: List[_FusedScope] = []
        self._scope_cache = LRUCache(512)
        # ``build`` keeps per-statement stacks (binding state, fused
        # scopes) on the instance, and the ``builder_for`` builder is
        # shared process-wide per schema — so concurrent builds (the
        # service runs sessions of one schema on worker threads) serialize
        # here.  Reentrant because nested subqueries build recursively.
        self._build_lock = threading.RLock()

    def _relation(self, name: str):
        relation = self._relation_cache.get(name)
        if relation is None:
            relation = self.schema.relation(name)
            self._relation_cache[name] = relation
        return relation

    # ------------------------------------------------------------------

    def build_from_sql(self, sql: str) -> QueryGraph:
        return self.build(parse_select(sql))

    def build(self, statement: ast.SelectStatement, depth: int = 0,
              outer_bindings: Optional[Dict[str, str]] = None,
              _validated: bool = False) -> QueryGraph:
        """Build the query graph; nested queries become nested graphs.

        In fused mode (the default) semantic validation happens inside the
        distribution walk below.  In reference mode the standalone
        validator runs first; ``_validated`` is then set by
        :meth:`_nesting_edge` for subqueries, whose outer
        ``validate_select`` already validated them recursively.
        """
        with self._build_lock:
            fused = not _REFERENCE_VALIDATION
            if not fused and not _validated:
                self.validator.validate_select(
                    statement, outer_bindings=self._outer_relations(outer_bindings)
                )
            graph = QueryGraph(statement=statement, depth=depth)

            binding_map = self._collect_bindings_checked(statement)
            binding_relations: Dict[str, str] = {}
            for binding, relation in binding_map.items():
                binding_relations[binding] = relation.name
                graph.classes[binding] = QueryClass(binding=binding, relation_name=relation.name)
            self._push_binding_state(binding_relations)
            if fused:
                outer_items = self._outer_scope_items(outer_bindings)
                self._scopes.append(self._scope_for(outer_items, binding_map))

            # Clause order matches the validator's traversal (select, where,
            # group, having, order) so the fused pass surfaces the same first
            # error the two-pass pipeline would.
            try:
                self._distribute_select(statement, graph, binding_relations)
                self._distribute_where(statement, graph, binding_relations, outer_bindings)
                self._distribute_group(statement, graph, binding_relations)
                self._distribute_having(statement, graph, binding_relations, outer_bindings)
                self._distribute_order(statement, graph, binding_relations)
            finally:
                self._pop_binding_state()
                if fused:
                    self._scopes.pop()
            return graph

    # ------------------------------------------------------------------
    # Fused validation: scopes, column checks and the combined walk
    # ------------------------------------------------------------------

    def _collect_bindings_checked(self, statement: ast.SelectStatement) -> Dict[str, object]:
        """FROM-clause bindings with the validator's exact error objects."""
        bindings: Dict[str, object] = {}
        seen: set = set()
        for table in statement.from_tables:
            if not self.schema.has_relation(table.name):
                raise SqlValidationError(
                    f"unknown relation {table.name!r} in FROM clause"
                )
            relation = self._relation(table.name)
            binding = table.binding
            lowered = binding.lower()
            if lowered in seen:
                raise SqlValidationError(
                    f"duplicate table alias {binding!r} in FROM clause"
                )
            seen.add(lowered)
            bindings[binding] = relation
        return bindings

    def _outer_scope_items(
        self, outer_bindings: Optional[Dict[str, str]]
    ) -> Tuple[Tuple[str, object], ...]:
        if not outer_bindings:
            return ()
        return tuple(
            (binding, self._relation(relation))
            for binding, relation in outer_bindings.items()
        )

    def _scope_for(
        self,
        outer_items: Tuple[Tuple[str, object], ...],
        local_map: Dict[str, object],
    ) -> _FusedScope:
        merged: Dict[str, object] = dict(outer_items)
        merged.update(local_map)
        items = tuple(merged.items())
        key = tuple((binding, relation.name) for binding, relation in items)
        scope = self._scope_cache.get(key)
        if scope is None:
            scope = _FusedScope(items)
            self._scope_cache.put(key, scope)
        return scope

    def _check_column(self, column: ast.ColumnRef, scope: _FusedScope) -> None:
        """Resolve one column reference, raising the validator's errors."""
        if column.table is not None:
            entry = scope.lowered.get(column.table.lower())
            if entry is None:
                raise SqlValidationError(f"unknown table alias {column.table!r}")
            binding, relation = entry
            if relation._find(column.column) is None:
                raise SqlValidationError(
                    f"relation {relation.name!r} (alias {column.table!r}) has no"
                    f" attribute {column.column!r}"
                )
            return
        matches = scope.owners.get(column.column.lower(), ())
        if not matches:
            raise SqlValidationError(
                f"column {column.column!r} does not exist in any table of the query"
            )
        if len(matches) > 1:
            candidates = ", ".join(f"{b}.{column.column}" for b, _ in matches)
            raise SqlValidationError(
                f"column reference {column.column!r} is ambiguous ({candidates})"
            )

    def _walk_validate(
        self,
        expression: ast.Expression,
        scope: _FusedScope,
        collector: List[ast.ColumnRef],
    ) -> None:
        """One walk doing the validator's checks *and* column collection."""
        if isinstance(expression, ast.ColumnRef):
            self._check_column(expression, scope)
            collector.append(expression)
            return
        if isinstance(
            expression,
            (ast.InSubquery, ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery),
        ):
            if isinstance(expression, (ast.InSubquery, ast.QuantifiedComparison)):
                self._walk_validate(expression.operand, scope, collector)
            self._validate_subselect(expression.subquery, scope, collector)
            return
        if isinstance(expression, ast.SelectStatement):  # pragma: no cover - defensive
            self._validate_subselect(expression, scope, collector)
            return
        for child in expression.children():
            if isinstance(child, ast.Expression):
                self._walk_validate(child, scope, collector)

    def _validate_subselect(
        self,
        statement: ast.SelectStatement,
        outer_scope: _FusedScope,
        collector: List[ast.ColumnRef],
    ) -> None:
        """Validate a subquery that does not become a nested graph.

        Conjunct-level subqueries (IN/EXISTS/quantified/scalar connectors)
        are validated by their own nested ``build``; this path covers
        subqueries in other positions (select list, inside OR, order by).
        The collector keeps accumulating column references so the outer
        placement walk sees exactly what ``ast.column_refs`` used to see.
        """
        bindings = self._collect_bindings_checked(statement)
        scope = self._scope_for(outer_scope.visible_items, bindings)
        for item in statement.select_items:
            self._walk_validate(item.expression, scope, collector)
        if statement.where is not None:
            self._walk_validate(statement.where, scope, collector)
        for expression in statement.group_by:
            self._walk_validate(expression, scope, collector)
        if statement.having is not None:
            self._walk_validate(statement.having, scope, collector)
        for order in statement.order_by:
            self._walk_validate(order.expression, scope, collector)

    def _analyse(self, expression: ast.Expression) -> List[ast.ColumnRef]:
        """Column references of ``expression``, validating them in fused mode."""
        if self._scopes:
            collector: List[ast.ColumnRef] = []
            self._walk_validate(expression, self._scopes[-1], collector)
            return collector
        return list(ast.column_refs(expression))

    # ------------------------------------------------------------------
    # Per-statement binding state (placement maps, local bindings only)
    # ------------------------------------------------------------------

    def _push_binding_state(self, binding_relations: Dict[str, str]) -> None:
        """Precompute the lowered alias map and unqualified-column owners.

        Nested queries build their own graphs re-entrantly while the outer
        build is in flight, so the state lives on a stack.  States are
        memoized per FROM shape: the maps are read-only after construction.
        """
        key = tuple(binding_relations.items())
        state = self._binding_state_cache.get(key)
        if state is None:
            lowered = {binding.lower(): binding for binding in binding_relations}
            owners: Dict[str, List[str]] = {}
            for binding, relation_name in binding_relations.items():
                for attribute in self._relation(relation_name).attribute_names:
                    bucket = owners.setdefault(attribute.lower(), [])
                    if not bucket or bucket[-1] != binding:
                        bucket.append(binding)
            state = (lowered, owners)
            self._binding_state_cache.put(key, state)
        self._binding_state.append(state)

    def _pop_binding_state(self) -> None:
        self._binding_state.pop()

    # ------------------------------------------------------------------
    # SELECT list
    # ------------------------------------------------------------------

    def _distribute_select(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
    ) -> None:
        for item in statement.select_items:
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                self._analyse(expression)
                binding = self._binding_of(expression)
                if binding is None:
                    graph.other_constraints.append(Constraint.from_expression(expression))
                    continue
                relation_name = binding_relations[binding]
                attribute = self._relation(relation_name).attribute(expression.column).name
                graph.classes[binding].select_entries.append(
                    SelectEntry(
                        binding=binding,
                        relation_name=relation_name,
                        attribute=attribute,
                        output_alias=item.alias,
                    )
                )
            elif isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
                columns = self._analyse(expression)
                rendered = str(expression)
                target = self._aggregate_binding(columns, binding_relations)
                if target is not None:
                    graph.classes[target].aggregate_entries.append(rendered)
                else:
                    graph.global_aggregates.append(rendered)
            elif isinstance(expression, ast.Star):
                star = expression
                for binding, relation_name in binding_relations.items():
                    if star.table is not None and binding.lower() != star.table.lower():
                        continue
                    relation = self._relation(relation_name)
                    for attribute in relation.attributes:
                        graph.classes[binding].select_entries.append(
                            SelectEntry(
                                binding=binding,
                                relation_name=relation_name,
                                attribute=attribute.name,
                            )
                        )
            else:
                self._analyse(expression)
                graph.other_constraints.append(Constraint.from_expression(expression))

    def _aggregate_binding(
        self, columns: List[ast.ColumnRef], binding_relations: Dict[str, str]
    ) -> Optional[str]:
        """The class an aggregate belongs to: the single binding it references.

        ``count(*)`` references no binding and stays global, matching
        Figure 7 where ``count(*)`` is drawn inside the class it counts
        only when the argument names it.
        """
        referenced = {
            column.table.lower() for column in columns if column.table is not None
        }
        matches = [b for b in binding_relations if b.lower() in referenced]
        if len(matches) == 1:
            return matches[0]
        return None

    # ------------------------------------------------------------------
    # WHERE clause
    # ------------------------------------------------------------------

    def _distribute_where(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
    ) -> None:
        for conjunct in ast.conjuncts(statement.where):
            self._place_conjunct(conjunct, graph, binding_relations, outer_bindings, in_having=False)

    def _distribute_having(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
    ) -> None:
        for conjunct in ast.conjuncts(statement.having):
            self._place_conjunct(conjunct, graph, binding_relations, outer_bindings, in_having=True)

    def _place_conjunct(
        self,
        conjunct: ast.Expression,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
        in_having: bool,
    ) -> None:
        nested = self._nesting_edge(conjunct, graph, binding_relations, outer_bindings, in_having)
        if nested is not None:
            graph.nesting_edges.append(nested)
            return

        columns = self._analyse(conjunct)
        referenced = self._referenced_bindings(columns)

        if len(referenced) == 2 and isinstance(conjunct, ast.BinaryOp) and not in_having:
            left, right = sorted(referenced)
            graph.join_edges.append(
                QueryJoinEdge(
                    left_binding=left,
                    right_binding=right,
                    condition=conjunct,
                    is_foreign_key=self._is_fk_join(conjunct, binding_relations),
                    is_equality=conjunct.op == "=",
                )
            )
            return
        constraint = Constraint.from_expression(conjunct)
        if len(referenced) == 1:
            binding = next(iter(referenced))
            target = graph.classes[binding]
            if in_having:
                target.having_constraints.append(constraint)
            else:
                target.where_constraints.append(constraint)
            return
        graph.other_constraints.append(constraint)

    def _nesting_edge(
        self,
        conjunct: ast.Expression,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
        in_having: bool,
    ) -> Optional[NestingEdge]:
        """Build a nesting edge when the conjunct contains a subquery connector.

        Operands and subqueries are analysed in the validator's traversal
        order (left before right, operand before subquery) so the fused
        pass reports the same first error the oracle would.
        """
        visible = dict(outer_bindings or {})
        visible.update(binding_relations)

        connector: Optional[str] = None
        subgraph: Optional[QueryGraph] = None
        outer_binding: Optional[str] = None

        def nested_build(subquery: ast.SelectStatement) -> QueryGraph:
            return self.build(
                subquery, depth=graph.depth + 1, outer_bindings=visible, _validated=True
            )

        if isinstance(conjunct, ast.InSubquery):
            connector = "NOT IN" if conjunct.negated else "IN"
            outer_binding = self._first_binding(self._analyse(conjunct.operand))
            subgraph = nested_build(conjunct.subquery)
        elif isinstance(conjunct, ast.Exists):
            connector = "NOT EXISTS" if conjunct.negated else "EXISTS"
            subgraph = nested_build(conjunct.subquery)
        elif isinstance(conjunct, ast.QuantifiedComparison):
            connector = f"{conjunct.op} {conjunct.quantifier}"
            outer_binding = self._first_binding(self._analyse(conjunct.operand))
            subgraph = nested_build(conjunct.subquery)
        elif isinstance(conjunct, ast.BinaryOp):
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ast.ScalarSubquery):
                connector = f"SCALAR {conjunct.op}"
                subgraph = nested_build(left.subquery)
                outer_binding = self._first_binding(self._analyse(right))
            elif isinstance(right, ast.ScalarSubquery):
                connector = f"SCALAR {conjunct.op}"
                outer_binding = self._first_binding(self._analyse(left))
                subgraph = nested_build(right.subquery)

        if connector is None or subgraph is None:
            return None

        return NestingEdge(
            connector=connector,
            subgraph=subgraph,
            outer_binding=outer_binding,
            in_having=in_having,
            condition_text=expression_to_sql(conjunct, top_level=True),
        )

    # ------------------------------------------------------------------
    # GROUP BY / ORDER BY notes
    # ------------------------------------------------------------------

    def _distribute_group(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
    ) -> None:
        for expression in statement.group_by:
            binding = self._first_binding(self._analyse(expression))
            rendered = expression_to_sql(expression, top_level=True)
            if binding is not None:
                graph.classes[binding].group_by.append(rendered)
            else:
                graph.other_constraints.append(Constraint.from_expression(expression))

    def _distribute_order(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
    ) -> None:
        for order in statement.order_by:
            binding = self._first_binding(self._analyse(order.expression))
            rendered = expression_to_sql(order.expression, top_level=True)
            if order.descending:
                rendered += " DESC"
            if binding is not None:
                graph.classes[binding].order_by.append(rendered)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _outer_relations(self, outer_bindings: Optional[Dict[str, str]]):
        if not outer_bindings:
            return None
        return {
            binding: self._relation(relation)
            for binding, relation in outer_bindings.items()
        }

    def _referenced_bindings(self, columns: List[ast.ColumnRef]) -> set:
        lowered, owners = self._binding_state[-1]
        found = set()
        for column in columns:
            if column.table is not None:
                binding = lowered.get(column.table.lower())
                if binding is not None:
                    found.add(binding)
            else:
                owning = owners.get(column.column.lower())
                if owning is not None and len(owning) == 1:
                    found.add(owning[0])
        return found

    def _binding_of(self, column: ast.ColumnRef) -> Optional[str]:
        lowered, owners = self._binding_state[-1]
        if column.table is not None:
            return lowered.get(column.table.lower())
        owning = owners.get(column.column.lower())
        if owning is None:
            return None
        if len(owning) == 1:
            return owning[0]
        raise SqlValidationError(f"ambiguous column {column.column!r}")

    def _first_binding(self, columns: List[ast.ColumnRef]) -> Optional[str]:
        for column in columns:
            binding = self._binding_of(column)
            if binding is not None:
                return binding
        return None

    def _is_fk_join(
        self, condition: ast.BinaryOp, binding_relations: Dict[str, str]
    ) -> bool:
        """True when the equality matches a declared FK column pair."""
        if not ast.is_join_condition(condition):
            return False
        left = condition.left
        right = condition.right
        assert isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)
        left_binding = self._binding_of(left)
        right_binding = self._binding_of(right)
        if left_binding is None or right_binding is None:
            return False
        left_relation = binding_relations[left_binding]
        right_relation = binding_relations[right_binding]
        pairs = self._fk_pairs(left_relation, right_relation)
        if not pairs:
            return False
        return (
            (left.column.lower(), right.column.lower()) in pairs
            or (right.column.lower(), left.column.lower()) in pairs
        )

    def _fk_pairs(self, left_relation: str, right_relation: str) -> frozenset:
        """Lowered FK column pairs between two relations, memoized."""
        key = (left_relation, right_relation)
        pairs = self._fk_pair_cache.get(key)
        if pairs is None:
            collected = set()
            for fk in self.schema.foreign_keys_between(left_relation, right_relation):
                for a, b in fk.column_pairs():
                    collected.add((a.lower(), b.lower()))
            pairs = frozenset(collected)
            self._fk_pair_cache[key] = pairs
        return pairs


#: One builder per schema for the convenience entry point, so repeated
#: ``build_query_graph`` calls share the memoized relation lookups.  The
#: builder keeps its schema alive, so in practice this is one entry per
#: distinct schema the process works with.
_SHARED_BUILDERS: "weakref.WeakKeyDictionary[Schema, QueryGraphBuilder]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_BUILDERS_LOCK = threading.Lock()


def builder_for(schema: Schema) -> QueryGraphBuilder:
    """The shared (memoizing, internally locked) builder for ``schema``."""
    with _SHARED_BUILDERS_LOCK:
        builder = _SHARED_BUILDERS.get(schema)
        if builder is None:
            builder = QueryGraphBuilder(schema)
            _SHARED_BUILDERS[schema] = builder
        return builder


def build_query_graph(schema: Schema, sql_or_statement) -> QueryGraph:
    """Convenience: build the query graph for SQL text or a parsed SELECT."""
    builder = builder_for(schema)
    if isinstance(sql_or_statement, str):
        return builder.build_from_sql(sql_or_statement)
    return builder.build(sql_or_statement)
