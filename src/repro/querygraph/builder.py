"""Build a :class:`QueryGraph` from a parsed (and validated) SELECT statement."""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.errors import SqlValidationError
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.sql.printer import expression_to_sql
from repro.sql.validator import Validator
from repro.querygraph.model import (
    Constraint,
    NestingEdge,
    QueryClass,
    QueryGraph,
    QueryJoinEdge,
    SelectEntry,
)


class QueryGraphBuilder:
    """Translate SELECT ASTs into the UML-style query graph of Section 3.2.

    The builder is stateful per schema: relation lookups are memoized and
    each ``build`` precomputes the statement's binding maps (lowered
    alias table, unqualified-column ownership) once instead of re-deriving
    them per conjunct — the front-end analogue of the executor's
    pre-resolved column slots.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.validator = Validator(schema)
        self._relation_cache: Dict[str, object] = {}
        self._fk_pair_cache: Dict[Tuple[str, str], frozenset] = {}
        self._binding_state: List[Tuple[Dict[str, str], Dict[str, List[str]]]] = []

    def _relation(self, name: str):
        relation = self._relation_cache.get(name)
        if relation is None:
            relation = self.schema.relation(name)
            self._relation_cache[name] = relation
        return relation

    # ------------------------------------------------------------------

    def build_from_sql(self, sql: str) -> QueryGraph:
        return self.build(parse_select(sql))

    def build(self, statement: ast.SelectStatement, depth: int = 0,
              outer_bindings: Optional[Dict[str, str]] = None,
              _validated: bool = False) -> QueryGraph:
        """Build the query graph; nested queries become nested graphs.

        ``_validated`` is set by :meth:`_nesting_edge` for subqueries: the
        outer ``validate_select`` already validated them recursively with
        the same visible bindings, so re-validating would only repeat work.
        """
        if not _validated:
            self.validator.validate_select(
                statement, outer_bindings=self._outer_relations(outer_bindings)
            )
        graph = QueryGraph(statement=statement, depth=depth)

        binding_relations: Dict[str, str] = {}
        for table in statement.from_tables:
            relation = self._relation(table.name)
            binding = table.binding
            binding_relations[binding] = relation.name
            graph.classes[binding] = QueryClass(binding=binding, relation_name=relation.name)
        self._push_binding_state(binding_relations)

        try:
            self._distribute_select(statement, graph, binding_relations)
            self._distribute_where(statement, graph, binding_relations, outer_bindings)
            self._distribute_group_order(statement, graph, binding_relations)
            self._distribute_having(statement, graph, binding_relations, outer_bindings)
        finally:
            self._pop_binding_state()
        return graph

    # ------------------------------------------------------------------
    # Per-statement binding state
    # ------------------------------------------------------------------

    def _push_binding_state(self, binding_relations: Dict[str, str]) -> None:
        """Precompute the lowered alias map and unqualified-column owners.

        Nested queries build their own graphs re-entrantly while the outer
        build is in flight, so the state lives on a stack.
        """
        lowered = {binding.lower(): binding for binding in binding_relations}
        owners: Dict[str, List[str]] = {}
        for binding, relation_name in binding_relations.items():
            for attribute in self._relation(relation_name).attribute_names:
                bucket = owners.setdefault(attribute.lower(), [])
                if not bucket or bucket[-1] != binding:
                    bucket.append(binding)
        self._binding_state.append((lowered, owners))

    def _pop_binding_state(self) -> None:
        self._binding_state.pop()

    # ------------------------------------------------------------------
    # SELECT list
    # ------------------------------------------------------------------

    def _distribute_select(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
    ) -> None:
        for item in statement.select_items:
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                binding = self._binding_of(expression, binding_relations)
                if binding is None:
                    graph.other_constraints.append(Constraint.from_expression(expression))
                    continue
                relation_name = binding_relations[binding]
                attribute = self._relation(relation_name).attribute(expression.column).name
                graph.classes[binding].select_entries.append(
                    SelectEntry(
                        binding=binding,
                        relation_name=relation_name,
                        attribute=attribute,
                        output_alias=item.alias,
                    )
                )
            elif isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
                rendered = str(expression)
                target = self._aggregate_binding(expression, binding_relations)
                if target is not None:
                    graph.classes[target].aggregate_entries.append(rendered)
                else:
                    graph.global_aggregates.append(rendered)
            elif isinstance(expression, ast.Star):
                star = expression
                for binding, relation_name in binding_relations.items():
                    if star.table is not None and binding.lower() != star.table.lower():
                        continue
                    relation = self._relation(relation_name)
                    for attribute in relation.attributes:
                        graph.classes[binding].select_entries.append(
                            SelectEntry(
                                binding=binding,
                                relation_name=relation_name,
                                attribute=attribute.name,
                            )
                        )
            else:
                graph.other_constraints.append(Constraint.from_expression(expression))

    def _aggregate_binding(
        self, aggregate: ast.FunctionCall, binding_relations: Dict[str, str]
    ) -> Optional[str]:
        """The class an aggregate belongs to: the single binding it references.

        ``count(*)`` references no binding and stays global, matching
        Figure 7 where ``count(*)`` is drawn inside the class it counts
        only when the argument names it.
        """
        referenced = {
            column.table
            for column in ast.column_refs(aggregate)
            if column.table is not None
        }
        matches = [b for b in binding_relations if b.lower() in {r.lower() for r in referenced}]
        if len(matches) == 1:
            return matches[0]
        return None

    # ------------------------------------------------------------------
    # WHERE clause
    # ------------------------------------------------------------------

    def _distribute_where(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
    ) -> None:
        for conjunct in ast.conjuncts(statement.where):
            self._place_conjunct(conjunct, graph, binding_relations, outer_bindings, in_having=False)

    def _distribute_having(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
    ) -> None:
        for conjunct in ast.conjuncts(statement.having):
            self._place_conjunct(conjunct, graph, binding_relations, outer_bindings, in_having=True)

    def _place_conjunct(
        self,
        conjunct: ast.Expression,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
        in_having: bool,
    ) -> None:
        nested = self._nesting_edge(conjunct, graph, binding_relations, outer_bindings, in_having)
        if nested is not None:
            graph.nesting_edges.append(nested)
            return

        referenced = self._referenced_bindings(conjunct, binding_relations)

        if len(referenced) == 2 and isinstance(conjunct, ast.BinaryOp) and not in_having:
            left, right = sorted(referenced)
            graph.join_edges.append(
                QueryJoinEdge(
                    left_binding=left,
                    right_binding=right,
                    condition=conjunct,
                    is_foreign_key=self._is_fk_join(conjunct, binding_relations),
                    is_equality=conjunct.op == "=",
                )
            )
            return
        constraint = Constraint.from_expression(conjunct)
        if len(referenced) == 1:
            binding = next(iter(referenced))
            target = graph.classes[binding]
            if in_having:
                target.having_constraints.append(constraint)
            else:
                target.where_constraints.append(constraint)
            return
        graph.other_constraints.append(constraint)

    def _nesting_edge(
        self,
        conjunct: ast.Expression,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
        outer_bindings: Optional[Dict[str, str]],
        in_having: bool,
    ) -> Optional[NestingEdge]:
        """Build a nesting edge when the conjunct contains a subquery connector."""
        connector: Optional[str] = None
        subquery: Optional[ast.SelectStatement] = None
        outer_binding: Optional[str] = None

        if isinstance(conjunct, ast.InSubquery):
            connector = "NOT IN" if conjunct.negated else "IN"
            subquery = conjunct.subquery
            outer_binding = self._first_binding(conjunct.operand, binding_relations)
        elif isinstance(conjunct, ast.Exists):
            connector = "NOT EXISTS" if conjunct.negated else "EXISTS"
            subquery = conjunct.subquery
        elif isinstance(conjunct, ast.QuantifiedComparison):
            connector = f"{conjunct.op} {conjunct.quantifier}"
            subquery = conjunct.subquery
            outer_binding = self._first_binding(conjunct.operand, binding_relations)
        elif isinstance(conjunct, ast.BinaryOp):
            for side in (conjunct.left, conjunct.right):
                if isinstance(side, ast.ScalarSubquery):
                    connector = f"SCALAR {conjunct.op}"
                    subquery = side.subquery
                    other_side = conjunct.left if side is conjunct.right else conjunct.right
                    outer_binding = self._first_binding(other_side, binding_relations)
                    break

        if connector is None or subquery is None:
            return None

        visible = dict(outer_bindings or {})
        visible.update(binding_relations)
        subgraph = self.build(
            subquery, depth=graph.depth + 1, outer_bindings=visible, _validated=True
        )
        return NestingEdge(
            connector=connector,
            subgraph=subgraph,
            outer_binding=outer_binding,
            in_having=in_having,
            condition_text=expression_to_sql(conjunct, top_level=True),
        )

    # ------------------------------------------------------------------
    # GROUP BY / ORDER BY notes
    # ------------------------------------------------------------------

    def _distribute_group_order(
        self,
        statement: ast.SelectStatement,
        graph: QueryGraph,
        binding_relations: Dict[str, str],
    ) -> None:
        for expression in statement.group_by:
            binding = self._first_binding(expression, binding_relations)
            rendered = expression_to_sql(expression, top_level=True)
            if binding is not None:
                graph.classes[binding].group_by.append(rendered)
            else:
                graph.other_constraints.append(Constraint.from_expression(expression))
        for order in statement.order_by:
            binding = self._first_binding(order.expression, binding_relations)
            rendered = expression_to_sql(order.expression, top_level=True)
            if order.descending:
                rendered += " DESC"
            if binding is not None:
                graph.classes[binding].order_by.append(rendered)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _outer_relations(self, outer_bindings: Optional[Dict[str, str]]):
        if not outer_bindings:
            return None
        return {
            binding: self._relation(relation)
            for binding, relation in outer_bindings.items()
        }

    def _referenced_bindings(
        self, expression: ast.Expression, binding_relations: Dict[str, str]
    ) -> set:
        lowered, owners = self._binding_state[-1]
        found = set()
        for column in ast.column_refs(expression):
            if column.table is not None:
                binding = lowered.get(column.table.lower())
                if binding is not None:
                    found.add(binding)
            else:
                owning = owners.get(column.column.lower())
                if owning is not None and len(owning) == 1:
                    found.add(owning[0])
        return found

    def _binding_of(
        self, column: ast.ColumnRef, binding_relations: Dict[str, str]
    ) -> Optional[str]:
        lowered, owners = self._binding_state[-1]
        if column.table is not None:
            return lowered.get(column.table.lower())
        owning = owners.get(column.column.lower())
        if owning is None:
            return None
        if len(owning) == 1:
            return owning[0]
        raise SqlValidationError(f"ambiguous column {column.column!r}")

    def _first_binding(
        self, expression: ast.Expression, binding_relations: Dict[str, str]
    ) -> Optional[str]:
        for column in ast.column_refs(expression):
            binding = self._binding_of(column, binding_relations)
            if binding is not None:
                return binding
        return None

    def _is_fk_join(
        self, condition: ast.BinaryOp, binding_relations: Dict[str, str]
    ) -> bool:
        """True when the equality matches a declared FK column pair."""
        if not ast.is_join_condition(condition):
            return False
        left = condition.left
        right = condition.right
        assert isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)
        left_binding = self._binding_of(left, binding_relations)
        right_binding = self._binding_of(right, binding_relations)
        if left_binding is None or right_binding is None:
            return False
        left_relation = binding_relations[left_binding]
        right_relation = binding_relations[right_binding]
        pairs = self._fk_pairs(left_relation, right_relation)
        if not pairs:
            return False
        return (
            (left.column.lower(), right.column.lower()) in pairs
            or (right.column.lower(), left.column.lower()) in pairs
        )

    def _fk_pairs(self, left_relation: str, right_relation: str) -> frozenset:
        """Lowered FK column pairs between two relations, memoized."""
        key = (left_relation, right_relation)
        pairs = self._fk_pair_cache.get(key)
        if pairs is None:
            collected = set()
            for fk in self.schema.foreign_keys_between(left_relation, right_relation):
                for a, b in fk.column_pairs():
                    collected.add((a.lower(), b.lower()))
            pairs = frozenset(collected)
            self._fk_pair_cache[key] = pairs
        return pairs


#: One builder per schema for the convenience entry point, so repeated
#: ``build_query_graph`` calls share the memoized relation lookups.  The
#: builder keeps its schema alive, so in practice this is one entry per
#: distinct schema the process works with.
_SHARED_BUILDERS: "weakref.WeakKeyDictionary[Schema, QueryGraphBuilder]" = (
    weakref.WeakKeyDictionary()
)


def builder_for(schema: Schema) -> QueryGraphBuilder:
    """A shared (memoizing) builder for ``schema``."""
    builder = _SHARED_BUILDERS.get(schema)
    if builder is None:
        builder = QueryGraphBuilder(schema)
        _SHARED_BUILDERS[schema] = builder
    return builder


def build_query_graph(schema: Schema, sql_or_statement) -> QueryGraph:
    """Convenience: build the query graph for SQL text or a parsed SELECT."""
    builder = builder_for(schema)
    if isinstance(sql_or_statement, str):
        return builder.build_from_sql(sql_or_statement)
    return builder.build(sql_or_statement)
