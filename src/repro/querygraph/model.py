"""The query-graph model of Section 3.2 (Figure 2).

Each relation participating in a query becomes a *parameterised class*
with four parts — ``<<FROM>>`` (the relation name), ``<<SELECT>>`` (the
projected attributes, as ``alias.relation.attribute: output``),
``<<WHERE>>`` (local constraints) and ``<<HAVING>>`` (grouping
constraints) — plus two UML notes, ``<<GROUP BY>>`` and ``<<ORDER BY>>``.
The classes are connected by join edges; nested queries hang off the outer
graph through nesting edges labelled with their connector (IN, EXISTS,
``<= ALL``, scalar comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sql import ast
from repro.sql.printer import expression_to_sql


@dataclass(frozen=True)
class SelectEntry:
    """One ``<<SELECT>>`` line: ``alias.relation.attribute: output_alias``."""

    binding: str
    relation_name: str
    attribute: str
    output_alias: Optional[str] = None

    def render(self) -> str:
        text = f"{self.binding}.{self.relation_name}.{self.attribute}"
        if self.output_alias and self.output_alias != self.attribute:
            return f"{text}: {self.output_alias}"
        return text


class Constraint:
    """A constraint attached to a class (``<<WHERE>>`` or ``<<HAVING>>``).

    ``text`` — the SQL rendering used by class-box figures and the
    "such that ..." narration fallback — is computed lazily: most
    constraints are narrated from their expression structure and never
    need the rendered SQL.
    """

    __slots__ = ("expression", "_text")

    def __init__(self, expression: ast.Expression, text: Optional[str] = None) -> None:
        self.expression = expression
        self._text = text

    @property
    def text(self) -> str:
        if self._text is None:
            self._text = expression_to_sql(self.expression, top_level=True)
        return self._text

    @classmethod
    def from_expression(cls, expression: ast.Expression) -> "Constraint":
        return cls(expression=expression)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.expression == other.expression and self.text == other.text

    def __hash__(self) -> int:
        return hash((self.expression, self.text))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Constraint(expression={self.expression!r}, text={self.text!r})"


@dataclass
class QueryClass:
    """One parameterised class of the query graph (Figure 2)."""

    binding: str
    relation_name: str
    select_entries: List[SelectEntry] = field(default_factory=list)
    where_constraints: List[Constraint] = field(default_factory=list)
    having_constraints: List[Constraint] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    order_by: List[str] = field(default_factory=list)
    aggregate_entries: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The textual rendering of the class box (used by figures/benches)."""
        lines = [f"<<FROM>> {self.relation_name}", f"<<alias>> {self.binding}"]
        lines.append("<<SELECT>>")
        for entry in self.select_entries:
            lines.append(f"  {entry.render()}")
        for aggregate in self.aggregate_entries:
            lines.append(f"  {aggregate}")
        lines.append("<<WHERE>>")
        for constraint in self.where_constraints:
            lines.append(f"  {constraint.text}")
        lines.append("<<HAVING>>")
        for constraint in self.having_constraints:
            lines.append(f"  {constraint.text}")
        if self.group_by:
            lines.append("<<GROUP BY>> " + ", ".join(self.group_by))
        if self.order_by:
            lines.append("<<ORDER BY>> " + ", ".join(self.order_by))
        return "\n".join(lines)


@dataclass(frozen=True)
class QueryJoinEdge:
    """A join edge between two classes, labelled with its condition."""

    left_binding: str
    right_binding: str
    condition: ast.Expression
    is_foreign_key: bool = False
    is_equality: bool = True

    @property
    def text(self) -> str:
        return expression_to_sql(self.condition, top_level=True)

    def touches(self, binding: str) -> bool:
        return binding in (self.left_binding, self.right_binding)

    def other(self, binding: str) -> str:
        return self.right_binding if binding == self.left_binding else self.left_binding


@dataclass
class NestingEdge:
    """An edge connecting the outer graph to a nested query graph.

    ``connector`` is the SQL construct that introduces the nesting:
    ``IN``, ``NOT IN``, ``EXISTS``, ``NOT EXISTS``, ``<op> ALL``,
    ``<op> ANY`` or ``SCALAR`` (a subquery used as a value, as in Q7's
    HAVING clause).  ``outer_binding`` is the tuple variable the connector
    applies to, when one can be identified.
    """

    connector: str
    subgraph: "QueryGraph"
    outer_binding: Optional[str] = None
    in_having: bool = False
    condition_text: str = ""


@dataclass
class QueryGraph:
    """The complete graph-based representation of one SELECT statement."""

    statement: ast.SelectStatement
    classes: Dict[str, QueryClass] = field(default_factory=dict)
    join_edges: List[QueryJoinEdge] = field(default_factory=list)
    nesting_edges: List[NestingEdge] = field(default_factory=list)
    other_constraints: List[Constraint] = field(default_factory=list)
    global_aggregates: List[str] = field(default_factory=list)
    depth: int = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def bindings(self) -> Tuple[str, ...]:
        return tuple(self.classes)

    def query_class(self, binding: str) -> QueryClass:
        lowered = binding.lower()
        for candidate, query_class in self.classes.items():
            if candidate.lower() == lowered:
                return query_class
        raise KeyError(binding)

    def relations_used(self) -> Tuple[str, ...]:
        return tuple(qc.relation_name for qc in self.classes.values())

    def classes_of_relation(self, relation_name: str) -> List[QueryClass]:
        lowered = relation_name.lower()
        return [
            qc for qc in self.classes.values() if qc.relation_name.lower() == lowered
        ]

    def has_multiple_instances(self) -> bool:
        """True when some relation appears under more than one tuple variable."""
        relations = [qc.relation_name for qc in self.classes.values()]
        return len(relations) != len(set(relations))

    def join_edges_of(self, binding: str) -> List[QueryJoinEdge]:
        """Join edges incident to ``binding``, from a lazily-built index.

        Classification and translation probe this per binding; the index
        is rebuilt whenever edges were added since it was last built.
        """
        cache = getattr(self, "_edges_by_binding", None)
        if cache is None or getattr(self, "_edges_indexed", -1) != len(self.join_edges):
            cache = {}
            for edge in self.join_edges:
                cache.setdefault(edge.left_binding, []).append(edge)
                if edge.right_binding != edge.left_binding:
                    cache.setdefault(edge.right_binding, []).append(edge)
            self._edges_by_binding = cache
            self._edges_indexed = len(self.join_edges)
        return cache.get(binding, [])

    def degree(self, binding: str) -> int:
        return len(self.join_edges_of(binding))

    def non_fk_join_edges(self) -> List[QueryJoinEdge]:
        return [edge for edge in self.join_edges if not edge.is_foreign_key]

    def has_cycle(self) -> bool:
        """True when the join graph (as a multigraph) contains a cycle."""
        parent: Dict[str, str] = {b: b for b in self.classes}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for edge in self.join_edges:
            if edge.left_binding not in parent or edge.right_binding not in parent:
                continue
            if edge.left_binding == edge.right_binding:
                return True
            left_root, right_root = find(edge.left_binding), find(edge.right_binding)
            if left_root == right_root:
                return True
            parent[left_root] = right_root
        return False

    def is_connected(self) -> bool:
        if not self.classes:
            return True
        bindings = list(self.classes)
        seen = {bindings[0]}
        frontier = [bindings[0]]
        while frontier:
            current = frontier.pop()
            for edge in self.join_edges_of(current):
                other = edge.other(current)
                if other in self.classes and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(bindings)

    def projected_bindings(self) -> List[str]:
        return [b for b, qc in self.classes.items() if qc.select_entries]

    def has_aggregates(self) -> bool:
        if self.global_aggregates:
            return True
        return any(qc.aggregate_entries for qc in self.classes.values())

    def is_nested(self) -> bool:
        return bool(self.nesting_edges)

    # ------------------------------------------------------------------
    # Rendering (Figures 3-7)
    # ------------------------------------------------------------------

    def render_text(self, indent: str = "") -> str:
        """A textual rendering of the whole graph, nested graphs indented."""
        blocks: List[str] = []
        for binding in self.classes:
            box = self.classes[binding].render()
            blocks.append("\n".join(indent + line for line in box.splitlines()))
        for edge in self.join_edges:
            blocks.append(f"{indent}[join] {edge.text}")
        for constraint in self.other_constraints:
            blocks.append(f"{indent}[constraint] {constraint.text}")
        for aggregate in self.global_aggregates:
            blocks.append(f"{indent}[aggregate] {aggregate}")
        for nesting in self.nesting_edges:
            where = "HAVING" if nesting.in_having else "WHERE"
            blocks.append(f"{indent}[nested via {nesting.connector} in {where}]")
            blocks.append(nesting.subgraph.render_text(indent + "    "))
        return "\n".join(blocks)

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the query graph (record-shaped classes)."""
        lines = ["digraph query {", "  rankdir=LR;", "  node [shape=record];"]
        self._dot_nodes(lines, prefix="")
        lines.append("}")
        return "\n".join(lines)

    def _dot_nodes(self, lines: List[str], prefix: str) -> None:
        for binding, query_class in self.classes.items():
            select = "\\n".join(e.render() for e in query_class.select_entries) or " "
            where = "\\n".join(c.text for c in query_class.where_constraints) or " "
            label = (
                f"{{<<FROM>> {query_class.relation_name} ({binding})"
                f" | <<SELECT>> {select} | <<WHERE>> {where}}}"
            )
            lines.append(f'  "{prefix}{binding}" [label="{_escape(label)}"];')
        for edge in self.join_edges:
            lines.append(
                f'  "{prefix}{edge.left_binding}" -> "{prefix}{edge.right_binding}"'
                f' [label="{_escape(edge.text)}", dir=none];'
            )
        for index, nesting in enumerate(self.nesting_edges):
            sub_prefix = f"{prefix}nq{index}_"
            nesting.subgraph._dot_nodes(lines, prefix=sub_prefix)
            outer = nesting.outer_binding or (next(iter(self.classes), ""))
            inner = next(iter(nesting.subgraph.classes), "")
            if outer and inner:
                lines.append(
                    f'  "{prefix}{outer}" -> "{sub_prefix}{inner}"'
                    f' [label="{_escape(nesting.connector)}", style=dashed];'
                )

    def summary(self) -> str:
        """One line describing the graph's size and shape (used by benches)."""
        return (
            f"{len(self.classes)} classes, {len(self.join_edges)} join edges"
            f" ({len(self.non_fk_join_edges())} non-FK),"
            f" {len(self.nesting_edges)} nested blocks,"
            f" multi-instance={self.has_multiple_instances()},"
            f" cyclic={self.has_cycle()},"
            f" aggregates={self.has_aggregates()}"
        )


def _escape(text: str) -> str:
    return text.replace('"', '\\"').replace("<", "\\<").replace(">", "\\>")
