"""Column-at-a-time (vectorized) evaluation over columnar arrays.

When a scan's table exposes :meth:`~repro.storage.api.TableStorage.columnar_arrays`
(the columnar engine does), the executor can evaluate a filter or a
projection as whole-column comprehensions instead of calling a closure
per row: no per-row dict probes, no :class:`~repro.storage.row.Row`
allocation for rows the filter rejects.  This module compiles the
*restricted* expression subset that makes that profitable —

* column references bound to the scanned relation,
* literals (including parameter-slot literals, via
  :class:`repro.engine.parameterised.ParamVectorCompiler`),
* comparisons, ``AND``/``OR``/``NOT``, ``IS [NOT] NULL``,
  ``[NOT] BETWEEN``, ``[NOT] IN (literals)``, ``[NOT] LIKE``,
* arithmetic, ``||``, and the scalar functions
  ``LOWER``/``UPPER``/``LENGTH``/``ABS``

— and raises :class:`VectorUnsupported` for everything else
(subqueries, CASE, aggregates, star, other-table references), at which
point the executor silently stays row-at-a-time.  Falling back is
always safe because vectorization is an *execution strategy*, not a
semantics change: the differential suite holds both paths
byte-identical.

Semantics parity rules (load-bearing — see ``test_storage_engines``):

* SQL three-valued logic is replicated element-wise, including the
  exact ``None``/``False`` short-circuit results of the row compiler's
  ``run_and``/``run_or``.
* A vectorized evaluation may raise where the row path would not
  (vectors evaluate both branches of ``AND``/``OR``; rows short-
  circuit).  The executor therefore treats *any* expected evaluation
  error (``EvaluationError``, ``TypeError``, ``ZeroDivisionError``) as
  "not vectorizable for this data" and re-runs the node row-at-a-time,
  which either succeeds (short-circuit saved it) or raises exactly the
  error the oracle raises.  The reverse cannot happen: a vector
  evaluates a superset of what the rows evaluate.
* Selection order is position order == insertion order, matching the
  row scan.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.evaluator import like_regex
from repro.errors import EvaluationError
from repro.sql import ast
from repro.storage.row import Row

__all__ = [
    "VectorUnsupported",
    "Vec",
    "VectorExpressionCompiler",
]

#: arrays are ``{attribute name: column list}``; ``n`` is the row count.
Arrays = Dict[str, List[Any]]
#: A selection: positions (insertion order) surviving a predicate.
Selection = Sequence[int]

_COMPARISONS: Dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: ``lit OP col`` rewritten as ``col OP' lit`` for the fused fast path.
_SWAPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class VectorUnsupported(Exception):
    """Raised at compile time: expression outside the vectorized subset."""


class Vec:
    """A compiled vector expression.

    ``scalar`` distinguishes row-independent values (``fn(arrays, n) ->
    value``, e.g. literals and parameter slots) from true columns
    (``fn(arrays, n) -> list of length n``).
    """

    __slots__ = ("scalar", "fn")

    def __init__(self, scalar: bool, fn: Callable[[Arrays, int], Any]) -> None:
        self.scalar = scalar
        self.fn = fn


class VectorExpressionCompiler:
    """Compile AST expressions into column-at-a-time closures.

    One compiler per (relation, binding): column references are
    resolved against the relation's attributes at *compile* time, so
    the generated closures index straight into the arrays dict.
    """

    def __init__(self, relation, binding: str) -> None:
        self._binding = (binding or "").lower()
        self._attrs = {a.name.lower(): a.name for a in relation.attributes}

    # -- hooks the parameterised subclass overrides --------------------

    def _literal(self, e: ast.Literal) -> Vec:
        value = e.value
        return Vec(True, lambda arrays, n: value)

    def _is_constant(self, literal: ast.Literal) -> bool:
        return True

    # -- public entry points -------------------------------------------

    def compile_selection(
        self, predicate: Optional[ast.Expression]
    ) -> Callable[[Arrays, int], Selection]:
        """Compile a WHERE predicate to a position-selection function."""
        if predicate is None:
            return lambda arrays, n: range(n)
        fused = self._fuse_conjuncts(predicate)
        if fused is not None:
            return fused
        vec = self.compile(predicate)
        if vec.scalar:
            fn = vec.fn

            def run_scalar(arrays: Arrays, n: int) -> Selection:
                value = fn(arrays, n)
                return range(n) if (bool(value) and value is not None) else ()

            return run_scalar
        fn = vec.fn

        def run(arrays: Arrays, n: int) -> Selection:
            flags = fn(arrays, n)
            # None is falsy: NULL predicate results never select, same
            # as compile_predicate's ``bool(value) and value is not None``.
            return [i for i, flag in enumerate(flags) if flag]

        return run

    def compile_conjunction(
        self, predicates: Sequence[ast.Expression]
    ) -> Callable[[Arrays, int], Selection]:
        """Compile stacked WHERE predicates (innermost first) to one selection.

        The planner splits ``a AND b`` into stacked filter nodes; this
        entry point fuses the whole stack back into a single narrowing
        chain so a range scan plus a LIKE runs as two passes over
        shrinking position lists instead of two full filter operators.
        When some predicate is outside the fused shape, the selections
        are intersected full-width instead — still correct, because the
        executor's error fallback covers the one divergence (an outer
        predicate may be evaluated at positions an inner one rejected).
        """
        if not predicates:
            return lambda arrays, n: range(n)
        if len(predicates) == 1:
            return self.compile_selection(predicates[0])
        tests = []
        for predicate in predicates:
            for conjunct in _flatten_and(predicate):
                test = self._fused_test(conjunct)
                if test is None:
                    tests = None
                    break
                tests.append(test)
            if tests is None:
                break
        if tests is not None:
            return _narrowing_chain(tests)
        fns = [self.compile_selection(p) for p in predicates]

        def run(arrays: Arrays, n: int) -> Selection:
            selected: Optional[List[int]] = None
            for fn in fns:
                chosen = fn(arrays, n)
                if selected is None:
                    selected = chosen if isinstance(chosen, list) else list(chosen)
                else:
                    keep = chosen if isinstance(chosen, range) else set(chosen)
                    selected = [i for i in selected if i in keep]
                if not selected:
                    return []
            return selected if selected is not None else range(n)

        return run

    def compile_projection(
        self, items: Sequence[Tuple[str, ast.Expression]]
    ) -> Callable[[Arrays, int, Selection], List[Row]]:
        """Compile ``(output name, expression)`` select items to a row builder."""
        compiled = [(name, self.compile(expression)) for name, expression in items]

        def build(arrays: Arrays, n: int, selection: Selection) -> List[Row]:
            columns: List[Tuple[str, Any, bool]] = [
                (name, vec.fn(arrays, n), vec.scalar) for name, vec in compiled
            ]
            adopt = Row.adopt
            if len(columns) == 1:
                name, column, scalar = columns[0]
                if scalar:
                    return [adopt({name: column}) for _ in selection]
                return [adopt({name: column[i]}) for i in selection]
            out: List[Row] = []
            for i in selection:
                values: Dict[str, Any] = {}
                for name, column, scalar in columns:
                    values[name] = column if scalar else column[i]
                out.append(adopt(values))
            return out

        return build

    # -- dispatch ------------------------------------------------------

    def compile(self, e: ast.Expression) -> Vec:
        if isinstance(e, ast.Literal):
            return self._literal(e)
        if isinstance(e, ast.ColumnRef):
            return self._compile_column(e)
        if isinstance(e, ast.BinaryOp):
            return self._compile_binary(e)
        if isinstance(e, ast.UnaryOp):
            return self._compile_unary(e)
        if isinstance(e, ast.IsNull):
            return self._compile_is_null(e)
        if isinstance(e, ast.Between):
            return self._compile_between(e)
        if isinstance(e, ast.InList):
            return self._compile_in_list(e)
        if isinstance(e, ast.FunctionCall):
            return self._compile_function(e)
        raise VectorUnsupported(type(e).__name__)

    # -- leaves --------------------------------------------------------

    def _column_name(self, e: ast.ColumnRef) -> str:
        """The canonical attribute name, or VectorUnsupported."""
        if e.table is not None and e.table.lower() != self._binding:
            raise VectorUnsupported(f"column {e.qualified} outside scan binding")
        canonical = self._attrs.get(e.column.lower())
        if canonical is None:
            # Unknown column: the row path owns the error message.
            raise VectorUnsupported(f"unknown column {e.qualified}")
        return canonical

    def _compile_column(self, e: ast.ColumnRef) -> Vec:
        name = self._column_name(e)
        return Vec(False, lambda arrays, n: arrays[name])

    # -- operators -----------------------------------------------------

    def _compile_binary(self, e: ast.BinaryOp) -> Vec:
        op = e.op.upper()
        if op == "AND":
            return self._compile_and(self.compile(e.left), self.compile(e.right))
        if op == "OR":
            return self._compile_or(self.compile(e.left), self.compile(e.right))
        if op in ("LIKE", "NOT LIKE"):
            return self._compile_like(e, negate=op == "NOT LIKE")
        comparison = _COMPARISONS.get(op)
        if comparison is not None:
            return self._compile_compare(e, op, comparison)
        if op in ("+", "-", "*"):
            arith = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]
            return self._elementwise2(
                self.compile(e.left), self.compile(e.right), arith
            )
        if op == "/":
            return self._elementwise2(
                self.compile(e.left), self.compile(e.right), _div
            )
        if op == "%":
            return self._elementwise2(
                self.compile(e.left), self.compile(e.right), _mod
            )
        if op == "||":
            return self._elementwise2(
                self.compile(e.left), self.compile(e.right), _concat
            )
        raise VectorUnsupported(f"operator {e.op!r}")

    def _compile_and(self, lv: Vec, rv: Vec) -> Vec:
        if lv.scalar and rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_ss(arrays: Arrays, n: int) -> Any:
                return _and_values(lf(arrays, n), rf(arrays, n))

            return Vec(True, run_ss)
        if lv.scalar or rv.scalar:
            scalar, column = (lv, rv) if lv.scalar else (rv, lv)
            sf, cf = scalar.fn, column.fn

            def run_sc(arrays: Arrays, n: int) -> List[Any]:
                fixed = sf(arrays, n)
                if fixed is False:
                    return [False] * n
                values = cf(arrays, n)
                return [_and_values(fixed, v) for v in values]

            return Vec(False, run_sc)
        lf, rf = lv.fn, rv.fn

        def run_cc(arrays: Arrays, n: int) -> List[Any]:
            return [
                _and_values(a, b) for a, b in zip(lf(arrays, n), rf(arrays, n))
            ]

        return Vec(False, run_cc)

    def _compile_or(self, lv: Vec, rv: Vec) -> Vec:
        if lv.scalar and rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_ss(arrays: Arrays, n: int) -> Any:
                return _or_values(lf(arrays, n), rf(arrays, n))

            return Vec(True, run_ss)
        if lv.scalar or rv.scalar:
            scalar, column = (lv, rv) if lv.scalar else (rv, lv)
            sf, cf = scalar.fn, column.fn

            def run_sc(arrays: Arrays, n: int) -> List[Any]:
                fixed = sf(arrays, n)
                if fixed is not None and fixed:
                    return [True] * n
                values = cf(arrays, n)
                return [_or_values(fixed, v) for v in values]

            return Vec(False, run_sc)
        lf, rf = lv.fn, rv.fn

        def run_cc(arrays: Arrays, n: int) -> List[Any]:
            return [
                _or_values(a, b) for a, b in zip(lf(arrays, n), rf(arrays, n))
            ]

        return Vec(False, run_cc)

    def _compile_compare(self, e: ast.BinaryOp, op: str, comparison) -> Vec:
        lv, rv = self.compile(e.left), self.compile(e.right)
        if lv.scalar and rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_ss(arrays: Arrays, n: int) -> Any:
                left, right = lf(arrays, n), rf(arrays, n)
                if left is None or right is None:
                    return None
                return comparison(left, right)

            return Vec(True, run_ss)
        if rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_cs(arrays: Arrays, n: int) -> List[Any]:
                right = rf(arrays, n)
                if right is None:
                    return [None] * n
                return [
                    None if v is None else comparison(v, right)
                    for v in lf(arrays, n)
                ]

            return Vec(False, run_cs)
        if lv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_sc(arrays: Arrays, n: int) -> List[Any]:
                left = lf(arrays, n)
                if left is None:
                    return [None] * n
                return [
                    None if v is None else comparison(left, v)
                    for v in rf(arrays, n)
                ]

            return Vec(False, run_sc)
        lf, rf = lv.fn, rv.fn

        def run_cc(arrays: Arrays, n: int) -> List[Any]:
            return [
                None if a is None or b is None else comparison(a, b)
                for a, b in zip(lf(arrays, n), rf(arrays, n))
            ]

        return Vec(False, run_cc)

    def _compile_like(self, e: ast.BinaryOp, negate: bool) -> Vec:
        value_vec = self.compile(e.left)
        pattern_vec = self.compile(e.right)
        if not pattern_vec.scalar:
            raise VectorUnsupported("column LIKE pattern")
        if value_vec.scalar:
            vf, pf = value_vec.fn, pattern_vec.fn

            def run_ss(arrays: Arrays, n: int) -> Any:
                value, pattern = vf(arrays, n), pf(arrays, n)
                if value is None or pattern is None:
                    return None
                matched = like_regex(str(pattern)).match(str(value)) is not None
                return not matched if negate else matched

            return Vec(True, run_ss)
        vf, pf = value_vec.fn, pattern_vec.fn

        def run(arrays: Arrays, n: int) -> List[Any]:
            pattern = pf(arrays, n)
            if pattern is None:
                return [None] * n
            match = like_regex(str(pattern)).match
            if negate:
                return [
                    None if v is None else match(str(v)) is None
                    for v in vf(arrays, n)
                ]
            return [
                None if v is None else match(str(v)) is not None
                for v in vf(arrays, n)
            ]

        return Vec(False, run)

    def _compile_unary(self, e: ast.UnaryOp) -> Vec:
        vec = self.compile(e.operand)
        if e.op.upper() == "NOT":
            if vec.scalar:
                fn = vec.fn

                def run_s(arrays: Arrays, n: int) -> Any:
                    value = fn(arrays, n)
                    return None if value is None else not bool(value)

                return Vec(True, run_s)
            fn = vec.fn
            return Vec(
                False,
                lambda arrays, n: [
                    None if v is None else not bool(v) for v in fn(arrays, n)
                ],
            )
        if e.op == "-":
            if vec.scalar:
                fn = vec.fn

                def run_neg_s(arrays: Arrays, n: int) -> Any:
                    value = fn(arrays, n)
                    return None if value is None else -value

                return Vec(True, run_neg_s)
            fn = vec.fn
            return Vec(
                False,
                lambda arrays, n: [
                    None if v is None else -v for v in fn(arrays, n)
                ],
            )
        raise VectorUnsupported(f"unary operator {e.op!r}")

    def _compile_is_null(self, e: ast.IsNull) -> Vec:
        vec = self.compile(e.operand)
        negated = e.negated
        if vec.scalar:
            fn = vec.fn
            if negated:
                return Vec(True, lambda arrays, n: fn(arrays, n) is not None)
            return Vec(True, lambda arrays, n: fn(arrays, n) is None)
        fn = vec.fn
        if negated:
            return Vec(
                False, lambda arrays, n: [v is not None for v in fn(arrays, n)]
            )
        return Vec(False, lambda arrays, n: [v is None for v in fn(arrays, n)])

    def _compile_between(self, e: ast.Between) -> Vec:
        value_vec = self.compile(e.operand)
        low_vec = self.compile(e.low)
        high_vec = self.compile(e.high)
        if not (low_vec.scalar and high_vec.scalar):
            raise VectorUnsupported("BETWEEN with column bounds")
        negated = e.negated
        if value_vec.scalar:
            vf, lf, hf = value_vec.fn, low_vec.fn, high_vec.fn

            def run_s(arrays: Arrays, n: int) -> Any:
                value, low, high = vf(arrays, n), lf(arrays, n), hf(arrays, n)
                if value is None or low is None or high is None:
                    return None
                result = low <= value <= high
                return not result if negated else result

            return Vec(True, run_s)
        vf, lf, hf = value_vec.fn, low_vec.fn, high_vec.fn

        def run(arrays: Arrays, n: int) -> List[Any]:
            low, high = lf(arrays, n), hf(arrays, n)
            if low is None or high is None:
                return [None] * n
            if negated:
                return [
                    None if v is None else not (low <= v <= high)
                    for v in vf(arrays, n)
                ]
            return [
                None if v is None else (low <= v <= high) for v in vf(arrays, n)
            ]

        return Vec(False, run)

    def _compile_in_list(self, e: ast.InList) -> Vec:
        value_vec = self.compile(e.operand)
        item_vecs = [self.compile(v) for v in e.values]
        if any(not item.scalar for item in item_vecs):
            raise VectorUnsupported("IN list with column items")
        negated = e.negated
        # Mirror the row compiler's two membership strategies: frozen-set
        # probes for all-constant lists (unhashable probes raise, caught
        # by the executor's fallback), list membership otherwise.
        use_set = all(
            isinstance(v, ast.Literal) and self._is_constant(v) for v in e.values
        )
        if value_vec.scalar:
            vf = value_vec.fn
            fns = [item.fn for item in item_vecs]

            def run_s(arrays: Arrays, n: int) -> Any:
                value = vf(arrays, n)
                if value is None:
                    return None
                items = [fn(arrays, n) for fn in fns]
                found = value in [v for v in items if v is not None]
                if not found and any(v is None for v in items):
                    return None
                return not found if negated else found

            return Vec(True, run_s)
        vf = value_vec.fn
        fns = [item.fn for item in item_vecs]

        def run(arrays: Arrays, n: int) -> List[Any]:
            items = [fn(arrays, n) for fn in fns]
            has_null = any(v is None for v in items)
            non_null = [v for v in items if v is not None]
            members: Any = non_null
            if use_set:
                try:
                    members = frozenset(non_null)
                except TypeError:
                    members = non_null
            out: List[Any] = []
            for v in vf(arrays, n):
                if v is None:
                    out.append(None)
                    continue
                found = v in members
                if not found and has_null:
                    out.append(None)
                    continue
                out.append(not found if negated else found)
            return out

        return Vec(False, run)

    def _compile_function(self, e: ast.FunctionCall) -> Vec:
        if e.is_aggregate:
            raise VectorUnsupported("aggregate reference")
        name = e.name.upper()
        scalar_fns = {
            "LOWER": lambda v: str(v).lower(),
            "UPPER": lambda v: str(v).upper(),
            "LENGTH": lambda v: len(str(v)),
            "ABS": abs,
        }
        fn = scalar_fns.get(name)
        if fn is None or len(e.args) != 1:
            raise VectorUnsupported(f"function {e.name}")
        return self._elementwise1(self.compile(e.args[0]), fn)

    # -- elementwise helpers -------------------------------------------

    def _elementwise1(self, vec: Vec, fn: Callable[[Any], Any]) -> Vec:
        if vec.scalar:
            vf = vec.fn

            def run_s(arrays: Arrays, n: int) -> Any:
                value = vf(arrays, n)
                return None if value is None else fn(value)

            return Vec(True, run_s)
        vf = vec.fn
        return Vec(
            False,
            lambda arrays, n: [None if v is None else fn(v) for v in vf(arrays, n)],
        )

    def _elementwise2(self, lv: Vec, rv: Vec, fn: Callable[[Any, Any], Any]) -> Vec:
        if lv.scalar and rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_ss(arrays: Arrays, n: int) -> Any:
                a, b = lf(arrays, n), rf(arrays, n)
                if a is None or b is None:
                    return None
                return fn(a, b)

            return Vec(True, run_ss)
        if rv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_cs(arrays: Arrays, n: int) -> List[Any]:
                b = rf(arrays, n)
                if b is None:
                    return [None] * n
                return [None if a is None else fn(a, b) for a in lf(arrays, n)]

            return Vec(False, run_cs)
        if lv.scalar:
            lf, rf = lv.fn, rv.fn

            def run_sc(arrays: Arrays, n: int) -> List[Any]:
                a = lf(arrays, n)
                if a is None:
                    return [None] * n
                return [None if b is None else fn(a, b) for b in rf(arrays, n)]

            return Vec(False, run_sc)
        lf, rf = lv.fn, rv.fn

        def run_cc(arrays: Arrays, n: int) -> List[Any]:
            return [
                None if a is None or b is None else fn(a, b)
                for a, b in zip(lf(arrays, n), rf(arrays, n))
            ]

        return Vec(False, run_cc)

    # -- fused conjunction fast path -----------------------------------

    def _fuse_conjuncts(
        self, predicate: ast.Expression
    ) -> Optional[Callable[[Arrays, int], Selection]]:
        """Fuse ``col CMP const AND ...`` chains into narrowing passes.

        The generic path builds one boolean list per comparison plus one
        per AND; for the dominant shape — a conjunction of single-column
        comparisons against constants (range scans, LIKE prefixes,
        BETWEEN) — a chain of selection-narrowing comprehensions touches
        each candidate position once per conjunct with zero intermediate
        boolean lists.  Returns None when any conjunct is outside that
        shape (the generic or row path takes over).
        """
        tests = []
        for conjunct in _flatten_and(predicate):
            test = self._fused_test(conjunct)
            if test is None:
                return None
            tests.append(test)
        return _narrowing_chain(tests)

    def _fused_test(self, e: ast.Expression):
        """A narrowing closure for one simple conjunct, or None."""
        if isinstance(e, ast.BinaryOp):
            op = e.op.upper()
            if op in _COMPARISONS:
                column, const = None, None
                if isinstance(e.left, ast.ColumnRef) and self._scalar_vec(e.right):
                    column, const, cmp = e.left, e.right, _COMPARISONS[op]
                elif isinstance(e.right, ast.ColumnRef) and self._scalar_vec(e.left):
                    column, const, cmp = e.right, e.left, _COMPARISONS[_SWAPPED[op]]
                else:
                    return None
                name = self._column_name(column)
                thunk = self.compile(const).fn
                return _compare_test(name, cmp, thunk)
            if op in ("LIKE", "NOT LIKE"):
                if not (
                    isinstance(e.left, ast.ColumnRef) and self._scalar_vec(e.right)
                ):
                    return None
                name = self._column_name(e.left)
                thunk = self.compile(e.right).fn
                return _like_test(name, thunk, negate=op == "NOT LIKE")
            return None
        if isinstance(e, ast.Between) and not e.negated:
            if not (
                isinstance(e.operand, ast.ColumnRef)
                and self._scalar_vec(e.low)
                and self._scalar_vec(e.high)
            ):
                return None
            name = self._column_name(e.operand)
            low_thunk = self.compile(e.low).fn
            high_thunk = self.compile(e.high).fn
            return _between_test(name, low_thunk, high_thunk)
        if isinstance(e, ast.IsNull):
            if not isinstance(e.operand, ast.ColumnRef):
                return None
            name = self._column_name(e.operand)
            return _is_null_test(name, negated=e.negated)
        return None

    def _scalar_vec(self, e: ast.Expression) -> bool:
        """Whether ``e`` compiles to a row-independent scalar (cheaply)."""
        return isinstance(e, ast.Literal)


# ----------------------------------------------------------------------
# Fused-test closures
# ----------------------------------------------------------------------


def _flatten_and(predicate: ast.Expression) -> List[ast.Expression]:
    """``a AND b AND c`` -> ``[a, b, c]`` in source order."""
    conjuncts: List[ast.Expression] = []
    stack = [predicate]
    while stack:
        e = stack.pop()
        if isinstance(e, ast.BinaryOp) and e.op.upper() == "AND":
            stack.append(e.right)
            stack.append(e.left)
        else:
            conjuncts.append(e)
    return conjuncts


def _narrowing_chain(tests) -> Callable[[Arrays, int], Selection]:
    """Chain fused tests, each narrowing the previous selection."""

    def run(arrays: Arrays, n: int) -> Selection:
        selection: Optional[List[int]] = None
        for test in tests:
            selection = test(arrays, n, selection)
            if not selection:
                return []
        return selection if selection is not None else range(n)

    return run


def _compare_test(name: str, cmp, thunk):
    def test(arrays: Arrays, n: int, selection: Optional[List[int]]):
        const = thunk(arrays, n)
        if const is None:
            return []  # NULL comparisons never match
        column = arrays[name]
        if selection is None:
            return [i for i, v in enumerate(column) if v is not None and cmp(v, const)]
        return [i for i in selection if (v := column[i]) is not None and cmp(v, const)]

    return test


def _like_test(name: str, pattern_thunk, negate: bool):
    def test(arrays: Arrays, n: int, selection: Optional[List[int]]):
        pattern = pattern_thunk(arrays, n)
        if pattern is None:
            return []
        match = like_regex(str(pattern)).match
        column = arrays[name]
        if negate:
            if selection is None:
                return [
                    i
                    for i, v in enumerate(column)
                    if v is not None and match(str(v)) is None
                ]
            return [
                i
                for i in selection
                if (v := column[i]) is not None and match(str(v)) is None
            ]
        if selection is None:
            return [
                i
                for i, v in enumerate(column)
                if v is not None and match(str(v)) is not None
            ]
        return [
            i
            for i in selection
            if (v := column[i]) is not None and match(str(v)) is not None
        ]

    return test


def _between_test(name: str, low_thunk, high_thunk):
    def test(arrays: Arrays, n: int, selection: Optional[List[int]]):
        low = low_thunk(arrays, n)
        high = high_thunk(arrays, n)
        if low is None or high is None:
            return []
        column = arrays[name]
        if selection is None:
            return [
                i for i, v in enumerate(column) if v is not None and low <= v <= high
            ]
        return [
            i for i in selection if (v := column[i]) is not None and low <= v <= high
        ]

    return test


def _is_null_test(name: str, negated: bool):
    def test(arrays: Arrays, n: int, selection: Optional[List[int]]):
        column = arrays[name]
        if negated:
            if selection is None:
                return [i for i, v in enumerate(column) if v is not None]
            return [i for i in selection if column[i] is not None]
        if selection is None:
            return [i for i, v in enumerate(column) if v is None]
        return [i for i in selection if column[i] is None]

    return test


# ----------------------------------------------------------------------
# Value helpers replicating the row compiler's exact semantics
# ----------------------------------------------------------------------


def _and_values(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def _or_values(left: Any, right: Any) -> Any:
    if left is not None and left:
        return True
    if right is not None and right:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


def _div(left: Any, right: Any) -> Any:
    if right == 0:
        raise EvaluationError("division by zero")
    result = left / right
    if isinstance(left, int) and isinstance(right, int) and left % right == 0:
        return left // right
    return result


def _mod(left: Any, right: Any) -> Any:
    if right == 0:
        raise EvaluationError("modulo by zero")
    return left % right


def _concat(left: Any, right: Any) -> str:
    return f"{left}{right}"
