"""Query execution engine: evaluator, compiler, planner, operators, executor.

The package layers, bottom up (see ``docs/architecture.md``):

* :mod:`repro.engine.evaluator` — the interpreted expression walker,
  kept alive as the differential oracle for every compiled path;
* :mod:`repro.engine.compile` — AST → closure-tree compilation with
  pre-resolved column slots;
* :mod:`repro.engine.plan` — logical plan nodes and the planner
  (conjunct classification, equality pushdown, greedy join ordering);
* :mod:`repro.engine.parameterised` — shape-shared plans: one compiled
  plan serves every literal variant of a SQL shape through a bound
  parameter vector;
* :mod:`repro.engine.executor` — the cached, compiled physical executor
  tying all of the above together.

:class:`Executor` is the public entry point; ``execute`` is the one-shot
convenience wrapper.
"""

from repro.engine.compile import ExpressionCompiler
from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.executor import Executor, execute
from repro.engine.parameterised import ParamExpressionCompiler, ParameterisedPlan
from repro.engine.plan import LogicalPlan, Planner, classify_predicates, plan_query
from repro.engine.result import DmlResult, QueryResult

__all__ = [
    "DmlResult",
    "Executor",
    "ExpressionCompiler",
    "ExpressionEvaluator",
    "LogicalPlan",
    "ParamExpressionCompiler",
    "ParameterisedPlan",
    "Planner",
    "QueryResult",
    "classify_predicates",
    "execute",
    "plan_query",
]
