"""Query execution engine: evaluator, compiler, planner, operators, executor."""

from repro.engine.compile import ExpressionCompiler
from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.executor import Executor, execute
from repro.engine.plan import LogicalPlan, Planner, classify_predicates, plan_query
from repro.engine.result import DmlResult, QueryResult

__all__ = [
    "DmlResult",
    "Executor",
    "ExpressionCompiler",
    "ExpressionEvaluator",
    "LogicalPlan",
    "Planner",
    "QueryResult",
    "classify_predicates",
    "execute",
    "plan_query",
]
