"""Parameterised execution plans: shape analysis and the parameter compiler.

The executor plans and compiles once per SQL *text*; two queries that
differ only in their literal values ("Brad Pitt" vs "Mark Hamill", 2004
vs 1995) repeat the whole parse → plan → compile pipeline.  The
translation layer already shares work per token *shape*
(:mod:`repro.query_nl.plans`); this module brings the same sharing to
execution, closing the last uncompiled axis — literal variance.

How it works
------------

**Shape key.**  :func:`repro.sql.shape.sql_shape` (the implementation
shared with the translator) splits a SQL text into a literal-stripped
token shape plus the literal values in text order.  The first text of a
shape becomes the *canonical* statement: it is parsed and planned
normally, and its plan is cached under the shape.

**Parameter slots.**  :func:`source_literals` walks the canonical AST in
source order and pairs each :class:`~repro.sql.ast.Literal` node with its
position in the lexer's literal vector (verified value-by-value —
any disagreement marks the shape unparameterisable and execution falls
back to the per-text path).  :class:`ParamExpressionCompiler` then
compiles those literal nodes into closures that read the executor's
*bound-parameter vector* instead of a baked constant, so one closure tree
serves every literal variant; index probes likewise resolve their probe
key from the vector at run time.

**Guards.**  Some literal positions feed *compile-time* decisions whose
output would otherwise bake one query's values into another's answer:

* literals inside unaliased select items surface in output column names
  (``SELECT price + 10 FROM ...`` names its column ``(price + 10)``),
* LIMIT/OFFSET counts are folded into the plan as plain integers (they
  are not expression nodes at all).

Those positions are *pinned*: their values join the cache key (the guard
vector) exactly like the phrase plans' guards, so two queries share a
plan only when they agree on every pinned value.  The guard also carries
a type tag per literal (``i``/``f``/``s``) so ``price = 10`` and
``price = 10.5`` — the same shape — keep distinct plans (their rendered
output and arithmetic can differ).  Everything the guards cannot express
(DML, subqueries carrying their own LIMIT, texts the masker cannot
reproduce) falls back to the per-text path, which remains the oracle:
the equivalence suite asserts parameterised ≡ per-text ≡ interpreted on
every corpus query under randomised literal rotation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.compile import CompiledExpr, ExpressionCompiler
from repro.engine.plan import LogicalPlan
from repro.engine.vector import Vec, VectorExpressionCompiler
from repro.sql import ast

__all__ = [
    "UNPARAMETERISABLE",
    "ParamExpressionCompiler",
    "ParamVectorCompiler",
    "ParameterisedPlan",
    "ShapeInfo",
    "analyze_statement",
    "guard_key",
    "ordinal_map",
    "source_literals",
]

#: Stored in the shape-info cache for shapes the analysis refused: the
#: executor skips straight to the per-text path for them.
UNPARAMETERISABLE = "unparameterisable"


def source_literals(statement: ast.Statement) -> List[ast.Literal]:
    """The statement's literal nodes in source order.

    ``NULL``/``TRUE``/``FALSE`` come from keywords, not literal tokens,
    so they are part of the shape itself and excluded here.  The AST
    stores every child sequence in source order (clause order is fixed by
    the grammar, operator re-association preserves operand order), so a
    pre-order walk yields literals exactly as the lexer extracted them;
    :func:`analyze_statement` verifies that value-by-value before any
    plan is shared.
    """
    return [
        node
        for node in statement.walk()
        if isinstance(node, ast.Literal)
        and node.value is not None
        and not isinstance(node.value, bool)
    ]


def _same_literal(value: Any, literal: Any) -> bool:
    """Exact agreement between an AST literal value and a lexer literal."""
    return type(value) is type(literal) and value == literal


class ShapeInfo:
    """Per-shape analysis shared by every guard class of the shape.

    ``pinned`` holds the literal positions whose values join the guard
    vector; ``literal_count`` is the length of the shape's literal vector
    (used to reject a masked text whose literal extraction disagrees).
    """

    __slots__ = ("pinned", "literal_count")

    def __init__(self, pinned: Tuple[int, ...], literal_count: int) -> None:
        self.pinned = pinned
        self.literal_count = literal_count


class ParameterisedPlan:
    """One compiled plan entry: the canonical statement and its slot map.

    ``ordinals`` maps ``id(literal node)`` → position in the literal
    vector for every *parameter* literal of the canonical statement (the
    nodes themselves are kept alive by ``statement``).  ``columns`` is
    the result header — safe to share because literals that could surface
    in it are pinned by the guard.
    """

    __slots__ = ("statement", "plan", "columns", "ordinals")

    def __init__(
        self,
        statement: ast.SelectStatement,
        plan: LogicalPlan,
        columns: Tuple[str, ...],
        ordinals: Dict[int, int],
    ) -> None:
        self.statement = statement
        self.plan = plan
        self.columns = columns
        self.ordinals = ordinals


def analyze_statement(
    statement: ast.Statement, literals: Sequence[Any]
) -> Optional[ShapeInfo]:
    """Shape analysis for a canonical statement, or ``None`` to fall back.

    Verifies that the source-order literal walk reproduces the lexer's
    literal vector (any trailing positions must be exactly the statement's
    LIMIT/OFFSET counts, in that order) and computes the pinned positions:
    trailing LIMIT/OFFSET holes plus every literal under an unaliased
    select item (their values surface in output column names).
    """
    if not isinstance(statement, ast.SelectStatement):
        return None
    nodes = source_literals(statement)
    if len(nodes) > len(literals):
        return None
    for node, literal in zip(nodes, literals):
        if not _same_literal(node.value, literal):
            return None
    # Literal tokens that never became expression nodes: only the
    # statement's own LIMIT/OFFSET integers may account for them (a
    # subquery carrying LIMIT leaves a mid-vector hole, which fails the
    # count check below and falls back).
    tail = []
    if statement.limit is not None:
        tail.append(statement.limit)
    if statement.offset is not None:
        tail.append(statement.offset)
    holes = len(literals) - len(nodes)
    if holes != len(tail):
        return None
    for value, literal in zip(tail, literals[len(nodes) :]):
        if not _same_literal(value, literal):
            return None

    pinned_ids = set()
    for item in statement.select_items:
        if not item.alias:
            for node in item.expression.walk():
                if isinstance(node, ast.Literal):
                    pinned_ids.add(id(node))
    pinned = [
        position for position, node in enumerate(nodes) if id(node) in pinned_ids
    ]
    pinned.extend(range(len(nodes), len(literals)))
    return ShapeInfo(tuple(pinned), len(literals))


def ordinal_map(
    statement: ast.SelectStatement, literals: Sequence[Any], info: ShapeInfo
) -> Optional[Dict[int, int]]:
    """``id(node) → position`` for the parameter literals of ``statement``.

    Re-runs the source-order walk on a fresh canonical statement (a new
    guard class of an already-analyzed shape) and re-verifies alignment;
    ``None`` means the statement disagrees with the shape analysis and
    the caller must fall back.
    """
    nodes = source_literals(statement)
    if len(literals) != info.literal_count:
        return None
    if len(nodes) + sum(1 for p in info.pinned if p >= len(nodes)) != len(literals):
        return None
    for node, literal in zip(nodes, literals):
        if not _same_literal(node.value, literal):
            return None
    pinned = set(info.pinned)
    return {
        id(node): position
        for position, node in enumerate(nodes)
        if position not in pinned
    }


def guard_key(literals: Sequence[Any], info: ShapeInfo):
    """The guard vector: type tags plus the values at pinned positions."""
    tags = []
    for value in literals:
        if isinstance(value, float):
            tags.append("f")
        elif isinstance(value, int):
            tags.append("i")
        else:
            tags.append("s")
    return tuple(tags), tuple(literals[position] for position in info.pinned)


#: Bound on the parameter compiler's identity memo before it is dropped
#: wholesale (closures are cheap to rebuild; plan-node op caches keep the
#: hot ones alive regardless).
_ID_MEMO_LIMIT = 20_000


class ParamExpressionCompiler(ExpressionCompiler):
    """An expression compiler whose literal slots read a parameter vector.

    Differences from the base compiler:

    * memoization is by node *identity*, not value equality — two equal
      ``Literal(5)`` nodes at different positions must compile to
      closures reading different slots;
    * a literal registered in the active ordinal map compiles to a read
      of the executor's bound-parameter box (``box[0][position]``), and
    * :meth:`_is_constant` keeps those literals out of the base class's
      value-specialised fast paths (baked LIKE regexes, frozen IN sets) —
      their generic closures go through the parameter reads instead.

    The active ordinal map is installed by the executor before every
    parameterised execution; closures are built lazily during the first
    run of each plan operator, so every compile happens under the map of
    the statement that owns the node.
    """

    def __init__(
        self,
        subquery_runner=None,
        params_box: Optional[List[Tuple[Any, ...]]] = None,
    ) -> None:
        super().__init__(subquery_runner=subquery_runner)
        self._params_box = params_box if params_box is not None else [()]
        self._ordinals: Dict[int, int] = {}
        self._id_memo: Dict[int, Tuple[ast.Expression, CompiledExpr]] = {}

    def set_ordinals(self, ordinals: Dict[int, int]) -> None:
        """Install the ordinal map of the statement about to execute."""
        self._ordinals = ordinals

    @property
    def ordinals(self) -> Dict[int, int]:
        """The ordinal map currently installed (read by the vector path)."""
        return self._ordinals

    def compile(self, expression: ast.Expression) -> CompiledExpr:
        key = id(expression)
        entry = self._id_memo.get(key)
        if entry is not None and entry[0] is expression:
            return entry[1]
        fn = self._compile(expression)
        if len(self._id_memo) >= _ID_MEMO_LIMIT:
            self._id_memo.clear()
        self._id_memo[key] = (expression, fn)
        return fn

    def clear(self) -> None:
        """Drop the identity memo (used by ``Executor.invalidate_caches``)."""
        self._id_memo.clear()
        self._ordinals = {}

    def _compile(self, e: ast.Expression) -> CompiledExpr:
        if isinstance(e, ast.Literal):
            position = self._ordinals.get(id(e))
            if position is not None:
                box = self._params_box
                return lambda row, _p=position: box[0][_p]
        return super()._compile(e)

    def _is_constant(self, literal: ast.Literal) -> bool:
        return id(literal) not in self._ordinals


class ParamVectorCompiler(VectorExpressionCompiler):
    """Vector compiler whose parameter-slot literals read the bound vector.

    The mirror of :class:`ParamExpressionCompiler` for the columnar
    path: ordinal-mapped literals become scalar vectors that read
    ``box[0][position]`` at evaluation time, and :meth:`_is_constant`
    keeps them out of the value-specialised fused fast paths (baked
    LIKE regexes, frozen IN sets), whose closures would otherwise bake
    the first variant's values into every later one.

    Built fresh per (plan node, ordinal map): the executor constructs
    one whenever it compiles vector ops while a parameterised execution
    is active, and the captured ordinal map is the owning statement's —
    safe because a plan node belongs to exactly one parameterised entry
    (the same invariant the row path's node-cached closures rely on).
    """

    def __init__(
        self,
        relation: Any,
        binding: str,
        params_box: List[Tuple[Any, ...]],
        ordinals: Dict[int, int],
    ) -> None:
        super().__init__(relation, binding)
        self._params_box = params_box
        self._ordinals = dict(ordinals)

    def _literal(self, e: ast.Literal) -> Vec:
        position = self._ordinals.get(id(e))
        if position is not None:
            box = self._params_box
            return Vec(True, lambda arrays, n, _p=position: box[0][_p])
        return super()._literal(e)

    def _is_constant(self, literal: ast.Literal) -> bool:
        return id(literal) not in self._ordinals
