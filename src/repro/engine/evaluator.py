"""Expression evaluation over rows, including nested subqueries.

The evaluator implements SQL three-valued logic in a pragmatic way:
comparisons against NULL yield ``None``; ``AND``/``OR``/``NOT`` propagate
``None``; a WHERE predicate evaluating to ``None`` filters the row out.
Subqueries (IN, EXISTS, quantified comparisons, scalar subqueries) are
delegated back to the executor through ``subquery_runner`` so correlated
queries see the current row as their outer context.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Iterable, Optional

from repro.errors import EvaluationError
from repro.sql import ast
from repro.storage.row import Row

#: Signature of the callback used to run a subquery: (select, outer_row) -> rows
SubqueryRunner = Callable[[ast.SelectStatement, Optional[Row]], Iterable[Row]]


class ExpressionEvaluator:
    """Evaluate AST expressions against a :class:`Row`."""

    def __init__(self, subquery_runner: Optional[SubqueryRunner] = None) -> None:
        self._run_subquery = subquery_runner

    # ------------------------------------------------------------------

    def evaluate(self, expression: ast.Expression, row: Row) -> Any:
        """Evaluate ``expression`` against ``row`` and return its value."""
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.ColumnRef):
            return self._column_value(expression, row)
        if isinstance(expression, ast.Star):
            return 1  # only meaningful inside count(*), which special-cases it
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression, row)
        if isinstance(expression, ast.UnaryOp):
            return self._unary(expression, row)
        if isinstance(expression, ast.FunctionCall):
            return self._function(expression, row)
        if isinstance(expression, ast.IsNull):
            value = self.evaluate(expression.operand, row)
            return (value is not None) if expression.negated else (value is None)
        if isinstance(expression, ast.Between):
            return self._between(expression, row)
        if isinstance(expression, ast.InList):
            return self._in_list(expression, row)
        if isinstance(expression, ast.InSubquery):
            return self._in_subquery(expression, row)
        if isinstance(expression, ast.Exists):
            return self._exists(expression, row)
        if isinstance(expression, ast.QuantifiedComparison):
            return self._quantified(expression, row)
        if isinstance(expression, ast.ScalarSubquery):
            return self._scalar_subquery(expression, row)
        if isinstance(expression, ast.CaseExpression):
            return self._case(expression, row)
        raise EvaluationError(f"cannot evaluate expression {type(expression).__name__}")

    def matches(self, predicate: Optional[ast.Expression], row: Row) -> bool:
        """Evaluate a WHERE/HAVING predicate; NULL counts as not matching."""
        if predicate is None:
            return True
        value = self.evaluate(predicate, row)
        return bool(value) and value is not None

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------

    def _column_value(self, column: ast.ColumnRef, row: Row) -> Any:
        key = column.qualified
        resolved = row.resolve_key(key)
        if resolved is not None:
            return row.get(resolved)
        if column.table is not None:
            # A qualified reference must resolve exactly; silently falling back
            # to another binding's column would return wrong answers.
            raise EvaluationError(f"unknown column {key!r} in row {sorted(row.keys())}")
        if row.is_ambiguous(column.column):
            raise EvaluationError(f"ambiguous column reference {column.column!r}")
        resolved = row.resolve_key(column.column)
        if resolved is None:
            raise EvaluationError(f"unknown column {key!r} in row {sorted(row.keys())}")
        return row.get(resolved)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _binary(self, expression: ast.BinaryOp, row: Row) -> Any:
        op = expression.op.upper()
        if op == "AND":
            left = self.evaluate(expression.left, row)
            if left is False:
                return False
            right = self.evaluate(expression.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if op == "OR":
            left = self.evaluate(expression.left, row)
            if left is True or (left is not None and left and not isinstance(left, bool)):
                return True
            right = self.evaluate(expression.right, row)
            if right:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)

        left = self.evaluate(expression.left, row)
        right = self.evaluate(expression.right, row)

        if op in ("LIKE", "NOT LIKE"):
            matched = _like(left, right)
            if matched is None:
                return None
            return not matched if op == "NOT LIKE" else matched

        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)

        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return result
        if op == "%":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        if op == "||":
            return f"{left}{right}"
        raise EvaluationError(f"unsupported operator {expression.op!r}")

    def _unary(self, expression: ast.UnaryOp, row: Row) -> Any:
        value = self.evaluate(expression.operand, row)
        if expression.op.upper() == "NOT":
            if value is None:
                return None
            return not bool(value)
        if expression.op == "-":
            if value is None:
                return None
            return -value
        raise EvaluationError(f"unsupported unary operator {expression.op!r}")

    def _function(self, expression: ast.FunctionCall, row: Row) -> Any:
        name = expression.name.upper()
        if expression.is_aggregate:
            # Aggregates are computed by the Aggregate operator and stored in
            # the group row under the expression's SQL text.
            key = str(expression)
            resolved = row.resolve_key(key)
            if resolved is not None:
                return row.get(resolved)
            raise EvaluationError(
                f"aggregate {key} used outside of an aggregation context"
            )
        args = [self.evaluate(a, row) for a in expression.args]
        if name == "LOWER":
            return None if args[0] is None else str(args[0]).lower()
        if name == "UPPER":
            return None if args[0] is None else str(args[0]).upper()
        if name == "LENGTH":
            return None if args[0] is None else len(str(args[0]))
        if name == "ABS":
            return None if args[0] is None else abs(args[0])
        if name == "COALESCE":
            for value in args:
                if value is not None:
                    return value
            return None
        raise EvaluationError(f"unknown function {expression.name!r}")

    def _between(self, expression: ast.Between, row: Row) -> Any:
        value = self.evaluate(expression.operand, row)
        low = self.evaluate(expression.low, row)
        high = self.evaluate(expression.high, row)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if expression.negated else result

    def _in_list(self, expression: ast.InList, row: Row) -> Any:
        value = self.evaluate(expression.operand, row)
        if value is None:
            return None
        values = [self.evaluate(v, row) for v in expression.values]
        found = value in [v for v in values if v is not None]
        if not found and any(v is None for v in values):
            return None
        return not found if expression.negated else found

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------

    def _require_runner(self) -> SubqueryRunner:
        if self._run_subquery is None:
            raise EvaluationError(
                "expression contains a subquery but no subquery runner is configured"
            )
        return self._run_subquery

    def _subquery_values(self, select: ast.SelectStatement, row: Row) -> list:
        rows = list(self._require_runner()(select, row))
        values = []
        for sub_row in rows:
            keys = list(sub_row.keys())
            if not keys:
                continue
            values.append(sub_row.get(keys[0]))
        return values

    def _in_subquery(self, expression: ast.InSubquery, row: Row) -> Any:
        value = self.evaluate(expression.operand, row)
        if value is None:
            return None
        values = self._subquery_values(expression.subquery, row)
        found = value in [v for v in values if v is not None]
        if not found and any(v is None for v in values):
            result: Any = None
        else:
            result = found
        if expression.negated:
            if result is None:
                return None
            return not result
        return result

    def _exists(self, expression: ast.Exists, row: Row) -> Any:
        rows = list(self._require_runner()(expression.subquery, row))
        found = bool(rows)
        return not found if expression.negated else found

    def _quantified(self, expression: ast.QuantifiedComparison, row: Row) -> Any:
        value = self.evaluate(expression.operand, row)
        values = self._subquery_values(expression.subquery, row)
        op = expression.op
        if expression.quantifier.upper() == "ALL":
            if not values:
                return True
            results = [_compare(op, value, v) for v in values]
            if any(r is False for r in results):
                return False
            if any(r is None for r in results):
                return None
            return True
        # ANY / SOME
        if not values:
            return False
        results = [_compare(op, value, v) for v in values]
        if any(r is True for r in results):
            return True
        if any(r is None for r in results):
            return None
        return False

    def _scalar_subquery(self, expression: ast.ScalarSubquery, row: Row) -> Any:
        values = self._subquery_values(expression.subquery, row)
        if not values:
            return None
        if len(values) > 1:
            raise EvaluationError("scalar subquery returned more than one row")
        return values[0]

    def _case(self, expression: ast.CaseExpression, row: Row) -> Any:
        for condition, value in expression.whens:
            if self.matches(condition, row):
                return self.evaluate(value, row)
        if expression.else_value is not None:
            return self.evaluate(expression.else_value, row)
        return None


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------


def compare_values(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued comparison: ``None`` when either operand is NULL."""
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise EvaluationError(
            f"cannot compare {left!r} and {right!r} with {op!r}"
        ) from exc
    raise EvaluationError(f"unknown comparison operator {op!r}")  # pragma: no cover


@lru_cache(maxsize=512)
def like_regex(pattern: str) -> "re.Pattern":
    """The compiled regex for a LIKE ``pattern`` (cached per pattern)."""
    regex = "^"
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    regex += "$"
    return re.compile(regex)


def like_match(value: Any, pattern: Any) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""
    if value is None or pattern is None:
        return None
    return like_regex(str(pattern)).match(str(value)) is not None


# Backwards-compatible internal aliases.
_compare = compare_values
_like = like_match
