"""Expression compilation: AST → Python closures.

The interpreted :class:`~repro.engine.evaluator.ExpressionEvaluator`
re-walks the AST for every row, paying an ``isinstance`` dispatch chain
per node and an O(columns) :meth:`Row.resolve_key` scan per column
reference.  The compiler walks the AST *once* and emits a tree of nested
closures in which

* operator dispatch happens at compile time (each closure knows what it
  computes),
* column references carry a pre-resolved slot: after the first row of a
  given shape, reading a column is a single dict probe, and
* LIKE patterns against literals are compiled to regexes once.

Compiled closures implement exactly the evaluator's semantics (SQL
three-valued logic, NULL propagation, ambiguity errors); the property
tests in ``tests/test_engine_compile.py`` assert the two paths agree on
the paper queries and the generated workload.

Subqueries are delegated to the ``subquery_runner`` callback — the
executor supplies one that memoizes correlated subqueries on their outer
values, which is what makes the nested paper queries (Q5/Q6/Q7) cheap.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.evaluator import SubqueryRunner, compare_values, like_regex
from repro.errors import EvaluationError
from repro.sql import ast
from repro.storage.row import Row
from repro.utils.cache import LRUCache

#: A compiled expression: row in, value out.
CompiledExpr = Callable[[Row], Any]

_COMPARISONS: Dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class ExpressionCompiler:
    """Compile AST expressions into closures over :class:`Row`."""

    def __init__(
        self, subquery_runner: Optional[SubqueryRunner] = None, memo_size: int = 2048
    ) -> None:
        self._run_subquery = subquery_runner
        # Bounded: closures are cheap to rebuild, and a long-lived session
        # streaming distinct SQL must not accumulate them forever.
        self._memo: LRUCache = LRUCache(memo_size)

    # ------------------------------------------------------------------

    def compile(self, expression: ast.Expression) -> CompiledExpr:
        """Compile ``expression`` (memoized per AST node)."""
        fn = self._memo.get(expression)
        if fn is None:
            fn = self._compile(expression)
            self._memo.put(expression, fn)
        return fn

    def compile_predicate(self, predicate: Optional[ast.Expression]) -> Callable[[Row], bool]:
        """Compile a WHERE/HAVING predicate; NULL counts as not matching."""
        if predicate is None:
            return lambda row: True
        fn = self.compile(predicate)

        def run(row: Row) -> bool:
            value = fn(row)
            return bool(value) and value is not None

        return run

    def _is_constant(self, literal: ast.Literal) -> bool:
        """Whether ``literal``'s value may be baked into the closure.

        Always true here; the parameterised compiler
        (:class:`repro.engine.parameterised.ParamExpressionCompiler`)
        overrides it to keep parameter-slot literals out of the
        value-specialised fast paths (LIKE regexes compiled once,
        IN lists frozen into sets) so their closures read the bound
        parameter vector instead.
        """
        return True

    # ------------------------------------------------------------------

    def _compile(self, e: ast.Expression) -> CompiledExpr:
        if isinstance(e, ast.Literal):
            value = e.value
            return lambda row: value
        if isinstance(e, ast.ColumnRef):
            return self._compile_column(e)
        if isinstance(e, ast.Star):
            return lambda row: 1  # only meaningful inside count(*)
        if isinstance(e, ast.BinaryOp):
            return self._compile_binary(e)
        if isinstance(e, ast.UnaryOp):
            return self._compile_unary(e)
        if isinstance(e, ast.FunctionCall):
            return self._compile_function(e)
        if isinstance(e, ast.IsNull):
            return self._compile_is_null(e)
        if isinstance(e, ast.Between):
            return self._compile_between(e)
        if isinstance(e, ast.InList):
            return self._compile_in_list(e)
        if isinstance(e, ast.InSubquery):
            return self._compile_in_subquery(e)
        if isinstance(e, ast.Exists):
            return self._compile_exists(e)
        if isinstance(e, ast.QuantifiedComparison):
            return self._compile_quantified(e)
        if isinstance(e, ast.ScalarSubquery):
            return self._compile_scalar_subquery(e)
        if isinstance(e, ast.CaseExpression):
            return self._compile_case(e)
        return _raising(f"cannot evaluate expression {type(e).__name__}")

    # ------------------------------------------------------------------
    # Columns: pre-resolved slots
    # ------------------------------------------------------------------

    def _compile_column(self, column: ast.ColumnRef) -> CompiledExpr:
        key = column.qualified
        table = column.table
        name = column.column
        # The resolved slot is cached per row *shape* (the tuple of keys):
        # rows streaming through one plan operator share a shape, so after
        # the first row every access is a dict probe.  The exact-match
        # fast path above it needs no shape check at all.
        cached_sig: Optional[Tuple[str, ...]] = None
        cached_slot: Optional[str] = None

        def run(row: Row) -> Any:
            nonlocal cached_sig, cached_slot
            values = row.raw
            if key in values:
                return values[key]
            sig = tuple(values)
            if sig == cached_sig:
                return values[cached_slot]
            resolved = row.resolve_key(key)
            if resolved is None:
                if table is None and row.is_ambiguous(name):
                    raise EvaluationError(f"ambiguous column reference {name!r}")
                raise EvaluationError(
                    f"unknown column {key!r} in row {sorted(values)}"
                )
            cached_sig, cached_slot = sig, resolved
            return values[resolved]

        return run

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _compile_binary(self, e: ast.BinaryOp) -> CompiledExpr:
        op = e.op.upper()
        if op == "AND":
            lf, rf = self.compile(e.left), self.compile(e.right)

            def run_and(row: Row) -> Any:
                left = lf(row)
                if left is False:
                    return False
                right = rf(row)
                if right is False:
                    return False
                if left is None or right is None:
                    return None
                return bool(left) and bool(right)

            return run_and
        if op == "OR":
            lf, rf = self.compile(e.left), self.compile(e.right)

            def run_or(row: Row) -> Any:
                left = lf(row)
                if left is True or (left is not None and left and not isinstance(left, bool)):
                    return True
                right = rf(row)
                if right:
                    return True
                if left is None or right is None:
                    return None
                return bool(left) or bool(right)

            return run_or

        lf, rf = self.compile(e.left), self.compile(e.right)

        if op in ("LIKE", "NOT LIKE"):
            negate = op == "NOT LIKE"
            # Literal patterns (the common case) compile to a regex once.
            if (
                isinstance(e.right, ast.Literal)
                and e.right.value is not None
                and self._is_constant(e.right)
            ):
                matcher = like_regex(str(e.right.value)).match

                def run_like_lit(row: Row) -> Any:
                    value = lf(row)
                    if value is None:
                        return None
                    matched = matcher(str(value)) is not None
                    return not matched if negate else matched

                return run_like_lit

            def run_like(row: Row) -> Any:
                value, pattern = lf(row), rf(row)
                if value is None or pattern is None:
                    return None
                matched = like_regex(str(pattern)).match(str(value)) is not None
                return not matched if negate else matched

            return run_like

        comparison = _COMPARISONS.get(op)
        if comparison is not None:

            def run_compare(row: Row) -> Any:
                left, right = lf(row), rf(row)
                if left is None or right is None:
                    return None
                try:
                    return comparison(left, right)
                except TypeError as exc:
                    raise EvaluationError(
                        f"cannot compare {left!r} and {right!r} with {op!r}"
                    ) from exc

            return run_compare

        if op in ("+", "-", "*"):
            arith = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]

            def run_arith(row: Row) -> Any:
                left, right = lf(row), rf(row)
                if left is None or right is None:
                    return None
                return arith(left, right)

            return run_arith
        if op == "/":

            def run_div(row: Row) -> Any:
                left, right = lf(row), rf(row)
                if left is None or right is None:
                    return None
                if right == 0:
                    raise EvaluationError("division by zero")
                result = left / right
                if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                    return left // right
                return result

            return run_div
        if op == "%":

            def run_mod(row: Row) -> Any:
                left, right = lf(row), rf(row)
                if left is None or right is None:
                    return None
                if right == 0:
                    raise EvaluationError("modulo by zero")
                return left % right

            return run_mod
        if op == "||":

            def run_concat(row: Row) -> Any:
                left, right = lf(row), rf(row)
                if left is None or right is None:
                    return None
                return f"{left}{right}"

            return run_concat
        return _raising(f"unsupported operator {e.op!r}")

    def _compile_unary(self, e: ast.UnaryOp) -> CompiledExpr:
        fn = self.compile(e.operand)
        if e.op.upper() == "NOT":

            def run_not(row: Row) -> Any:
                value = fn(row)
                if value is None:
                    return None
                return not bool(value)

            return run_not
        if e.op == "-":

            def run_neg(row: Row) -> Any:
                value = fn(row)
                if value is None:
                    return None
                return -value

            return run_neg
        return _raising(f"unsupported unary operator {e.op!r}")

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _compile_function(self, e: ast.FunctionCall) -> CompiledExpr:
        name = e.name.upper()
        if e.is_aggregate:
            # Aggregates are computed by the Aggregate operator and stored
            # in the group row under the expression's SQL text; compile to
            # a slot read with the same caching as a column reference.
            key = str(e)
            cached_sig: Optional[Tuple[str, ...]] = None
            cached_slot: Optional[str] = None

            def run_aggregate_ref(row: Row) -> Any:
                nonlocal cached_sig, cached_slot
                values = row.raw
                if key in values:
                    return values[key]
                sig = tuple(values)
                if sig == cached_sig:
                    return values[cached_slot]
                resolved = row.resolve_key(key)
                if resolved is None:
                    raise EvaluationError(
                        f"aggregate {key} used outside of an aggregation context"
                    )
                cached_sig, cached_slot = sig, resolved
                return values[resolved]

            return run_aggregate_ref

        arg_fns = [self.compile(a) for a in e.args]
        if name == "LOWER":
            fn = arg_fns[0]
            return lambda row: None if (v := fn(row)) is None else str(v).lower()
        if name == "UPPER":
            fn = arg_fns[0]
            return lambda row: None if (v := fn(row)) is None else str(v).upper()
        if name == "LENGTH":
            fn = arg_fns[0]
            return lambda row: None if (v := fn(row)) is None else len(str(v))
        if name == "ABS":
            fn = arg_fns[0]
            return lambda row: None if (v := fn(row)) is None else abs(v)
        if name == "COALESCE":

            def run_coalesce(row: Row) -> Any:
                for fn in arg_fns:
                    value = fn(row)
                    if value is not None:
                        return value
                return None

            return run_coalesce
        return _raising(f"unknown function {e.name!r}")

    # ------------------------------------------------------------------
    # Predicates over values
    # ------------------------------------------------------------------

    def _compile_is_null(self, e: ast.IsNull) -> CompiledExpr:
        fn = self.compile(e.operand)
        if e.negated:
            return lambda row: fn(row) is not None
        return lambda row: fn(row) is None

    def _compile_between(self, e: ast.Between) -> CompiledExpr:
        value_fn = self.compile(e.operand)
        low_fn = self.compile(e.low)
        high_fn = self.compile(e.high)
        negated = e.negated

        def run(row: Row) -> Any:
            value = value_fn(row)
            low = low_fn(row)
            high = high_fn(row)
            if value is None or low is None or high is None:
                return None
            result = low <= value <= high
            return not result if negated else result

        return run

    def _compile_in_list(self, e: ast.InList) -> CompiledExpr:
        value_fn = self.compile(e.operand)
        item_fns = [self.compile(v) for v in e.values]
        negated = e.negated

        # All-literal lists (the common case) become a frozen set probe.
        if all(isinstance(v, ast.Literal) and self._is_constant(v) for v in e.values):
            literals = [v.value for v in e.values]
            has_null = any(v is None for v in literals)
            try:
                members = frozenset(v for v in literals if v is not None)
            except TypeError:  # pragma: no cover - unhashable literal
                members = None
            if members is not None:

                def run_literal(row: Row) -> Any:
                    value = value_fn(row)
                    if value is None:
                        return None
                    found = value in members
                    if not found and has_null:
                        return None
                    return not found if negated else found

                return run_literal

        def run(row: Row) -> Any:
            value = value_fn(row)
            if value is None:
                return None
            values = [fn(row) for fn in item_fns]
            found = value in [v for v in values if v is not None]
            if not found and any(v is None for v in values):
                return None
            return not found if negated else found

        return run

    def _compile_case(self, e: ast.CaseExpression) -> CompiledExpr:
        whens = [
            (self.compile_predicate(condition), self.compile(value))
            for condition, value in e.whens
        ]
        else_fn = self.compile(e.else_value) if e.else_value is not None else None

        def run(row: Row) -> Any:
            for condition_fn, value_fn in whens:
                if condition_fn(row):
                    return value_fn(row)
            if else_fn is not None:
                return else_fn(row)
            return None

        return run

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------

    def _runner(self) -> SubqueryRunner:
        runner = self._run_subquery
        if runner is None:
            # Defer the failure to evaluation time, like the interpreter: a
            # subquery in a branch that is never taken must never raise.
            def runner(select: ast.SelectStatement, row: Optional[Row]):
                raise EvaluationError(
                    "expression contains a subquery but no subquery runner is configured"
                )

        return runner

    def _compile_subquery_values(
        self, select: ast.SelectStatement
    ) -> Callable[[Row], List[Any]]:
        runner = self._runner()

        def run(row: Row) -> List[Any]:
            values: List[Any] = []
            for sub_row in runner(select, row):
                raw = sub_row.raw
                if not raw:
                    continue
                values.append(raw[next(iter(raw))])
            return values

        return run

    def _compile_in_subquery(self, e: ast.InSubquery) -> CompiledExpr:
        value_fn = self.compile(e.operand)
        values_fn = self._compile_subquery_values(e.subquery)
        negated = e.negated

        def run(row: Row) -> Any:
            value = value_fn(row)
            if value is None:
                return None
            values = values_fn(row)
            found = value in [v for v in values if v is not None]
            if not found and any(v is None for v in values):
                result: Any = None
            else:
                result = found
            if negated:
                if result is None:
                    return None
                return not result
            return result

        return run

    def _compile_exists(self, e: ast.Exists) -> CompiledExpr:
        runner = self._runner()
        select = e.subquery
        negated = e.negated

        def run(row: Row) -> Any:
            found = False
            for _ in runner(select, row):
                found = True
                break
            return not found if negated else found

        return run

    def _compile_quantified(self, e: ast.QuantifiedComparison) -> CompiledExpr:
        value_fn = self.compile(e.operand)
        values_fn = self._compile_subquery_values(e.subquery)
        op = e.op
        is_all = e.quantifier.upper() == "ALL"

        def run(row: Row) -> Any:
            value = value_fn(row)
            values = values_fn(row)
            if is_all:
                if not values:
                    return True
                results = [compare_values(op, value, v) for v in values]
                if any(r is False for r in results):
                    return False
                if any(r is None for r in results):
                    return None
                return True
            if not values:
                return False
            results = [compare_values(op, value, v) for v in values]
            if any(r is True for r in results):
                return True
            if any(r is None for r in results):
                return None
            return False

        return run

    def _compile_scalar_subquery(self, e: ast.ScalarSubquery) -> CompiledExpr:
        values_fn = self._compile_subquery_values(e.subquery)

        def run(row: Row) -> Any:
            values = values_fn(row)
            if not values:
                return None
            if len(values) > 1:
                raise EvaluationError("scalar subquery returned more than one row")
            return values[0]

        return run


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _raising(message: str) -> CompiledExpr:
    """A closure that raises on evaluation.

    Unknown constructs fail at *evaluation* time, matching the interpreted
    evaluator (a CASE branch that is never taken never raises).
    """

    def run(row: Row) -> Any:
        raise EvaluationError(message)

    return run
