"""Query results returned by the executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.storage.row import Row


@dataclass
class QueryResult:
    """The result of executing a SELECT statement.

    ``columns`` holds the output column names in select-list order;
    ``rows`` holds one :class:`Row` per result tuple keyed by those names.
    """

    columns: Tuple[str, ...]
    rows: List[Row] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    # ------------------------------------------------------------------

    def column(self, name: str) -> List[Any]:
        """All values of one output column, in row order."""
        return [row.get(name) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result (else ``None``)."""
        if not self.rows:
            return None
        return self.rows[0].get(self.columns[0])

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as plain dictionaries keyed by output column names."""
        return [{c: row.get(c) for c in self.columns} for row in self.rows]

    def to_tuples(self) -> List[Tuple[Any, ...]]:
        """Rows as plain tuples in select-list order."""
        return [tuple(row.get(c) for c in self.columns) for row in self.rows]

    def format_table(self, max_rows: int = 20) -> str:
        """Render a small textual table (used by examples and EXPLAIN output)."""
        headers = list(self.columns)
        body = [[_fmt(row.get(c)) for c in headers] for row in self.rows[:max_rows]]
        widths = [len(h) for h in headers]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        for line in body:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    return str(value)


@dataclass
class DmlResult:
    """The result of an INSERT/UPDATE/DELETE statement."""

    statement_kind: str
    affected_rows: int

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DmlResult({self.statement_kind}: {self.affected_rows} rows)"
