"""Logical query plans and the planner that derives them from SELECT ASTs.

The planner performs the classic decomposition the paper's query-graph
model also relies on: the WHERE clause is split into conjuncts, each
conjunct is classified as a *local selection* (references a single tuple
variable), an *equi-join* between two tuple variables, or a *residual*
predicate (anything else, including subquery connectors), and a left-deep
join tree is built greedily so that every join has at least one usable
equi-join condition when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanningError
from repro.sql import ast


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Scan a base table, binding its rows to a tuple-variable name.

    When the planner finds equality conjuncts of the form
    ``binding.column = <expression constant w.r.t. the binding>`` it pushes
    them into the scan: ``eq_columns[i] = eq_values[i]`` must hold for
    every produced row, letting the executor probe a hash index instead of
    scanning.  ``pushed_filters`` keeps the original predicates so the
    executor can fall back to filtering (and ``explain`` can print them).
    """

    table_name: str
    binding: str
    eq_columns: Tuple[str, ...] = ()
    eq_values: Tuple[ast.Expression, ...] = ()
    pushed_filters: Tuple[ast.Expression, ...] = ()

    def describe(self) -> str:
        base = (
            f"{self.table_name} AS {self.binding}"
            if self.binding != self.table_name
            else self.table_name
        )
        if self.eq_columns:
            from repro.sql.printer import expression_to_sql

            conds = " AND ".join(
                expression_to_sql(p, top_level=True) for p in self.pushed_filters
            )
            return f"IndexScan({base}: {conds})"
        return f"Scan({base})"


@dataclass
class FilterNode(PlanNode):
    """Filter rows with a predicate."""

    child: PlanNode
    predicate: ast.Expression

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.printer import expression_to_sql

        return f"Filter({expression_to_sql(self.predicate, top_level=True)})"


@dataclass
class JoinNode(PlanNode):
    """Join two inputs.

    ``equi_conditions`` are equality predicates usable for hashing;
    ``other_conditions`` are arbitrary predicates evaluated after the match.
    With no conditions at all this is a cross product.
    """

    left: PlanNode
    right: PlanNode
    equi_conditions: Tuple[ast.BinaryOp, ...] = ()
    other_conditions: Tuple[ast.Expression, ...] = ()

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.sql.printer import expression_to_sql

        conds = list(self.equi_conditions) + list(self.other_conditions)
        if not conds:
            return "CrossJoin"
        text = " AND ".join(expression_to_sql(c, top_level=True) for c in conds)
        kind = "HashJoin" if self.equi_conditions else "NestedLoopJoin"
        return f"{kind}({text})"


@dataclass
class AggregateNode(PlanNode):
    """Group rows and compute aggregate functions."""

    child: PlanNode
    group_by: Tuple[ast.Expression, ...]
    aggregates: Tuple[ast.FunctionCall, ...]

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        groups = ", ".join(str(g) for g in self.group_by) or "()"
        aggs = ", ".join(str(a) for a in self.aggregates) or "()"
        return f"Aggregate(group by {groups}; compute {aggs})"


@dataclass
class ProjectNode(PlanNode):
    """Compute the select list."""

    child: PlanNode
    items: Tuple[ast.SelectItem, ...]

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        return "Project(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


@dataclass
class SortNode(PlanNode):
    """Sort rows.

    Sorting runs *before* projection so ORDER BY may reference columns that
    are not part of the select list; ``select_items`` lets the executor also
    resolve references to select-list aliases.
    """

    child: PlanNode
    order_by: Tuple[ast.OrderItem, ...]
    select_items: Tuple[ast.SelectItem, ...] = ()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        return "Sort(" + ", ".join(str(o) for o in self.order_by) + ")"


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: Optional[int]

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.offset is not None:
            parts.append(f"offset {self.offset}")
        return "Limit(" + ", ".join(parts) + ")"


@dataclass
class LogicalPlan:
    """A complete plan for a SELECT statement."""

    root: PlanNode
    statement: ast.SelectStatement

    def explain(self) -> str:
        """An indented, human-readable rendering of the plan tree."""
        lines: List[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Predicate classification
# ---------------------------------------------------------------------------


@dataclass
class ClassifiedPredicates:
    """WHERE conjuncts grouped by how the planner can use them."""

    local: Dict[str, List[ast.Expression]] = field(default_factory=dict)
    joins: List[ast.BinaryOp] = field(default_factory=list)
    residual: List[ast.Expression] = field(default_factory=list)


def referenced_bindings(expression: ast.Expression, known: Set[str]) -> Set[str]:
    """Tuple variables from ``known`` referenced by ``expression``.

    Column references inside nested subqueries are included only when they
    refer to an outer binding (correlation), which is exactly what the
    planner needs to decide whether a predicate is local.
    """
    found: Set[str] = set()
    lowered = {k.lower(): k for k in known}
    for node in expression.walk():
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            key = node.table.lower()
            if key in lowered:
                found.add(lowered[key])
        if isinstance(node, ast.SelectStatement):
            inner = {t.binding.lower() for t in node.from_tables}
            for sub in node.walk():
                if isinstance(sub, ast.ColumnRef) and sub.table is not None:
                    key = sub.table.lower()
                    if key in lowered and key not in inner:
                        found.add(lowered[key])
    return found


def classify_predicates(
    where: Optional[ast.Expression], bindings: Sequence[str]
) -> ClassifiedPredicates:
    """Split a WHERE clause into local, join and residual conjuncts."""
    known = set(bindings)
    result = ClassifiedPredicates(local={b: [] for b in bindings})
    for conjunct in ast.conjuncts(where):
        has_subquery = any(
            isinstance(n, (ast.InSubquery, ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery))
            for n in conjunct.walk()
        )
        refs = referenced_bindings(conjunct, known)
        unqualified = any(
            isinstance(n, ast.ColumnRef) and n.table is None for n in conjunct.walk()
        )
        if has_subquery or unqualified:
            result.residual.append(conjunct)
        elif ast.is_join_condition(conjunct) and len(refs) == 2:
            result.joins.append(conjunct)  # type: ignore[arg-type]
        elif len(refs) <= 1:
            binding = next(iter(refs), None)
            if binding is None:
                result.residual.append(conjunct)
            else:
                result.local[binding].append(conjunct)
        else:
            result.residual.append(conjunct)
    return result


def pushable_equality(
    predicate: ast.Expression, binding: str
) -> Optional[Tuple[str, ast.Expression]]:
    """``(column, value_expr)`` when ``predicate`` is an index-usable equality.

    A conjunct is pushable into a scan of ``binding`` when it has the shape
    ``binding.column = value`` (either side) and ``value`` is constant with
    respect to the binding: no reference to the binding itself, no
    unqualified references, no subqueries, no aggregates.  Correlated
    references to *outer* bindings are allowed — the executor evaluates the
    value against the outer row, which turns correlated filters into index
    probes.
    """
    if not isinstance(predicate, ast.BinaryOp) or predicate.op != "=":
        return None
    lowered = binding.lower()
    for column_side, value_side in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        if (
            isinstance(column_side, ast.ColumnRef)
            and column_side.table is not None
            and column_side.table.lower() == lowered
            and _constant_wrt(value_side, lowered)
        ):
            return column_side.column, value_side
    return None


def _constant_wrt(expression: ast.Expression, binding_lower: str) -> bool:
    """True when ``expression`` cannot depend on the scanned binding's row."""
    for node in expression.walk():
        if isinstance(
            node,
            (ast.InSubquery, ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery, ast.Star),
        ):
            return False
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            return False
        if isinstance(node, ast.ColumnRef):
            if node.table is None or node.table.lower() == binding_lower:
                return False
    return True


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class Planner:
    """Build a :class:`LogicalPlan` from a SELECT statement."""

    def plan(self, statement: ast.SelectStatement) -> LogicalPlan:
        if not statement.from_tables:
            # SELECT without FROM: a single empty row is projected.
            root: PlanNode = ProjectNode(
                child=ScanNode(table_name="", binding=""), items=statement.select_items
            )
            return LogicalPlan(root=root, statement=statement)

        bindings = [t.binding for t in statement.from_tables]
        if len(set(b.lower() for b in bindings)) != len(bindings):
            raise PlanningError("duplicate tuple-variable names in FROM clause")

        classified = classify_predicates(statement.where, bindings)

        # Base access paths: scan (with pushed equality conjuncts) plus
        # local filters for whatever could not be pushed.
        inputs: Dict[str, PlanNode] = {}
        for table in statement.from_tables:
            eq_columns: List[str] = []
            eq_values: List[ast.Expression] = []
            pushed: List[ast.Expression] = []
            filters: List[ast.Expression] = []
            for predicate in classified.local.get(table.binding, []):
                pushable = pushable_equality(predicate, table.binding)
                if pushable is not None:
                    column, value = pushable
                    eq_columns.append(column)
                    eq_values.append(value)
                    pushed.append(predicate)
                else:
                    filters.append(predicate)
            node: PlanNode = ScanNode(
                table_name=table.name,
                binding=table.binding,
                eq_columns=tuple(eq_columns),
                eq_values=tuple(eq_values),
                pushed_filters=tuple(pushed),
            )
            for predicate in filters:
                node = FilterNode(child=node, predicate=predicate)
            inputs[table.binding] = node

        root = self._join_order(inputs, bindings, classified.joins)

        for predicate in classified.residual:
            root = FilterNode(child=root, predicate=predicate)

        aggregates = self._collect_aggregates(statement)
        if statement.group_by or aggregates:
            root = AggregateNode(
                child=root, group_by=statement.group_by, aggregates=tuple(aggregates)
            )
            if statement.having is not None:
                root = FilterNode(child=root, predicate=statement.having)
        elif statement.having is not None:
            # HAVING without GROUP BY behaves like a filter over one big group;
            # with no aggregates in our subset it degenerates to a WHERE.
            root = FilterNode(child=root, predicate=statement.having)

        if statement.order_by:
            root = SortNode(
                child=root,
                order_by=statement.order_by,
                select_items=statement.select_items,
            )
        root = ProjectNode(child=root, items=statement.select_items)
        if statement.distinct:
            root = DistinctNode(child=root)
        if statement.limit is not None or statement.offset is not None:
            root = LimitNode(child=root, limit=statement.limit, offset=statement.offset)
        return LogicalPlan(root=root, statement=statement)

    # ------------------------------------------------------------------

    def _join_order(
        self,
        inputs: Dict[str, PlanNode],
        bindings: Sequence[str],
        join_conditions: List[ast.BinaryOp],
    ) -> PlanNode:
        """Greedy left-deep join ordering that prefers connected joins."""
        all_bindings = set(bindings)
        remaining = list(bindings)
        pending = list(join_conditions)

        current_bindings = {remaining.pop(0)}
        root = inputs[next(iter(current_bindings))]

        while remaining:
            chosen_index = self._pick_connected(
                remaining, current_bindings, pending, all_bindings
            )
            candidate = remaining.pop(chosen_index)
            new_bindings = current_bindings | {candidate}

            usable: List[ast.BinaryOp] = []
            still_pending: List[ast.BinaryOp] = []
            for cond in pending:
                refs = referenced_bindings(cond, all_bindings)
                if refs and refs <= new_bindings and candidate in refs:
                    usable.append(cond)
                else:
                    still_pending.append(cond)
            pending = still_pending

            equi = tuple(c for c in usable if ast.is_join_condition(c))
            other = tuple(c for c in usable if not ast.is_join_condition(c))
            root = JoinNode(
                left=root, right=inputs[candidate], equi_conditions=equi, other_conditions=other
            )
            current_bindings = new_bindings

        # Any join conditions not consumed (e.g. self-join conditions over the
        # same binding pair already joined) become filters.
        for cond in pending:
            root = FilterNode(child=root, predicate=cond)
        return root

    def _pick_connected(
        self,
        remaining: Sequence[str],
        current_bindings: Set[str],
        pending: Sequence[ast.BinaryOp],
        all_bindings: Set[str],
    ) -> int:
        """Index of the next binding connected to the prefix by a join condition.

        A binding is "connected" when some pending join condition references
        only bindings from the current prefix plus that candidate (so the
        condition becomes fully evaluable once the candidate joins).
        """
        for index, candidate in enumerate(remaining):
            probe = current_bindings | {candidate}
            for cond in pending:
                refs = referenced_bindings(cond, all_bindings)
                if candidate in refs and refs <= probe and refs & current_bindings:
                    return index
        return 0

    def _collect_aggregates(self, statement: ast.SelectStatement) -> List[ast.FunctionCall]:
        aggregates: List[ast.FunctionCall] = []
        seen: Set[str] = set()
        for item in statement.select_items:
            self._collect_shallow_aggregates(item.expression, aggregates, seen)
        if statement.having is not None:
            self._collect_shallow_aggregates(statement.having, aggregates, seen)
        for order in statement.order_by:
            self._collect_shallow_aggregates(order.expression, aggregates, seen)
        return aggregates

    def _collect_shallow_aggregates(
        self, expression: ast.Expression, out: List[ast.FunctionCall], seen: Set[str]
    ) -> None:
        """Collect aggregates in HAVING without descending into subqueries."""
        if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
            key = str(expression)
            if key not in seen:
                seen.add(key)
                out.append(expression)
            return
        if isinstance(
            expression, (ast.InSubquery, ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery)
        ):
            return
        for child in expression.children():
            if isinstance(child, ast.Expression):
                self._collect_shallow_aggregates(child, out, seen)


def plan_query(statement: ast.SelectStatement) -> LogicalPlan:
    """Plan ``statement`` with the default planner."""
    return Planner().plan(statement)
