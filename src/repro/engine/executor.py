"""Physical execution of logical plans against a :class:`Database`.

The executor is pipelined Python iterators over in-memory rows, but the
hot paths are *compiled*: every predicate and projection is turned into a
closure tree once per plan (see :mod:`repro.engine.compile`), plans and
parsed statements are cached per executor, full scans are cached per
table version, equality conjuncts pushed into scans probe hash indexes,
and correlated subqueries are memoized on their outer values.  The paper
needs this to be fast because execution is part of the *interactive*
loop: it verifies translations (e.g. Q5's flattened vs. nested form) and
explains empty answers at answer time.

On top of the per-text caches, SELECT texts are shared per literal
-stripped *shape* (see :mod:`repro.engine.parameterised`): queries that
differ only in their literal values execute through one compiled plan
whose predicate closures and index probes read a bound-parameter vector,
so the warm path for a fresh literal variant is a shape lookup plus a
rebind — no parse, no plan, no compile.  ``parameterised=False`` keeps
the per-text path, which doubles as the oracle for the equivalence suite
in ``tests/test_parameterised_plans.py``.

``Executor(db, compiled=False, use_caches=False, index_scans=False)``
reproduces the original fully-interpreted behaviour; the property tests
assert both modes return identical results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine.compile import CompiledExpr, ExpressionCompiler
from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.parameterised import (
    UNPARAMETERISABLE,
    ParamExpressionCompiler,
    ParamVectorCompiler,
    ParameterisedPlan,
    analyze_statement,
    guard_key,
    ordinal_map,
)
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    PlanNode,
    Planner,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.result import DmlResult, QueryResult
from repro.engine.vector import VectorExpressionCompiler, VectorUnsupported
from repro.errors import EvaluationError, UnknownAttributeError, UnsupportedQueryError
from repro.oracle import resolve_compiled_default
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.shape import is_mutation as _is_mutation_text, sql_shape
from repro.storage.database import Database
from repro.storage.row import Row
from repro.storage.api import TableStorage
from repro.utils.cache import LRUCache

_EMPTY_ROW = Row({})

#: How many memoized subquery results to hold before dropping them all.
_SUBQUERY_MEMO_LIMIT = 100_000

#: Returned by the parameterised fast path when the text must take the
#: per-text pipeline instead (never escapes ``execute_sql``).
_FALLBACK = object()

#: Bound on the identity-keyed subquery-plan cache used while running
#: parameterised plans (cleared wholesale; plans rebuild on demand).
_PARAM_SUBPLAN_LIMIT = 4096


class _CorrelationInfo:
    """Static correlation analysis of one subquery statement."""

    __slots__ = ("inner_bindings", "keys", "whole_row")

    def __init__(self, inner_bindings: frozenset, keys: Tuple[str, ...], whole_row: bool) -> None:
        self.inner_bindings = inner_bindings
        self.keys = keys  # qualified outer columns the subquery depends on
        self.whole_row = whole_row  # True => key on the entire outer row


def _analyze_correlation(statement: ast.SelectStatement) -> _CorrelationInfo:
    """Which outer values a correlated subquery's result depends on.

    Qualified references whose binding is not introduced by any FROM
    clause inside the statement (at any nesting depth) must come from the
    outer query.  Unqualified references cannot be attributed statically,
    so their presence forces keying on the whole outer row.
    """
    inner_bindings = set()
    for node in statement.walk():
        if isinstance(node, ast.TableRef):
            inner_bindings.add(node.binding.lower())
    keys = set()
    whole_row = False
    for node in statement.walk():
        if isinstance(node, ast.ColumnRef):
            if node.table is None:
                whole_row = True
                break
            if node.table.lower() not in inner_bindings:
                keys.add(node.qualified)
    return _CorrelationInfo(frozenset(inner_bindings), tuple(sorted(keys)), whole_row)


class Executor:
    """Execute SQL statements against an in-memory database."""

    def __init__(
        self,
        database: Database,
        compiled: Optional[bool] = None,
        use_caches: Optional[bool] = None,
        index_scans: Optional[bool] = None,
        parameterised: Optional[bool] = None,
        plan_cache_size: int = 256,
        parse_cache_size: int = 512,
        shape_cache_size: int = 256,
    ) -> None:
        self.database = database
        self.planner = Planner()
        # The four flags default to the compiled configuration, unless
        # REPRO_ORACLE forces the interpreted defaults for the whole
        # process (explicit arguments always win either way).
        self.compiled = resolve_compiled_default(compiled)
        self.use_caches = resolve_compiled_default(use_caches)
        self.index_scans = resolve_compiled_default(index_scans)
        # Parameterised plans need the compiled, cached configuration:
        # their closures *are* compiled closures, and sharing without a
        # cache would be pointless.
        self.parameterised = (
            resolve_compiled_default(parameterised) and self.compiled and self.use_caches
        )
        self._evaluator = ExpressionEvaluator(subquery_runner=self._run_subquery)
        self._compiler = ExpressionCompiler(subquery_runner=self._run_subquery)
        # Parameterised execution state: closures compiled for a shared
        # plan read ``_params_box[0]`` (the literal vector of the query
        # being served) instead of baked constants.  ``_param_active`` is
        # True exactly while a parameterised plan is running, so lazily
        # built operator closures pick the right compiler.
        self._params_box: List[Tuple[Any, ...]] = [()]
        self._param_compiler = ParamExpressionCompiler(
            subquery_runner=self._run_subquery, params_box=self._params_box
        )
        self._param_active = False
        self._shape_infos: LRUCache = LRUCache(shape_cache_size)
        self._param_plans: LRUCache = LRUCache(shape_cache_size)
        # Workload capture: one representative SQL text per compiled shape
        # plan, for the warm-start API (`captured_shapes`/`precompile`).
        self._param_samples: LRUCache = LRUCache(shape_cache_size)
        self._param_subplans: Dict[int, Tuple[ast.SelectStatement, Any]] = {}
        self.shape_hits = 0
        self.shape_misses = 0
        self.shape_fallbacks = 0
        # Vectorized scan counters: how many filter/projection nodes ran
        # column-at-a-time over columnar arrays, and how many started to
        # and handed back to the row path mid-run (data-dependent
        # evaluation error — the row path re-raises it with the oracle's
        # exact short-circuit semantics).
        self.vector_scans = 0
        self.vector_fallbacks = 0
        # Caches.  Parse and plan caches hold data-independent artefacts;
        # the scan cache and subquery memo depend on table contents and are
        # validated against Database.data_version before every top-level
        # statement (so even mutations that bypass the executor are seen).
        self._parse_cache: LRUCache = LRUCache(parse_cache_size)
        self._plan_cache: LRUCache = LRUCache(plan_cache_size)
        self._scan_cache: Dict[Tuple[str, str], Tuple[int, List[Row]]] = {}
        self._subquery_memo: Dict[int, Tuple[ast.SelectStatement, Dict[Any, List[Row]]]] = {}
        self._subquery_entries = 0
        self.subquery_hits = 0
        self.subquery_misses = 0
        self._corr_info: Dict[int, Tuple[ast.SelectStatement, _CorrelationInfo]] = {}
        self._data_version = database.data_version

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str):
        """Parse and execute ``sql``; returns a QueryResult or DmlResult.

        With ``parameterised`` on (the default), SELECT texts are first
        routed through the shape-shared plan cache: a text whose shape
        (and guard vector) was executed before skips parse, plan and
        compile entirely and runs the shared plan with its literals bound
        as parameters.  Texts the shape analysis cannot prove sharable
        fall back to the per-text pipeline below.
        """
        if self.parameterised:
            result = self._execute_parameterised(sql)
            if result is not _FALLBACK:
                return result
        return self.execute(self._parse_statement(sql))

    def _parse_statement(self, sql: str) -> ast.Statement:
        statement = self._parse_cache.get(sql) if self.use_caches else None
        if statement is None:
            statement = parse_sql(sql)
            if self.use_caches:
                self._parse_cache.put(sql, statement)
        return statement

    def execute(self, statement: ast.Statement):
        """Execute a parsed statement."""
        if isinstance(statement, ast.SelectStatement):
            return self.execute_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        raise UnsupportedQueryError(
            f"statement type {type(statement).__name__} is not executable"
        )

    def execute_select(
        self, statement: ast.SelectStatement, outer_row: Optional[Row] = None
    ) -> QueryResult:
        """Execute a SELECT, optionally with an outer row for correlation."""
        if outer_row is None:
            self._validate_caches()
        plan, columns = self._plan_select(statement)
        rows = list(self._run_node(plan.root, outer_row))
        return QueryResult(columns=columns, rows=rows)

    def explain(self, statement: ast.SelectStatement) -> str:
        """Return the indented logical plan for a SELECT statement."""
        return self._plan_select(statement)[0].explain()

    @property
    def cache_stats(self) -> Dict[str, Any]:
        """Observability: hit/miss counters for every cache layer.

        ``shape_plans`` covers the parameterised path: ``hits`` are
        executions served by a shared plan with only a rebind, ``misses``
        are first sights of a (shape, guard) class that compiled a new
        shared plan, and ``fallbacks`` are texts the shape analysis
        routed to the per-text pipeline.
        """
        return {
            "parse": self._parse_cache.stats,
            "plan": self._plan_cache.stats,
            "shape_plans": {
                "hits": self.shape_hits,
                "misses": self.shape_misses,
                "fallbacks": self.shape_fallbacks,
                "entries": len(self._param_plans),
                "shapes": len(self._shape_infos),
            },
            "subquery": {
                "hits": self.subquery_hits,
                "misses": self.subquery_misses,
                "entries": self._subquery_entries,
            },
            "scan_tables": len(self._scan_cache),
        }

    def captured_shapes(self) -> List[str]:
        """The captured execution workload: one SELECT per compiled shape plan.

        Executing each returned text on a fresh executor of an equivalent
        database recompiles the same parameterised plan, so a respawned
        shard worker's first real request of every hot shape is a rebind,
        not a cold parse-plan-compile.  Texts whose plan has been evicted
        are dropped.
        """
        return [
            sample
            for key, sample in self._param_samples.items()
            if key in self._param_plans
        ]

    def precompile(self, shapes) -> int:
        """Warm-start: replay captured shape texts through the executor.

        Only plain SELECTs are replayed (parameterised plans cover nothing
        else, and replaying a mutation would change data); each runs once,
        compiling its shared plan.  Texts that fail are skipped.  Returns
        how many texts replayed cleanly.
        """
        replayed = 0
        for sql in shapes:
            if not isinstance(sql, str) or _is_mutation_text(sql):
                continue
            try:
                self.execute_sql(sql)
            except Exception:
                continue
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Parameterised (shape-shared) execution
    # ------------------------------------------------------------------

    def _execute_parameterised(self, sql: str):
        """Execute ``sql`` through the shape-shared plan cache.

        Returns :data:`_FALLBACK` when the text must take the per-text
        path: the shape does not lex, the statement is not a SELECT, or
        the literal walk cannot be aligned with the lexer's literal
        vector (see :func:`repro.engine.parameterised.analyze_statement`).
        """
        shaped = sql_shape(sql)
        if shaped is None:
            self.shape_fallbacks += 1
            return _FALLBACK
        shape, literals = shaped
        info = self._shape_infos.get(shape, record_miss=False)
        if info is UNPARAMETERISABLE:
            self.shape_fallbacks += 1
            return _FALLBACK
        entry: Optional[ParameterisedPlan] = None
        if info is not None:
            entry = self._param_plans.get((shape, guard_key(literals, info)))
        if entry is None:
            statement = self._parse_statement(sql)
            if info is None:
                info = analyze_statement(statement, literals)
                if info is None:
                    self._shape_infos.put(shape, UNPARAMETERISABLE)
                    self.shape_fallbacks += 1
                    return _FALLBACK
                self._shape_infos.put(shape, info)
            # This text becomes the canonical statement for its guard
            # class; its own literal values are what the pinned guard
            # positions bake into the plan.
            ordinals = ordinal_map(statement, literals, info)
            if ordinals is None:
                self._shape_infos.put(shape, UNPARAMETERISABLE)
                self.shape_fallbacks += 1
                return _FALLBACK
            plan = self.planner.plan(statement)
            entry = ParameterisedPlan(
                statement, plan, self._output_columns(statement), ordinals
            )
            self._param_plans.put((shape, guard_key(literals, info)), entry)
            self._param_samples.put((shape, guard_key(literals, info)), sql)
            self.shape_misses += 1
        else:
            self.shape_hits += 1
        self._validate_caches()
        self._params_box[0] = literals
        self._param_compiler.set_ordinals(entry.ordinals)
        self._param_active = True
        try:
            rows = list(self._run_node(entry.plan.root, None))
        finally:
            self._param_active = False
            self._params_box[0] = ()
        return QueryResult(columns=entry.columns, rows=rows)

    # ------------------------------------------------------------------
    # Planning and cache upkeep
    # ------------------------------------------------------------------

    def _plan_select(
        self, statement: ast.SelectStatement
    ) -> Tuple[LogicalPlan, Tuple[str, ...]]:
        if self._param_active:
            # Subqueries of a parameterised plan get identity-keyed plans:
            # the per-text plan cache keys by value equality, and a
            # value-equal statement from an unrelated text must never
            # receive closures that read this shape's parameter slots.
            cached = self._param_subplans.get(id(statement))
            if cached is not None and cached[0] is statement:
                return cached[1]
            entry = (self.planner.plan(statement), self._output_columns(statement))
            if len(self._param_subplans) >= _PARAM_SUBPLAN_LIMIT:
                self._param_subplans.clear()
            self._param_subplans[id(statement)] = (statement, entry)
            return entry
        entry = self._plan_cache.get(statement) if self.use_caches else None
        if entry is None:
            plan = self.planner.plan(statement)
            entry = (plan, self._output_columns(statement))
            if self.use_caches:
                self._plan_cache.put(statement, entry)
        return entry

    def _validate_caches(self) -> None:
        version = self.database.data_version
        if version != self._data_version:
            self._data_version = version
            self._clear_data_caches()

    def _clear_data_caches(self) -> None:
        self._scan_cache.clear()
        self._subquery_memo.clear()
        self._subquery_entries = 0

    def invalidate_caches(self) -> None:
        """Drop every cache, including the data-independent ones.

        DML only needs :meth:`_clear_data_caches` (parse results, plans and
        compiled closures do not depend on table contents); this is the
        blunt instrument for callers that want a pristine executor.
        """
        self._parse_cache.clear()
        self._plan_cache.clear()
        self._corr_info.clear()
        self._shape_infos.clear()
        self._param_plans.clear()
        self._param_samples.clear()
        self._param_subplans.clear()
        self._param_compiler.clear()
        self._clear_data_caches()
        self._data_version = self.database.data_version

    # ------------------------------------------------------------------
    # Expression access (compiled or interpreted)
    # ------------------------------------------------------------------

    def _expr_fn(self, expression: ast.Expression) -> CompiledExpr:
        # Operator closures are built lazily while a plan first runs, so
        # _param_active routes the nodes of a parameterised plan (and of
        # its subqueries) to the parameter-aware compiler.
        if self._param_active:
            return self._param_compiler.compile(expression)
        if self.compiled:
            return self._compiler.compile(expression)
        evaluator = self._evaluator
        return lambda row: evaluator.evaluate(expression, row)

    def _pred_fn(self, predicate: Optional[ast.Expression]) -> Callable[[Row], bool]:
        if self._param_active:
            return self._param_compiler.compile_predicate(predicate)
        if self.compiled:
            return self._compiler.compile_predicate(predicate)
        evaluator = self._evaluator
        return lambda row: evaluator.matches(predicate, row)

    def _ops(self, node: PlanNode) -> Any:
        """Per-node compiled artefacts, built once and cached on the node."""
        cached = getattr(node, "_exec_ops", None)
        if cached is not None and cached[0] is self:
            return cached[1]
        ops = self._build_ops(node)
        node._exec_ops = (self, ops)  # type: ignore[attr-defined]
        return ops

    def _build_ops(self, node: PlanNode) -> Any:
        if isinstance(node, FilterNode):
            return self._pred_fn(node.predicate)
        if isinstance(node, ScanNode):
            if node.eq_columns:
                return (
                    node.eq_columns,
                    [self._expr_fn(v) for v in node.eq_values],
                    [self._pred_fn(p) for p in node.pushed_filters],
                )
            return None
        if isinstance(node, JoinNode):
            return (
                [(cond, self._pred_fn(cond)) for cond in node.equi_conditions],
                [self._pred_fn(cond) for cond in node.other_conditions],
            )
        if isinstance(node, AggregateNode):
            group_fns = [self._expr_fn(e) for e in node.group_by]
            specs = []
            for aggregate in node.aggregates:
                name = aggregate.name.upper()
                count_star = name == "COUNT" and (
                    not aggregate.args or isinstance(aggregate.args[0], ast.Star)
                )
                arg_fn = (
                    self._expr_fn(aggregate.args[0])
                    if aggregate.args and not count_star
                    else None
                )
                specs.append((str(aggregate), name, arg_fn, aggregate.distinct, count_star))
            return (group_fns, specs)
        if isinstance(node, ProjectNode):
            items: List[Tuple[Optional[str], Any]] = []
            for item in node.items:
                if isinstance(item.expression, ast.Star):
                    items.append((None, item.expression))
                else:
                    items.append((item.output_name, self._expr_fn(item.expression)))
            return items
        if isinstance(node, SortNode):
            order = [
                (item.expression, str(item.expression), self._expr_fn(item.expression), item.descending)
                for item in node.order_by
            ]
            aliases = {
                item.alias.lower(): self._expr_fn(item.expression)
                for item in node.select_items
                if item.alias
            }
            return (order, aliases)
        return None

    # ------------------------------------------------------------------
    # Plan interpretation
    # ------------------------------------------------------------------

    def _run_node(self, node: PlanNode, outer_row: Optional[Row]) -> Iterator[Row]:
        if isinstance(node, ScanNode):
            yield from self._run_scan(node, outer_row)
        elif isinstance(node, FilterNode):
            if outer_row is None:
                vectorized = self._try_vectorized(node)
                if vectorized is not None:
                    yield from vectorized
                    return
            predicate = self._ops(node)
            if outer_row is None:
                for row in self._run_node(node.child, outer_row):
                    if predicate(row):
                        yield row
            else:
                for row in self._run_node(node.child, outer_row):
                    if predicate(outer_row.merged(row)):
                        yield row
        elif isinstance(node, JoinNode):
            yield from self._run_join(node, outer_row)
        elif isinstance(node, AggregateNode):
            yield from self._run_aggregate(node, outer_row)
        elif isinstance(node, ProjectNode):
            if outer_row is None:
                vectorized = self._try_vectorized(node)
                if vectorized is not None:
                    yield from vectorized
                    return
            yield from self._run_project(node, outer_row)
        elif isinstance(node, DistinctNode):
            yield from self._run_distinct(node, outer_row)
        elif isinstance(node, SortNode):
            yield from self._run_sort(node, outer_row)
        elif isinstance(node, LimitNode):
            yield from self._run_limit(node, outer_row)
        else:  # pragma: no cover - defensive
            raise UnsupportedQueryError(f"unknown plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Scans (index-backed when the planner pushed equality conjuncts)
    # ------------------------------------------------------------------

    def _run_scan(self, node: ScanNode, outer_row: Optional[Row]) -> Iterator[Row]:
        if not node.table_name:
            # FROM-less SELECT: a single empty row.
            yield _EMPTY_ROW
            return
        table = self.database.table(node.table_name)
        ops = self._ops(node)
        if ops is not None and self.index_scans and table.row_count:
            eq_columns, value_fns, _ = ops
            index = self._scan_index(table, eq_columns)
            if index is not None:
                context = outer_row if outer_row is not None else _EMPTY_ROW
                values = tuple(fn(context) for fn in value_fns)
                if any(v is None for v in values):
                    return  # `col = NULL` never matches
                binding = node.binding
                try:
                    rowids = index.lookup(values)
                except TypeError:
                    rowids = ()  # unhashable probe value can never equal a stored one
                for rowid in rowids:
                    yield table.row_by_id(rowid).prefixed(binding)
                return
        rows = self._scan_rows(table, node.binding)
        if ops is None:
            yield from rows
            return
        # Fallback: apply the pushed conjuncts as plain filters (index scans
        # disabled, or the pushed column does not exist on the relation).
        predicates = ops[2]
        if outer_row is None:
            for row in rows:
                if all(predicate(row) for predicate in predicates):
                    yield row
        else:
            for row in rows:
                scoped = outer_row.merged(row)
                if all(predicate(scoped) for predicate in predicates):
                    yield row

    def _scan_index(self, table: TableStorage, columns: Tuple[str, ...]):
        try:
            return table.ensure_index(columns)
        except UnknownAttributeError:
            return None

    def _scan_rows(self, table: TableStorage, binding: str) -> List[Row]:
        """Prefixed rows of a full scan, cached per table version."""
        if not self.use_caches:
            return [row.prefixed(binding) for row in table.rows()]
        key = (table.name, binding)
        entry = self._scan_cache.get(key)
        if entry is not None and entry[0] == table.version:
            return entry[1]
        rows = [row.prefixed(binding) for row in table.rows()]
        self._scan_cache[key] = (table.version, rows)
        return rows

    # ------------------------------------------------------------------
    # Vectorized scans (columnar engine, compiled mode only)
    # ------------------------------------------------------------------

    def _try_vectorized(self, node: PlanNode) -> Optional[List[Row]]:
        """Run a Filter/Project node column-at-a-time, or None to decline.

        Applies when the node sits directly over a full scan (no pushed
        equality conjuncts — the index path beats any scan there) of a
        table exposing columnar arrays, the executor is in compiled
        mode, and the expressions fit the vectorized subset.  The result
        list is byte-identical to the row path: same rows, same key
        order, same insertion order.  Data-dependent evaluation errors
        hand back to the row path, which re-runs with the oracle's exact
        short-circuit semantics (see :mod:`repro.engine.vector`).
        """
        if not self.compiled:
            return None
        cached = getattr(node, "_vec_ops", None)
        if cached is not None and cached[0] is self:
            ops = cached[1]
        else:
            ops = self._build_vector_ops(node)
            node._vec_ops = (self, ops)  # type: ignore[attr-defined]
        if ops is None:
            return None
        table_name, selection_fn, build_fn = ops
        table = self.database.table(table_name)
        arrays = table.columnar_arrays()
        if arrays is None:
            return None
        count = table.row_count
        try:
            selection = selection_fn(arrays, count)
            rows = build_fn(arrays, count, selection)
        except (EvaluationError, TypeError, ZeroDivisionError):
            self.vector_fallbacks += 1
            return None
        self.vector_scans += 1
        return rows

    def _build_vector_ops(self, node: PlanNode) -> Optional[Tuple[str, Any, Any]]:
        """Compile (table, selection, builder) for a node, or None."""
        if isinstance(node, FilterNode):
            chain = _filter_chain(node)
            project_items = None
        elif isinstance(node, ProjectNode):
            chain = _filter_chain(node.child)
            project_items = []
            for item in node.items:
                if isinstance(item.expression, ast.Star):
                    return None
                project_items.append((item.output_name, item.expression))
        else:
            return None
        if chain is None:
            return None
        scan, predicates = chain
        table = self.database.table(scan.table_name)
        compiler = self._vector_compiler(table.relation, scan.binding)
        try:
            selection_fn = compiler.compile_conjunction(predicates)
            if project_items is None:
                build_fn = _prefixed_row_builder(table.relation, scan.binding)
            else:
                build_fn = compiler.compile_projection(project_items)
        except VectorUnsupported:
            return None
        return (scan.table_name, selection_fn, build_fn)

    def _vector_compiler(self, relation, binding: str) -> VectorExpressionCompiler:
        if self._param_active:
            return ParamVectorCompiler(
                relation,
                binding,
                params_box=self._params_box,
                ordinals=self._param_compiler.ordinals,
            )
        return VectorExpressionCompiler(relation, binding)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _run_join(self, node: JoinNode, outer_row: Optional[Row]) -> Iterator[Row]:
        left_rows = list(self._run_node(node.left, outer_row))
        right_rows = list(self._run_node(node.right, outer_row))
        equi_matchers, other_matchers = self._ops(node)

        first = None
        first_keys = None
        for condition, _ in equi_matchers:
            keys = self._hash_keys(condition, left_rows, right_rows)
            if keys is not None:
                first, first_keys = condition, keys
                break

        if first is not None:
            left_key, right_key = first_keys
            buckets: Dict[Any, List[Row]] = {}
            for right in right_rows:
                value = right.get(right_key)
                if value is None:
                    continue
                buckets.setdefault(value, []).append(right)
            remaining = [
                matcher for condition, matcher in equi_matchers if condition is not first
            ] + other_matchers
            for left in left_rows:
                value = left.get(left_key)
                if value is None:
                    continue
                for right in buckets.get(value, ()):
                    combined = left.merged(right)
                    if self._join_matches(combined, remaining, outer_row):
                        yield combined
            return

        matchers = [matcher for _, matcher in equi_matchers] + other_matchers
        for left in left_rows:
            for right in right_rows:
                combined = left.merged(right)
                if self._join_matches(combined, matchers, outer_row):
                    yield combined

    def _join_matches(
        self,
        combined: Row,
        matchers: List[Callable[[Row], bool]],
        outer_row: Optional[Row],
    ) -> bool:
        if not matchers:
            return True
        scoped = outer_row.merged(combined) if outer_row is not None else combined
        return all(matcher(scoped) for matcher in matchers)

    def _hash_keys(
        self, condition: ast.BinaryOp, left_rows: List[Row], right_rows: List[Row]
    ) -> Optional[Tuple[str, str]]:
        """Qualified key names for a hash join, or ``None`` when unusable."""
        if not (
            isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        left_key = condition.left.qualified
        right_key = condition.right.qualified
        left_sample = left_rows[0] if left_rows else _EMPTY_ROW
        right_sample = right_rows[0] if right_rows else _EMPTY_ROW
        if left_sample.resolve_key(left_key) is not None and right_sample.resolve_key(right_key) is not None:
            return left_key, right_key
        if left_sample.resolve_key(right_key) is not None and right_sample.resolve_key(left_key) is not None:
            return right_key, left_key
        if not left_rows or not right_rows:
            return left_key, right_key
        return None

    # ------------------------------------------------------------------
    # Grouping and aggregation
    # ------------------------------------------------------------------

    def _run_aggregate(self, node: AggregateNode, outer_row: Optional[Row]) -> Iterator[Row]:
        source_rows = list(self._run_node(node.child, outer_row))
        group_fns, specs = self._ops(node)

        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        if node.group_by:
            for row in source_rows:
                scoped = self._with_outer(row, outer_row)
                key = tuple(fn(scoped) for fn in group_fns)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [row]
                else:
                    bucket.append(row)
        else:
            groups[()] = source_rows

        for key, members in groups.items():
            if not members and not node.group_by:
                base: Dict[str, Any] = {}
            else:
                base = dict(members[0].as_dict()) if members else {}
            for expression, value in zip(node.group_by, key):
                base[_expression_key(expression)] = value
            for spec in specs:
                base[spec[0]] = self._compute_aggregate(spec, members, outer_row)
            yield Row.adopt(base)

    def _compute_aggregate(
        self, spec: Tuple, members: List[Row], outer_row: Optional[Row]
    ) -> Any:
        _, name, arg_fn, distinct, count_star = spec
        if count_star:
            return len(members)
        if arg_fn is None:
            raise EvaluationError(f"aggregate {name} requires an argument")

        values = []
        for row in members:
            scoped = self._with_outer(row, outer_row)
            value = arg_fn(scoped)
            if value is not None:
                values.append(value)
        if distinct:
            seen = set()
            unique = []
            for value in values:
                frozen = _freeze(value)
                if frozen not in seen:
                    seen.add(frozen)
                    unique.append(value)
            values = unique

        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise EvaluationError(f"unknown aggregate {name}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Projection, distinct, ordering, limits
    # ------------------------------------------------------------------

    def _run_project(self, node: ProjectNode, outer_row: Optional[Row]) -> Iterator[Row]:
        items = self._ops(node)
        for row in self._run_node(node.child, outer_row):
            scoped = self._with_outer(row, outer_row)
            output: Dict[str, Any] = {}
            for name, fn in items:
                if name is None:  # star expansion
                    star = fn
                    for key in row.keys():
                        if star.table is None or key.lower().startswith(star.table.lower() + "."):
                            output[key] = row.get(key)
                    continue
                output[name] = fn(scoped)
            yield Row.adopt(output)

    def _run_distinct(self, node: DistinctNode, outer_row: Optional[Row]) -> Iterator[Row]:
        seen = set()
        for row in self._run_node(node.child, outer_row):
            key = tuple(sorted((k, _freeze(v)) for k, v in row.raw.items()))
            if key in seen:
                continue
            seen.add(key)
            yield row

    def _run_sort(self, node: SortNode, outer_row: Optional[Row]) -> Iterator[Row]:
        rows = list(self._run_node(node.child, outer_row))
        order, aliases = self._ops(node)

        def sort_key(row: Row) -> Tuple:
            scoped = self._with_outer(row, outer_row)
            parts = []
            for expression, text, fn, descending in order:
                value = self._try_order_value(expression, text, fn, aliases, row, scoped)
                parts.append(_OrderKey(value, descending=descending))
            return tuple(parts)

        yield from sorted(rows, key=sort_key)

    def _try_order_value(
        self,
        expression: ast.Expression,
        text: str,
        fn: CompiledExpr,
        aliases: Dict[str, CompiledExpr],
        row: Row,
        scoped: Row,
    ) -> Any:
        # ORDER BY may reference base columns (sorting runs before projection),
        # aggregate results stored under their SQL text, or select-list aliases.
        try:
            return fn(scoped)
        except EvaluationError:
            resolved = row.resolve_key(text)
            if resolved is not None:
                return row.get(resolved)
            if isinstance(expression, ast.ColumnRef) and expression.table is None:
                alias_fn = aliases.get(expression.column.lower())
                if alias_fn is not None:
                    return alias_fn(scoped)
            raise

    def _run_limit(self, node: LimitNode, outer_row: Optional[Row]) -> Iterator[Row]:
        rows = list(self._run_node(node.child, outer_row))
        start = node.offset or 0
        end = start + node.limit if node.limit is not None else None
        yield from rows[start:end]

    # ------------------------------------------------------------------
    # Subqueries (memoized on the correlated outer values)
    # ------------------------------------------------------------------

    def _run_subquery(
        self, statement: ast.SelectStatement, outer_row: Optional[Row]
    ) -> Iterable[Row]:
        if not self.use_caches:
            return self.execute_select(statement, outer_row=outer_row).rows
        key = self._memo_key(statement, outer_row)
        if key is None:
            return self.execute_select(statement, outer_row=outer_row).rows
        entry = self._subquery_memo.get(id(statement))
        if entry is None or entry[0] is not statement:
            entry = (statement, {})
            self._subquery_memo[id(statement)] = entry
        cache = entry[1]
        try:
            cached = cache.get(key)
        except TypeError:  # unhashable outer value — skip the memo
            return self.execute_select(statement, outer_row=outer_row).rows
        if cached is not None:
            self.subquery_hits += 1
            return cached
        rows = self.execute_select(statement, outer_row=outer_row).rows
        self.subquery_misses += 1
        self._subquery_entries += 1
        if self._subquery_entries > _SUBQUERY_MEMO_LIMIT:
            self._subquery_memo.clear()
            self._subquery_entries = 1
            entry = (statement, {})
            self._subquery_memo[id(statement)] = entry
            cache = entry[1]
        cache[key] = rows
        return rows

    def _memo_key(
        self, statement: ast.SelectStatement, outer_row: Optional[Row]
    ) -> Optional[Any]:
        """The memo key for one subquery execution, or ``None`` to skip.

        Uncorrelated subqueries key on a constant; correlated ones key on
        the values of the outer columns they reference.  When the outer
        values cannot be attributed statically (unqualified references,
        binding shadowing between the outer query and the subquery) the
        whole outer row becomes the key — always sound, just less shareable.

        Every key is prefixed with the bound-parameter vector: under a
        parameterised plan the same canonical subquery statement serves
        many literal variants, whose results must never be conflated
        (per-text executions bind ``()``, so their keys are unaffected in
        practice).
        """
        params = self._params_box[0]
        if outer_row is None:
            return (params, "<top>")
        info = self._correlation_info(statement)
        if info.whole_row:
            return (params, outer_row)
        raw = outer_row.raw
        # Shadowing guard first: when the subquery reuses an outer binding
        # name anywhere in its FROM clauses, the static analysis may have
        # misattributed outer references as inner (leaving keys empty), so
        # the whole outer row must be the key.
        prefixes = set()
        for key in raw:
            dot = key.find(".")
            if dot > 0:
                prefixes.add(key[:dot].lower())
        if prefixes & info.inner_bindings:
            return (params, outer_row)
        if not info.keys:
            return (params, "<uncorrelated>")
        parts = []
        for key in info.keys:
            resolved = outer_row.resolve_key(key)
            if resolved is None:
                # The correlation cannot be satisfied by this outer row;
                # skip the memo and let execution surface the usual error.
                return None
            parts.append(_freeze(raw[resolved]))
        return (params, tuple(parts))

    def _correlation_info(self, statement: ast.SelectStatement) -> _CorrelationInfo:
        entry = self._corr_info.get(id(statement))
        if entry is not None and entry[0] is statement:
            return entry[1]
        info = _analyze_correlation(statement)
        if len(self._corr_info) >= 10_000:
            self._corr_info.clear()  # bound growth on endless distinct queries
        self._corr_info[id(statement)] = (statement, info)
        return info

    # ------------------------------------------------------------------
    # DML, helpers
    # ------------------------------------------------------------------

    def _after_dml(self) -> None:
        """Invalidate data-dependent caches after a mutation.

        Parse results, plans and compiled closures are data-independent
        and survive; scans and subquery memos must go.
        """
        self._clear_data_caches()
        self._data_version = self.database.data_version

    def _with_outer(self, row: Row, outer_row: Optional[Row]) -> Row:
        if outer_row is None:
            return row
        return outer_row.merged(row)

    def _output_columns(self, statement: ast.SelectStatement) -> Tuple[str, ...]:
        columns: List[str] = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                star = item.expression
                for table in statement.from_tables:
                    if star.table is not None and table.binding.lower() != star.table.lower():
                        continue
                    relation = self.database.schema.relation(table.name)
                    for attribute in relation.attributes:
                        columns.append(f"{table.binding}.{attribute.name}")
                continue
            columns.append(item.output_name)
        return tuple(columns)

    def _execute_insert(self, statement: ast.InsertStatement) -> DmlResult:
        self._validate_caches()
        table = self.database.table(statement.table)
        columns = statement.columns or table.relation.attribute_names
        inserted = 0
        for row in statement.rows:
            values = {
                column: self._expr_fn(expression)(_EMPTY_ROW)
                for column, expression in zip(columns, row)
            }
            self.database.insert(statement.table, values)
            inserted += 1
        self._after_dml()
        return DmlResult(statement_kind="INSERT", affected_rows=inserted)

    def _execute_update(self, statement: ast.UpdateStatement) -> DmlResult:
        self._validate_caches()
        binding = statement.alias or statement.table
        matches = self._pred_fn(statement.where)

        def predicate(row: Row) -> bool:
            return matches(row.prefixed(binding))

        changes: Dict[str, Any] = {}
        for column, expression in statement.assignments:
            changes[column] = self._expr_fn(expression)(_EMPTY_ROW)
        affected = self.database.update_where(statement.table, predicate, changes)
        self._after_dml()
        return DmlResult(statement_kind="UPDATE", affected_rows=affected)

    def _execute_delete(self, statement: ast.DeleteStatement) -> DmlResult:
        self._validate_caches()
        binding = statement.alias or statement.table
        matches = self._pred_fn(statement.where)

        def predicate(row: Row) -> bool:
            return matches(row.prefixed(binding))

        affected = self.database.delete_where(statement.table, predicate)
        self._after_dml()
        return DmlResult(statement_kind="DELETE", affected_rows=affected)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _filter_chain(
    node: PlanNode,
) -> Optional[Tuple[ScanNode, List[ast.Expression]]]:
    """Descend Filter* -> Scan; predicates returned innermost first.

    The planner stacks one FilterNode per AND conjunct, so vectorizing
    only filters *directly* over a scan would leave every multi-conjunct
    WHERE mostly row-at-a-time.  Scans with pushed equality conjuncts
    are excluded — their index probes beat any full scan.
    """
    predicates: List[ast.Expression] = []
    current = node
    while isinstance(current, FilterNode):
        predicates.append(current.predicate)
        current = current.child
    if (
        not isinstance(current, ScanNode)
        or not current.table_name
        or current.eq_columns
    ):
        return None
    predicates.reverse()
    return current, predicates


def _prefixed_row_builder(
    relation: Any, binding: str
) -> Callable[[Dict[str, List[Any]], int, Iterable[int]], List[Row]]:
    """Build ``binding.attr``-keyed rows from columnar arrays.

    Key order is relation declaration order — the same order
    ``_scan_rows``'s ``row.prefixed(binding)`` produces, so a vectorized
    filter's output rows are indistinguishable from the row path's.
    """
    names = [(f"{binding}.{a.name}", a.name) for a in relation.attributes]

    def build(
        arrays: Dict[str, List[Any]], n: int, selection: Iterable[int]
    ) -> List[Row]:
        columns = [(key, arrays[name]) for key, name in names]
        adopt = Row.adopt
        return [adopt({key: column[i] for key, column in columns}) for i in selection]

    return build


def _expression_key(expression: ast.Expression) -> str:
    """The row key a GROUP BY expression's value is stored under."""
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    return str(expression)


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, set)):
        return tuple(value)
    return value


class _OrderKey:
    """Sort key wrapper handling NULLs (last) and DESC ordering."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return False  # NULLs sort last regardless of direction
        if b is None:
            return True
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def execute(database: Database, sql_or_statement) -> Any:
    """Convenience: execute SQL text or a parsed statement against ``database``."""
    executor = Executor(database)
    if isinstance(sql_or_statement, str):
        return executor.execute_sql(sql_or_statement)
    return executor.execute(sql_or_statement)
