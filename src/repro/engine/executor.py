"""Physical execution of logical plans against a :class:`Database`.

The executor is deliberately simple — pipelined Python iterators over
in-memory rows — but complete enough to run every query in the paper
(Q1-Q9), including correlated subqueries, quantified comparisons,
grouping with correlated HAVING subqueries, DISTINCT, ORDER BY and DML.
Execution results are used to *verify* natural-language translations
(e.g. the flattened form of Q5 returns the same answer as the nested
form) and to explain empty answers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    PlanNode,
    Planner,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.result import DmlResult, QueryResult
from repro.errors import EvaluationError, UnsupportedQueryError
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.storage.database import Database
from repro.storage.row import Row


class Executor:
    """Execute SQL statements against an in-memory database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.planner = Planner()
        self._evaluator = ExpressionEvaluator(subquery_runner=self._run_subquery)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str):
        """Parse and execute ``sql``; returns a QueryResult or DmlResult."""
        return self.execute(parse_sql(sql))

    def execute(self, statement: ast.Statement):
        """Execute a parsed statement."""
        if isinstance(statement, ast.SelectStatement):
            return self.execute_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        raise UnsupportedQueryError(
            f"statement type {type(statement).__name__} is not executable"
        )

    def execute_select(
        self, statement: ast.SelectStatement, outer_row: Optional[Row] = None
    ) -> QueryResult:
        """Execute a SELECT, optionally with an outer row for correlation."""
        plan = self.planner.plan(statement)
        rows = list(self._run_node(plan.root, outer_row))
        columns = self._output_columns(statement)
        return QueryResult(columns=columns, rows=rows)

    def explain(self, statement: ast.SelectStatement) -> str:
        """Return the indented logical plan for a SELECT statement."""
        return self.planner.plan(statement).explain()

    # ------------------------------------------------------------------
    # Plan interpretation
    # ------------------------------------------------------------------

    def _run_node(self, node: PlanNode, outer_row: Optional[Row]) -> Iterator[Row]:
        if isinstance(node, ScanNode):
            yield from self._run_scan(node, outer_row)
        elif isinstance(node, FilterNode):
            for row in self._run_node(node.child, outer_row):
                if self._evaluator.matches(node.predicate, self._with_outer(row, outer_row)):
                    yield row
        elif isinstance(node, JoinNode):
            yield from self._run_join(node, outer_row)
        elif isinstance(node, AggregateNode):
            yield from self._run_aggregate(node, outer_row)
        elif isinstance(node, ProjectNode):
            yield from self._run_project(node, outer_row)
        elif isinstance(node, DistinctNode):
            yield from self._run_distinct(node, outer_row)
        elif isinstance(node, SortNode):
            yield from self._run_sort(node, outer_row)
        elif isinstance(node, LimitNode):
            yield from self._run_limit(node, outer_row)
        else:  # pragma: no cover - defensive
            raise UnsupportedQueryError(f"unknown plan node {type(node).__name__}")

    def _run_scan(self, node: ScanNode, outer_row: Optional[Row]) -> Iterator[Row]:
        if not node.table_name:
            # FROM-less SELECT: a single empty row.
            yield Row({})
            return
        table = self.database.table(node.table_name)
        for row in table.rows():
            yield row.prefixed(node.binding)

    def _run_join(self, node: JoinNode, outer_row: Optional[Row]) -> Iterator[Row]:
        left_rows = list(self._run_node(node.left, outer_row))
        right_rows = list(self._run_node(node.right, outer_row))

        usable_equi = [
            cond
            for cond in node.equi_conditions
            if self._hash_keys(cond, left_rows, right_rows) is not None
        ]

        if usable_equi:
            first = usable_equi[0]
            keys = self._hash_keys(first, left_rows, right_rows)
            assert keys is not None
            left_key, right_key = keys
            buckets: Dict[Any, List[Row]] = {}
            for right in right_rows:
                value = right.get(right_key)
                if value is None:
                    continue
                buckets.setdefault(value, []).append(right)
            remaining = [c for c in node.equi_conditions if c is not first]
            for left in left_rows:
                value = left.get(left_key)
                if value is None:
                    continue
                for right in buckets.get(value, ()):
                    combined = left.merged(right)
                    if self._join_matches(combined, remaining, node.other_conditions, outer_row):
                        yield combined
            return

        for left in left_rows:
            for right in right_rows:
                combined = left.merged(right)
                if self._join_matches(
                    combined, node.equi_conditions, node.other_conditions, outer_row
                ):
                    yield combined

    def _join_matches(
        self,
        combined: Row,
        equi: Iterable[ast.Expression],
        other: Iterable[ast.Expression],
        outer_row: Optional[Row],
    ) -> bool:
        scoped = self._with_outer(combined, outer_row)
        for condition in list(equi) + list(other):
            if not self._evaluator.matches(condition, scoped):
                return False
        return True

    def _hash_keys(
        self, condition: ast.BinaryOp, left_rows: List[Row], right_rows: List[Row]
    ) -> Optional[Tuple[str, str]]:
        """Qualified key names for a hash join, or ``None`` when unusable."""
        if not (
            isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        left_key = condition.left.qualified
        right_key = condition.right.qualified
        left_sample = left_rows[0] if left_rows else Row({})
        right_sample = right_rows[0] if right_rows else Row({})
        if left_sample.resolve_key(left_key) is not None and right_sample.resolve_key(right_key) is not None:
            return left_key, right_key
        if left_sample.resolve_key(right_key) is not None and right_sample.resolve_key(left_key) is not None:
            return right_key, left_key
        if not left_rows or not right_rows:
            return left_key, right_key
        return None

    # ------------------------------------------------------------------
    # Grouping and aggregation
    # ------------------------------------------------------------------

    def _run_aggregate(self, node: AggregateNode, outer_row: Optional[Row]) -> Iterator[Row]:
        source_rows = list(self._run_node(node.child, outer_row))

        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        order: List[Tuple[Any, ...]] = []
        if node.group_by:
            for row in source_rows:
                scoped = self._with_outer(row, outer_row)
                key = tuple(self._evaluator.evaluate(e, scoped) for e in node.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            key = ()
            groups[key] = source_rows
            order.append(key)

        for key in order:
            members = groups[key]
            if not members and not node.group_by:
                base: Dict[str, Any] = {}
            else:
                base = dict(members[0].as_dict()) if members else {}
            for expression, value in zip(node.group_by, key):
                base[_expression_key(expression)] = value
            for aggregate in node.aggregates:
                base[str(aggregate)] = self._compute_aggregate(aggregate, members, outer_row)
            yield Row(base)

    def _compute_aggregate(
        self, aggregate: ast.FunctionCall, members: List[Row], outer_row: Optional[Row]
    ) -> Any:
        name = aggregate.name.upper()
        if name == "COUNT" and (not aggregate.args or isinstance(aggregate.args[0], ast.Star)):
            return len(members)

        if not aggregate.args:
            raise EvaluationError(f"aggregate {name} requires an argument")
        argument = aggregate.args[0]
        values = []
        for row in members:
            scoped = self._with_outer(row, outer_row)
            value = self._evaluator.evaluate(argument, scoped)
            if value is not None:
                values.append(value)
        if aggregate.distinct:
            unique = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            values = unique

        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise EvaluationError(f"unknown aggregate {name}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Projection, distinct, ordering, limits
    # ------------------------------------------------------------------

    def _run_project(self, node: ProjectNode, outer_row: Optional[Row]) -> Iterator[Row]:
        items = node.items
        for row in self._run_node(node.child, outer_row):
            scoped = self._with_outer(row, outer_row)
            output: Dict[str, Any] = {}
            for item in items:
                if isinstance(item.expression, ast.Star):
                    star = item.expression
                    for key in row.keys():
                        if star.table is None or key.lower().startswith(star.table.lower() + "."):
                            output[key] = row.get(key)
                    continue
                output[item.output_name] = self._evaluator.evaluate(item.expression, scoped)
            yield Row(output)

    def _run_distinct(self, node: DistinctNode, outer_row: Optional[Row]) -> Iterator[Row]:
        seen = set()
        for row in self._run_node(node.child, outer_row):
            key = tuple(sorted((k, _freeze(v)) for k, v in row.as_dict().items()))
            if key in seen:
                continue
            seen.add(key)
            yield row

    def _run_sort(self, node: SortNode, outer_row: Optional[Row]) -> Iterator[Row]:
        rows = list(self._run_node(node.child, outer_row))

        def sort_key(row: Row) -> Tuple:
            scoped = self._with_outer(row, outer_row)
            parts = []
            for item in node.order_by:
                value = self._try_order_value(
                    item.expression, row, scoped, node.select_items
                )
                parts.append(_OrderKey(value, descending=item.descending))
            return tuple(parts)

        yield from sorted(rows, key=sort_key)

    def _try_order_value(
        self,
        expression: ast.Expression,
        row: Row,
        scoped: Row,
        select_items: Tuple[ast.SelectItem, ...] = (),
    ) -> Any:
        # ORDER BY may reference base columns (sorting runs before projection),
        # aggregate results stored under their SQL text, or select-list aliases.
        try:
            return self._evaluator.evaluate(expression, scoped)
        except EvaluationError:
            resolved = row.resolve_key(str(expression))
            if resolved is not None:
                return row.get(resolved)
            if isinstance(expression, ast.ColumnRef) and expression.table is None:
                for item in select_items:
                    if item.alias and item.alias.lower() == expression.column.lower():
                        return self._evaluator.evaluate(item.expression, scoped)
            raise

    def _run_limit(self, node: LimitNode, outer_row: Optional[Row]) -> Iterator[Row]:
        rows = list(self._run_node(node.child, outer_row))
        start = node.offset or 0
        end = start + node.limit if node.limit is not None else None
        yield from rows[start:end]

    # ------------------------------------------------------------------
    # Subqueries, DML, helpers
    # ------------------------------------------------------------------

    def _run_subquery(
        self, statement: ast.SelectStatement, outer_row: Optional[Row]
    ) -> Iterable[Row]:
        result = self.execute_select(statement, outer_row=outer_row)
        return result.rows

    def _with_outer(self, row: Row, outer_row: Optional[Row]) -> Row:
        if outer_row is None:
            return row
        return outer_row.merged(row)

    def _output_columns(self, statement: ast.SelectStatement) -> Tuple[str, ...]:
        columns: List[str] = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                star = item.expression
                for table in statement.from_tables:
                    if star.table is not None and table.binding.lower() != star.table.lower():
                        continue
                    relation = self.database.schema.relation(table.name)
                    for attribute in relation.attributes:
                        columns.append(f"{table.binding}.{attribute.name}")
                continue
            columns.append(item.output_name)
        return tuple(columns)

    def _execute_insert(self, statement: ast.InsertStatement) -> DmlResult:
        table = self.database.table(statement.table)
        columns = statement.columns or table.relation.attribute_names
        inserted = 0
        for row in statement.rows:
            values = {
                column: self._evaluator.evaluate(expression, Row({}))
                for column, expression in zip(columns, row)
            }
            self.database.insert(statement.table, values)
            inserted += 1
        return DmlResult(statement_kind="INSERT", affected_rows=inserted)

    def _execute_update(self, statement: ast.UpdateStatement) -> DmlResult:
        binding = statement.alias or statement.table

        def predicate(row: Row) -> bool:
            return self._evaluator.matches(statement.where, row.prefixed(binding))

        changes: Dict[str, Any] = {}
        for column, expression in statement.assignments:
            changes[column] = self._evaluator.evaluate(expression, Row({}))
        affected = self.database.update_where(statement.table, predicate, changes)
        return DmlResult(statement_kind="UPDATE", affected_rows=affected)

    def _execute_delete(self, statement: ast.DeleteStatement) -> DmlResult:
        binding = statement.alias or statement.table

        def predicate(row: Row) -> bool:
            return self._evaluator.matches(statement.where, row.prefixed(binding))

        affected = self.database.delete_where(statement.table, predicate)
        return DmlResult(statement_kind="DELETE", affected_rows=affected)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _expression_key(expression: ast.Expression) -> str:
    """The row key a GROUP BY expression's value is stored under."""
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    return str(expression)


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, set)):
        return tuple(value)
    return value


class _OrderKey:
    """Sort key wrapper handling NULLs (last) and DESC ordering."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return False  # NULLs sort last regardless of direction
        if b is None:
            return True
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def execute(database: Database, sql_or_statement) -> Any:
    """Convenience: execute SQL text or a parsed statement against ``database``."""
    executor = Executor(database)
    if isinstance(sql_or_statement, str):
        return executor.execute_sql(sql_or_statement)
    return executor.execute(sql_or_statement)
