"""Edges of the database schema graph (paper, Section 2.2).

A *projection edge*, one for each attribute node, emanates from its
container relation node and ends at the attribute node; a *join edge*
emanates from a relation node and ends at another relation node,
representing a potential join through a primary key / foreign key
relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.catalog.foreign_key import ForeignKey


@dataclass(frozen=True)
class ProjectionEdge:
    """Relation node → attribute node edge."""

    relation_name: str
    attribute_name: str
    weight: float = 1.0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.relation_name, self.attribute_name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.relation_name} -> {self.relation_name}.{self.attribute_name}"


@dataclass(frozen=True)
class JoinEdge:
    """Relation node → relation node edge derived from a foreign key."""

    source_relation: str
    target_relation: str
    foreign_key: ForeignKey
    weight: float = 1.0

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.source_relation, self.target_relation, self.foreign_key.display_name)

    @property
    def verb_phrase(self) -> Optional[str]:
        return self.foreign_key.verb_phrase

    def other(self, relation_name: str) -> str:
        """The endpoint that is not ``relation_name``."""
        if relation_name == self.source_relation:
            return self.target_relation
        return self.source_relation

    def touches(self, relation_name: str) -> bool:
        return relation_name in (self.source_relation, self.target_relation)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source_relation} -> {self.target_relation} [{self.foreign_key.display_name}]"
