"""The database schema graph of Section 2.2, derived from a catalog schema."""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.errors import UnknownNodeError
from repro.graph.edges import JoinEdge, ProjectionEdge
from repro.graph.nodes import AttributeNode, RelationNode


class SchemaGraph:
    """Graph view of a schema: relation/attribute nodes, projection/join edges.

    The graph is the structure the content translator traverses (Section
    2.2) and the structure query graphs are validated against (Section
    3.3: path and subgraph queries are exactly those whose query graph is
    a path/subgraph of this graph).
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._relation_nodes: Dict[str, RelationNode] = {}
        self._attribute_nodes: Dict[str, AttributeNode] = {}
        self._projection_edges: List[ProjectionEdge] = []
        self._join_edges: List[JoinEdge] = []
        self._build()

    def _build(self) -> None:
        for relation in self.schema.relations:
            self._relation_nodes[relation.name] = RelationNode(relation)
            for attribute in relation.attributes:
                node = AttributeNode(attribute)
                self._attribute_nodes[node.key] = node
                self._projection_edges.append(
                    ProjectionEdge(
                        relation_name=relation.name,
                        attribute_name=attribute.name,
                        weight=attribute.weight,
                    )
                )
        for fk in self.schema.foreign_keys:
            self._join_edges.append(
                JoinEdge(
                    source_relation=fk.source_relation,
                    target_relation=fk.target_relation,
                    foreign_key=fk,
                    weight=fk.weight,
                )
            )
        # The schema (and therefore the graph) is immutable, so the
        # structural lookups the narrator and classifiers hammer —
        # adjacency, incident edges, per-relation projections — are
        # precomputed here, and path queries are memoized below.
        self._projection_edges_of: Dict[str, Tuple[ProjectionEdge, ...]] = {
            r.name: () for r in self.schema.relations
        }
        for edge in self._projection_edges:
            self._projection_edges_of[edge.relation_name] += (edge,)
        self._join_edges_of: Dict[str, Tuple[JoinEdge, ...]] = {
            r.name: () for r in self.schema.relations
        }
        self._neighbours: Dict[str, Tuple[str, ...]] = {
            r.name: () for r in self.schema.relations
        }
        for edge in self._join_edges:
            for name in self._join_edges_of:
                if edge.touches(name):
                    self._join_edges_of[name] += (edge,)
                    other = edge.other(name)
                    if other != name and other not in self._neighbours[name]:
                        self._neighbours[name] += (other,)
        self._path_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._between_cache: Dict[Tuple[str, str], Tuple[JoinEdge, ...]] = {}
        self._central: Optional[RelationNode] = None

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    @property
    def relation_nodes(self) -> Tuple[RelationNode, ...]:
        return tuple(self._relation_nodes[name] for name in self.schema.relation_names)

    @property
    def attribute_nodes(self) -> Tuple[AttributeNode, ...]:
        return tuple(self._attribute_nodes.values())

    def relation_node(self, name: str) -> RelationNode:
        canonical = self.schema.relation(name).name
        return self._relation_nodes[canonical]

    def attribute_node(self, relation_name: str, attribute_name: str) -> AttributeNode:
        relation = self.schema.relation(relation_name)
        attribute = relation.attribute(attribute_name)
        key = f"{relation.name}.{attribute.name}"
        if key not in self._attribute_nodes:
            raise UnknownNodeError(f"no attribute node {key!r}")
        return self._attribute_nodes[key]

    def has_relation(self, name: str) -> bool:
        return self.schema.has_relation(name)

    # ------------------------------------------------------------------
    # Edge access
    # ------------------------------------------------------------------

    @property
    def projection_edges(self) -> Tuple[ProjectionEdge, ...]:
        return tuple(self._projection_edges)

    @property
    def join_edges(self) -> Tuple[JoinEdge, ...]:
        return tuple(self._join_edges)

    def projection_edges_of(self, relation_name: str) -> Tuple[ProjectionEdge, ...]:
        canonical = self.schema.relation(relation_name).name
        return self._projection_edges_of[canonical]

    def join_edges_of(self, relation_name: str) -> Tuple[JoinEdge, ...]:
        """All join edges incident to ``relation_name`` (either direction)."""
        canonical = self.schema.relation(relation_name).name
        return self._join_edges_of[canonical]

    def join_edges_between(self, first: str, second: str) -> Tuple[JoinEdge, ...]:
        a = self.schema.relation(first).name
        b = self.schema.relation(second).name
        cached = self._between_cache.get((a, b))
        if cached is None:
            cached = tuple(
                e
                for e in self._join_edges
                if {e.source_relation, e.target_relation} == {a, b}
                or (a == b and e.source_relation == e.target_relation == a)
            )
            self._between_cache[(a, b)] = cached
        return cached

    def neighbours(self, relation_name: str) -> Tuple[str, ...]:
        """Relations joined to ``relation_name`` by at least one join edge."""
        canonical = self.schema.relation(relation_name).name
        return self._neighbours[canonical]

    # ------------------------------------------------------------------
    # Graph-level helpers
    # ------------------------------------------------------------------

    def degree(self, relation_name: str) -> int:
        return len(self.join_edges_of(relation_name))

    def central_relation(self) -> RelationNode:
        """The relation used as the default starting point of a traversal.

        "A simple DFS-like traversal starting from a central point of
        interest" (Section 2.2).  We pick the non-bridge relation with the
        highest (weight, degree) pair, which for the movie schema is MOVIES.
        """
        if self._central is None:
            candidates = [n for n in self.relation_nodes if not n.is_bridge]
            if not candidates:
                candidates = list(self.relation_nodes)
            self._central = max(
                candidates, key=lambda n: (n.weight, self.degree(n.name), n.name)
            )
        return self._central

    def is_connected(self, relation_names: Optional[Iterable[str]] = None) -> bool:
        """True when the join graph over the given relations is connected."""
        names = [self.schema.relation(n).name for n in relation_names] if relation_names else [
            r.name for r in self.schema.relations
        ]
        if not names:
            return True
        allowed = set(names)
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in self.neighbours(current):
                if neighbour in allowed and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == allowed

    def shortest_path(self, start: str, end: str) -> Tuple[str, ...]:
        """Relation names along a shortest join path from ``start`` to ``end``.

        Returns an empty tuple when the relations are not connected.  Used
        by the content narrator to bridge two relations of interest (e.g.
        DIRECTOR and MOVIES are bridged through DIRECTED).
        """
        source = self.schema.relation(start).name
        target = self.schema.relation(end).name
        cached = self._path_cache.get((source, target))
        if cached is not None:
            return cached
        path = self._shortest_path_uncached(source, target)
        self._path_cache[(source, target)] = path
        return path

    def _shortest_path_uncached(self, source: str, target: str) -> Tuple[str, ...]:
        if source == target:
            return (source,)
        parents: Dict[str, str] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in self.neighbours(current):
                    if neighbour in seen:
                        continue
                    parents[neighbour] = current
                    if neighbour == target:
                        return self._unwind(parents, source, target)
                    seen.add(neighbour)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return ()

    def _unwind(self, parents: Dict[str, str], source: str, target: str) -> Tuple[str, ...]:
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        return tuple(reversed(path))

    def subgraph(self, relation_names: Sequence[str]) -> "SchemaGraph":
        """The schema graph restricted to the given relations."""
        return SchemaGraph(self.schema.subschema(relation_names))

    # ------------------------------------------------------------------
    # Rendering (Figure 1)
    # ------------------------------------------------------------------

    def to_dot(self, include_attributes: bool = True) -> str:
        """Render the schema graph in Graphviz DOT format (Figure 1)."""
        lines = [f'digraph "{self.schema.name}" {{', "  rankdir=LR;"]
        for node in self.relation_nodes:
            lines.append(f'  "{node.name}" [shape=box, style=bold];')
        if include_attributes:
            for edge in self._projection_edges:
                attr_id = f"{edge.relation_name}.{edge.attribute_name}"
                lines.append(f'  "{attr_id}" [shape=ellipse, label="{edge.attribute_name}"];')
                lines.append(f'  "{edge.relation_name}" -> "{attr_id}" [style=dashed];')
        for edge in self._join_edges:
            label = edge.foreign_key.display_name
            lines.append(
                f'  "{edge.source_relation}" -> "{edge.target_relation}" [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """A one-paragraph textual summary of the graph (used by Figure 1 bench)."""
        relations = ", ".join(r.name for r in self.relation_nodes)
        return (
            f"Schema graph of {self.schema.name!r}: {len(self.relation_nodes)} relation"
            f" nodes ({relations}), {len(self.attribute_nodes)} attribute nodes,"
            f" {len(self._projection_edges)} projection edges and"
            f" {len(self._join_edges)} join edges."
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SchemaGraph({self.schema.name}: {len(self.relation_nodes)} relations,"
            f" {len(self._join_edges)} join edges)"
        )


#: One shared graph per schema: the graph is immutable and schema-derived,
#: so narrators and benches can reuse one instance (and its memoized paths)
#: instead of rebuilding adjacency per call.
_SHARED_GRAPHS: "weakref.WeakKeyDictionary[Schema, SchemaGraph]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_GRAPHS_LOCK = threading.Lock()


def graph_for(schema: Schema) -> SchemaGraph:
    """The shared (memoizing) schema graph for ``schema``.

    The graph's adjacency is precomputed and immutable; its path memos
    are filled by single-key dict writes, which are safe to race (the
    worst case is a duplicate computation of the same path).  Only the
    schema → graph map itself needs the lock.
    """
    with _SHARED_GRAPHS_LOCK:
        graph = _SHARED_GRAPHS.get(schema)
        if graph is None:
            graph = SchemaGraph(schema)
            _SHARED_GRAPHS[schema] = graph
        return graph


def build_schema_graph(schema: Schema) -> SchemaGraph:
    """Build the schema graph for ``schema``."""
    return SchemaGraph(schema)
